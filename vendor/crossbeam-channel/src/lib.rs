//! Vendored `crossbeam-channel` API subset (see `vendor/README.md`): a
//! bounded MPMC channel with cloneable senders and receivers, blocking
//! `send`/`recv`, non-blocking `try_recv`, and a draining `iter()` that
//! ends when every sender is gone.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded channel with room for `cap` queued messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Block until the message is queued; fails if all receivers dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < st.cap {
                st.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half; cloneable (every message goes to exactly one
/// receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives; fails once the channel is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap();
        }
    }

    /// Pop a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        match st.queue.pop_front() {
            Some(v) => {
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = bounded::<i32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn fan_in_fan_out_across_threads() {
        let (tx, rx) = bounded::<usize>(4);
        let mut handles = Vec::new();
        for t in 0..3 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let got: Vec<usize> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 300);
        let sum: usize = got.iter().sum();
        assert_eq!(sum, (0..300).map(|i| (i / 100) * 100 + i % 100).sum::<usize>());
    }
}
