//! Vendored `rand` API subset (see `vendor/README.md`): a deterministic
//! splitmix64-based `StdRng` behind the `Rng`/`SeedableRng` traits, with
//! `gen_range` over integer and float ranges and `gen_bool`. All
//! generation in this workspace is explicitly seeded, so a fast
//! deterministic generator is exactly what is needed.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing generator methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A range that can be sampled uniformly to produce a `T`. The output is
/// a type parameter (as in real `rand`) so integer-literal ranges infer
/// their width from the call site, e.g. `let u: i64 = rng.gen_range(1..=9)`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_replay() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(1usize..=10);
            assert!((1..=10).contains(&u));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
