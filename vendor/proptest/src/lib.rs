//! Vendored `proptest` API subset (see `vendor/README.md`): strategy
//! combinators (`Just`, ranges, tuples, `prop_map`, `prop_filter`,
//! `prop_oneof!`, `prop_recursive`, `collection::vec`, `option::of`,
//! string patterns), the `proptest!` test macro, and `prop_assert*`.
//!
//! Every test derives its generator seed from the test's full path (plus
//! an optional `PROPTEST_SEED` override), so runs are deterministic and
//! replayable; failing cases print their generated inputs. No shrinking:
//! the seeded generator makes failures reproducible without it.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// How many times `prop_filter` regenerates before giving up.
const FILTER_RETRIES: u32 = 10_000;

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's full path, XORed with `PROPTEST_SEED` if set,
    /// so each test gets its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            h ^= seed;
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Draw one value from the seeded stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, regenerating otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Build a recursive strategy: `self` is the leaf case, `recurse`
    /// wraps an inner strategy into the branch cases. Nesting is bounded
    /// by `depth`; the remaining size hints are accepted for API parity.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current.clone()).boxed();
            current = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

/// Cloneable type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}): no value satisfied the predicate", self.whence);
    }
}

/// Uniform choice between same-typed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the candidate strategies; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges, tuples, arbitrary
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized + 'static {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, spanning many magnitudes.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        (b' ' + rng.below(95) as u8) as char
    }
}

/// Strategy form of [`Arbitrary`]; returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Canonical strategy for the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` strategies generate strings matching a regex subset: literal
/// characters, `[...]` classes (literals and `a-z` ranges), and `{n}` /
/// `{m,n}` quantifiers on the preceding atom.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let mut alphabet: Vec<char> = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        for c in lo..=hi {
                            alphabet.push(c);
                        }
                        i += 3;
                    } else {
                        alphabet.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing escape in pattern {pattern:?}");
                alphabet.push(chars[i + 1]);
                i += 2;
            }
            c => {
                alphabet.push(c);
                i += 1;
            }
        }
        // Optional {n} or {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let spec: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.parse::<usize>().expect("bad quantifier"),
                    n.parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len())]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// `Vec` strategy with element strategy and length bounds.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate a `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Option` strategy; `None` roughly one time in four.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wrap `inner` values in `Some`, interleaving occasional `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Config and test harness plumbing
// ---------------------------------------------------------------------------

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test (capped by `PROPTEST_CASES`
    /// when that is set lower, so CI can pin a budget globally).
    pub fn with_cases(cases: u32) -> Self {
        let cases = match env_cases() {
            Some(limit) => cases.min(limit),
            None => cases,
        };
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: env_cases().unwrap_or(256) }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Prints the failing case's inputs if the test body panics.
#[doc(hidden)]
pub struct TestCaseGuard {
    pub test: &'static str,
    pub case: u32,
    pub inputs: String,
    pub armed: bool,
}

impl Drop for TestCaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case #{} with inputs:\n{}",
                self.test, self.case, self.inputs
            );
        }
    }
}

/// Define seeded property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            const __TEST: &str = concat!(module_path!(), "::", stringify!($name));
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::for_test(__TEST);
            for __case in 0..__config.cases {
                let mut __guard = $crate::TestCaseGuard {
                    test: __TEST,
                    case: __case,
                    inputs: String::new(),
                    armed: true,
                };
                $(
                    let __value = $crate::Strategy::generate(&($strategy), &mut __rng);
                    __guard.inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &__value,
                    ));
                    let $arg = __value;
                )+
                $body
                __guard.armed = false;
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!(
                "prop_assert_eq! failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!(
                "prop_assert_eq! failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            );
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            panic!(
                "prop_assert_ne! failed: `{}` == `{}`\n  both: {:?}",
                stringify!($left), stringify!($right), l,
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            panic!("prop_assert_ne! failed: {}\n  both: {:?}", format!($($fmt)+), l);
        }
    }};
}

/// Uniform choice between strategies; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The customary glob import for tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_replay() {
        let strat = (0i64..100, "[a-z]{1,4}", any::<bool>());
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(format!("{:?}", strat.generate(&mut a)), format!("{:?}", strat.generate(&mut b)));
        }
    }

    #[test]
    fn patterns_match_expected_shapes() {
        let mut rng = crate::TestRng::for_test("patterns");
        for _ in 0..200 {
            let s = "[C][0-9]{1,3}".generate(&mut rng);
            assert!(s.starts_with('C') && (2..=4).contains(&s.len()), "{s:?}");
            assert!(s[1..].chars().all(|c| c.is_ascii_digit()), "{s:?}");
            let t = "[a-z%_ ]{0,6}".generate(&mut rng);
            assert!(t.len() <= 6, "{t:?}");
            assert!(
                t.chars().all(|c| c.is_ascii_lowercase() || "%_ ".contains(c)),
                "{t:?}"
            );
        }
    }

    #[test]
    fn combinators_cover_domain() {
        let mut rng = crate::TestRng::for_test("combinators");
        let strat = prop_oneof![
            Just(0usize),
            (1usize..4).prop_map(|v| v * 10),
            (10usize..40).prop_filter("even", |v| v % 2 == 0),
        ];
        let vecs = collection::vec(strat, 0..5);
        let mut none_seen = false;
        let mut some_seen = false;
        for _ in 0..200 {
            for v in vecs.generate(&mut rng) {
                assert!(v == 0 || (10..40).contains(&v));
            }
            match option::of(0i32..5).generate(&mut rng) {
                None => none_seen = true,
                Some(v) => {
                    assert!((0..5).contains(&v));
                    some_seen = true;
                }
            }
        }
        assert!(none_seen && some_seen);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v));
                    0
                }
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            (inner.clone(), inner)
                .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::TestRng::for_test("recursive");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn proptest_macro_runs_cases(a in 0i64..100, (b, c) in (0i64..10, any::<bool>()),) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b, "b themselves must match: {}", b);
            prop_assert_ne!(c as i64, 2);
        }
    }
}
