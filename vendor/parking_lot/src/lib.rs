//! Vendored `parking_lot` API subset over `std::sync` (see
//! `vendor/README.md`): guards come straight back from `lock()` /
//! `read()` / `write()` with poisoning absorbed, matching the parking_lot
//! API the workspace was written against.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]. The `Option` lets [`Condvar`] temporarily
/// move the underlying std guard out during waits.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        let inner = guard.inner.take().expect("guard invariant");
        let (inner, _) = self
            .inner
            .wait_timeout(inner, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: Instant::now() >= deadline }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_until(guard, Instant::now() + timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "notification lost");
        }
        t.join().unwrap();
    }
}
