//! Vendored `criterion` API subset (see `vendor/README.md`): benchmark
//! groups, `bench_function`/`bench_with_input`, and a `Bencher` with
//! `iter`/`iter_with_setup`. Reports wall-clock mean and minimum per
//! sample to stdout; no statistical analysis, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box to defeat constant folding.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into(), DEFAULT_SAMPLES, None, f);
        self
    }
}

/// Throughput annotation echoed in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

/// A group of related benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.samples, self.throughput, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        run_benchmark(&id, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` back to back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` only, running `setup` untimed before each call.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warmup pass, untimed.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        times.push(b.elapsed);
    }
    let total: Duration = times.iter().sum();
    let mean = total / samples as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let rate = |per: Duration| -> String {
        match throughput {
            Some(Throughput::Elements(n)) if per.as_nanos() > 0 => {
                format!(" {:.0} elem/s", n as f64 / per.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per.as_nanos() > 0 => {
                format!(" {:.1} MiB/s", n as f64 / per.as_secs_f64() / (1 << 20) as f64)
            }
            _ => String::new(),
        }
    };
    println!(
        "bench {id:<50} mean {:>12} min {:>12}{}",
        format!("{mean:?}"),
        format!("{min:?}"),
        rate(mean)
    );
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` for a bench binary. Does nothing under `cargo test`
/// (which passes `--test`), so benches stay cheap in the test gate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter_with_setup(
                || n,
                |n| {
                    ran += 1;
                    n * 2
                },
            )
        });
        group.finish();
        assert!(ran > 0, "routine must actually run");
    }
}
