//! # idaa — Extending Database Accelerators for Data Transformations and Predictive Analytics
//!
//! A from-scratch Rust reproduction of the EDBT 2016 paper by Stolze,
//! Beier and Martin (IBM): a DB2-for-z/OS-style OLTP host federated with a
//! Netezza-style columnar MPP accelerator, extended with the paper's three
//! contributions —
//!
//! 1. **Accelerator-only tables (AOTs)**: `CREATE TABLE … IN ACCELERATOR`
//!    creates a table whose data lives solely on the accelerator (DB2
//!    keeps a catalog proxy), so multi-staged ELT / data-mining pipelines
//!    transform data *in place* instead of materializing every stage back
//!    in DB2.
//! 2. **Direct data ingestion** (the IDAA Loader): bulk loads from
//!    external sources into DB2 tables *or* straight into AOTs.
//! 3. **A governed in-database analytics framework**: mining algorithms
//!    run on the accelerator while DB2 keeps making every authorization
//!    decision.
//!
//! ## Quickstart
//!
//! ```
//! use idaa::{Idaa, Route};
//!
//! let idaa = Idaa::default();
//! let mut session = idaa.session("SYSADM");
//!
//! idaa.execute(&mut session, "CREATE TABLE SALES (ID INT NOT NULL, AMOUNT DOUBLE)").unwrap();
//! idaa.execute(&mut session, "INSERT INTO SALES VALUES (1, 10.5E0), (2, 20.0E0)").unwrap();
//!
//! // Stage data on the accelerator without ever materializing in DB2:
//! idaa.execute(&mut session, "CREATE TABLE STAGE (TOTAL DOUBLE) IN ACCELERATOR").unwrap();
//! let out = idaa
//!     .execute(&mut session, "INSERT INTO STAGE SELECT SUM(AMOUNT) FROM SALES")
//!     .unwrap();
//! assert_eq!(out.count(), 1);
//!
//! let rows = idaa.query(&mut session, "SELECT TOTAL FROM STAGE").unwrap();
//! assert_eq!(rows.scalar().unwrap().render(), "30.5");
//! ```
//!
//! The facade re-exports the public APIs of every subsystem crate; see
//! `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! experiment suite.

pub use idaa_accel as accel;
pub use idaa_analytics as analytics;
pub use idaa_common as common;
pub use idaa_core as core;
pub use idaa_host as host;
pub use idaa_loader as loader;
pub use idaa_netsim as netsim;
pub use idaa_sql as sql;

pub use idaa_accel::{AccelConfig, AccelEngine};
pub use idaa_common::{
    DataType, Decimal, Error, MetricsRegistry, MetricsSnapshot, ObjectName, Result, Row, Rows,
    Schema, SpanNode, StatementTrace, Trace, TraceSink, Value,
};
pub use idaa_core::{
    shard_of, shard_table, Completion, ExecOutcome, FleetConfig, HealthConfig, HealthState, Idaa,
    IdaaConfig, Payload, Priority, QueueInfo, Route, SeatId, Server, ServerConfig, Session,
    StatementId,
};
pub use idaa_host::{HostEngine, SYSADM};
pub use idaa_netsim::{
    CrashPlan, Direction, DiskFaultPlan, FaultPlan, FaultRegistry, FaultSpec, LinkConfig,
    LinkError, LinkMetrics, NetLink, OutageWindow, RetryPolicy,
};
