//! Model-checking property tests for the storage substrates: the host
//! heap against a simple map model, and the accelerator's MVCC registry
//! against the declarative visibility rule.

use idaa::accel::{Snapshot, TxnRegistry, TxnStatus};
use idaa::common::{ColumnDef, Schema};
use idaa::host::storage::HeapTable;
use idaa::{DataType, Value};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(i32),
    /// Delete the n-th live row (modulo count).
    Delete(usize),
    /// Update the n-th live row (modulo count) to the value.
    Update(usize, i32),
}

fn arb_heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (-1000i32..1000).prop_map(HeapOp::Insert),
            (0usize..64).prop_map(HeapOp::Delete),
            (0usize..64, -1000i32..1000).prop_map(|(i, v)| HeapOp::Update(i, v)),
        ],
        1..250,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slotted heap behaves exactly like a RID→row map, through
    /// arbitrary interleavings of inserts, deletes, updates and slot reuse.
    #[test]
    fn heap_matches_map_model(ops in arb_heap_ops()) {
        let schema = Schema::new(vec![ColumnDef::new("V", DataType::Integer)]).unwrap();
        let heap = HeapTable::new(&schema);
        let mut model: HashMap<idaa::host::Rid, i32> = HashMap::new();
        for op in ops {
            match op {
                HeapOp::Insert(v) => {
                    let rid = heap.insert(vec![Value::Int(v)]);
                    prop_assert!(model.insert(rid, v).is_none(), "RID reused while live");
                }
                HeapOp::Delete(nth) => {
                    if model.is_empty() { continue; }
                    let mut keys: Vec<_> = model.keys().copied().collect();
                    keys.sort();
                    let rid = keys[nth % keys.len()];
                    let old = heap.delete(rid).unwrap();
                    prop_assert_eq!(&old[0], &Value::Int(model.remove(&rid).unwrap()));
                }
                HeapOp::Update(nth, v) => {
                    if model.is_empty() { continue; }
                    let mut keys: Vec<_> = model.keys().copied().collect();
                    keys.sort();
                    let rid = keys[nth % keys.len()];
                    let old = heap.update(rid, vec![Value::Int(v)]).unwrap();
                    prop_assert_eq!(&old[0], &Value::Int(model[&rid]));
                    model.insert(rid, v);
                }
            }
            prop_assert_eq!(heap.len(), model.len());
        }
        // Final full-scan equivalence.
        let mut scanned: Vec<(idaa::host::Rid, i32)> = heap
            .scan()
            .into_iter()
            .map(|(rid, row)| (rid, row[0].as_i64().unwrap() as i32))
            .collect();
        scanned.sort();
        let mut expect: Vec<(idaa::host::Rid, i32)> = model.into_iter().collect();
        expect.sort();
        prop_assert_eq!(scanned, expect);
    }
}

#[derive(Debug, Clone)]
enum TxnOp {
    Begin(u8),
    Prepare(u8),
    Commit(u8),
    Abort(u8),
}

fn arb_txn_ops() -> impl Strategy<Value = Vec<TxnOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u8..12).prop_map(TxnOp::Begin),
            (1u8..12).prop_map(TxnOp::Prepare),
            (1u8..12).prop_map(TxnOp::Commit),
            (1u8..12).prop_map(TxnOp::Abort),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MVCC visibility satisfies the declarative rule for any sequence of
    /// transaction state transitions and any snapshot taken along the way.
    #[test]
    fn mvcc_visibility_matches_declarative_rule(ops in arb_txn_ops(), me in 1u64..12) {
        let reg = TxnRegistry::default();
        // Shadow model: txn → (status, commit order).
        let mut model: HashMap<u64, TxnStatus> = HashMap::new();
        for op in &ops {
            match op {
                TxnOp::Begin(t) => {
                    reg.begin(*t as u64);
                    model.insert(*t as u64, TxnStatus::Active);
                }
                TxnOp::Prepare(t) => {
                    // Only meaningful for known transactions; the registry
                    // registers unknowns, mirror that.
                    reg.prepare(*t as u64);
                    model.insert(*t as u64, TxnStatus::Prepared);
                }
                TxnOp::Commit(t) => {
                    let seq = reg.commit(*t as u64);
                    model.insert(*t as u64, TxnStatus::Committed(seq));
                }
                TxnOp::Abort(t) => {
                    reg.abort(*t as u64);
                    model.insert(*t as u64, TxnStatus::Aborted);
                }
            }
        }
        let snap: Snapshot = reg.snapshot(me);
        // Declarative rule, evaluated purely on the model:
        let visible_creation = |t: u64| -> bool {
            t == me
                || matches!(model.get(&t), Some(TxnStatus::Committed(seq)) if *seq <= snap.seq)
        };
        for creator in 0u64..14 {
            for deleter in 0u64..14 {
                let expect = visible_creation(creator)
                    && !(deleter != 0 && (deleter == me || visible_creation(deleter)));
                prop_assert_eq!(
                    reg.version_visible(creator, deleter, &snap),
                    expect,
                    "creator={} deleter={} me={}", creator, deleter, me
                );
            }
        }
    }

    /// Snapshots are stable: later commits never become visible to an
    /// earlier snapshot.
    #[test]
    fn snapshots_are_stable(pre in 0u8..6, post in 1u8..6) {
        let reg = TxnRegistry::default();
        for t in 0..pre {
            let id = 100 + t as u64;
            reg.begin(id);
            reg.commit(id);
        }
        let snap = reg.snapshot(999);
        for t in 0..pre {
            prop_assert!(reg.created_visible(100 + t as u64, &snap));
        }
        for t in 0..post {
            let id = 200 + t as u64;
            reg.begin(id);
            reg.commit(id);
            prop_assert!(!reg.created_visible(id, &snap), "post-snapshot commit leaked in");
        }
    }
}
