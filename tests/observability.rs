//! Query-lifecycle observability: deterministic trace span trees on the
//! virtual clock, the process-wide metrics registry, and EXPLAIN ANALYZE.
//!
//! The invariants under test:
//!
//! * every statement produces a well-nested span tree whose timestamps are
//!   virtual-clock offsets only — two same-seed runs render byte-identical
//!   traces;
//! * an AOT `INSERT … SELECT` pushdown trace contains control-message
//!   transfers only (no row frames cross the link);
//! * the `link.*` metrics counters reconcile exactly with `LinkMetrics`,
//!   and counters stay monotone under seeded chaos;
//! * retries, crash recovery, and 2PC legs all surface as trace events;
//! * the `disk.*` storage-fault counters reconcile exactly with the
//!   engine's own atomics, and scrub detections / node rebuilds surface
//!   as structural trace events.

use idaa::netsim::sites;
use idaa::{CrashPlan, DiskFaultPlan, FaultPlan, FleetConfig, Idaa, IdaaConfig, Route, Value, SYSADM};
use std::time::Duration;

fn seeded_system() -> (Idaa, idaa::Session) {
    let idaa = Idaa::default();
    let s = idaa.session(SYSADM);
    (idaa, s)
}

/// Build an accelerated SALES table plus an AOT staging table.
fn stage_setup(idaa: &Idaa, s: &mut idaa::Session, rows: usize) {
    idaa.execute(s, "CREATE TABLE SALES (ID INT NOT NULL, REGION VARCHAR(8), AMOUNT DOUBLE)")
        .unwrap();
    let vals: Vec<String> = (0..rows)
        .map(|i| format!("({i}, '{}', {}.0E0)", ["EU", "US"][i % 2], i))
        .collect();
    idaa.execute(s, &format!("INSERT INTO SALES VALUES {}", vals.join(", "))).unwrap();
    idaa.execute(s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
    idaa.execute(s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
    idaa.execute(s, "CREATE TABLE STAGE (REGION VARCHAR(8), TOTAL DOUBLE) IN ACCELERATOR")
        .unwrap();
    idaa.execute(s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
}

#[test]
fn offloaded_query_trace_covers_the_whole_lifecycle() {
    let (idaa, mut s) = seeded_system();
    stage_setup(&idaa, &mut s, 64);
    idaa.tracer().clear();
    idaa.query(&mut s, "SELECT region, SUM(amount) FROM sales GROUP BY region").unwrap();

    let trace = idaa.tracer().last_containing("SUM(AMOUNT)").expect("trace recorded");
    let root = &trace.root;
    root.validate().unwrap();
    assert_eq!(root.name, "statement");
    assert_eq!(root.attr("route"), Some("Accelerator"));

    // Parse, route decision (with reason), privilege check, the shipped
    // statement and its reply frame, and per-operator spans all appear.
    assert!(root.find("parse").is_some(), "{}", root.render());
    let route = root.find("route").expect("route event");
    assert_eq!(route.attr("route"), Some("Accelerator"));
    assert_eq!(route.attr("reason"), Some("all tables accelerated"));
    assert_eq!(route.attr("mode"), Some("ELIGIBLE"));
    let privilege = root.find("privilege").expect("privilege event");
    assert_eq!(privilege.attr("priv"), Some("SELECT"));

    let transfers = root.find_all("transfer");
    assert!(
        transfers.iter().any(|t| t.attr("kind") == Some("stmt") && t.attr("dir") == Some("to_accel")),
        "statement request must cross the link: {}",
        root.render()
    );
    assert!(
        transfers.iter().any(|t| t.attr("kind") == Some("frame") && t.attr("dir") == Some("to_host")),
        "result frame must travel back: {}",
        root.render()
    );

    let ops = root.find_all("op");
    assert!(
        ops.iter().any(|o| o.attr("op").is_some_and(|l| l.starts_with("AGGREGATE"))),
        "aggregate operator span missing: {}",
        root.render()
    );
    assert!(
        ops.iter().any(|o| o.attr("rows") == Some("2")),
        "two groups out of the aggregate: {}",
        root.render()
    );
}

#[test]
fn aot_insert_select_trace_shows_control_frames_only() {
    let (idaa, mut s) = seeded_system();
    stage_setup(&idaa, &mut s, 64);
    idaa.tracer().clear();
    let out = idaa
        .execute(&mut s, "INSERT INTO STAGE SELECT region, SUM(amount) FROM sales GROUP BY region")
        .unwrap();
    assert_eq!(out.route, Route::Accelerator);

    let trace = idaa.tracer().last_containing("INSERT INTO STAGE").expect("trace recorded");
    let root = &trace.root;
    root.validate().unwrap();
    let transfers = root.find_all("transfer");
    assert!(!transfers.is_empty(), "pushdown still ships control messages");
    for t in &transfers {
        assert_ne!(
            t.attr("kind"),
            Some("frame"),
            "AOT pushdown must not move row frames: {}",
            root.render()
        );
    }
    // The same statement against a *host* source moves row frames — the
    // trace makes the pushdown visible structurally.
    idaa.execute(&mut s, "CREATE TABLE HOSTSRC (REGION VARCHAR(8), AMOUNT DOUBLE)").unwrap();
    idaa.execute(&mut s, "INSERT INTO HOSTSRC VALUES ('EU', 1.0E0), ('US', 2.0E0)").unwrap();
    idaa.tracer().clear();
    idaa.execute(&mut s, "INSERT INTO STAGE SELECT region, amount FROM hostsrc").unwrap();
    let trace = idaa.tracer().last_containing("INSERT INTO STAGE").expect("trace recorded");
    assert!(
        trace.root.find_all("transfer").iter().any(|t| t.attr("kind") == Some("frame")),
        "host-sourced insert must ship row frames: {}",
        trace.root.render()
    );
}

#[test]
fn commit_replication_and_checkpoint_events_are_traced() {
    let (idaa, mut s) = seeded_system();
    stage_setup(&idaa, &mut s, 64);
    idaa.tracer().clear();
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO STAGE VALUES ('EU', 1.0E0)").unwrap();
    idaa.execute(&mut s, "COMMIT").unwrap();

    let trace = idaa.tracer().last_containing("COMMIT").expect("trace recorded");
    let commit = trace.root.find("commit").expect("commit span");
    assert_eq!(commit.attr("kind"), Some("2pc"));
    // PREPARE, vote, and phase-2 decision all cross as control messages.
    assert!(
        commit.find_all("transfer").len() >= 3,
        "2PC needs at least three control transfers: {}",
        trace.root.render()
    );
    assert_eq!(idaa.metrics().counter("commits.twopc"), 1);
}

#[test]
fn retry_and_recovery_events_surface_in_traces() {
    let (idaa, mut s) = seeded_system();
    idaa.execute(&mut s, "CREATE TABLE R (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "INSERT INTO R VALUES (1), (2)").unwrap();

    // Lose the first delivery attempt of the shipped statement: the trace
    // records the failed transfer and the retry event.
    idaa.tracer().clear();
    idaa.link().fail_next_transfers(1);
    idaa.query(&mut s, "SELECT COUNT(*) FROM r").unwrap();
    let trace = idaa.tracer().last_containing("SELECT COUNT(*)").unwrap();
    let root = &trace.root;
    assert!(root.find("retry").is_some(), "retry event missing: {}", root.render());
    assert!(
        root.find_all("transfer").iter().any(|t| t.attr("err").is_some()),
        "failed transfer attempt must carry err: {}",
        root.render()
    );
    assert!(idaa.metrics().counter("exchange.retries") >= 1);

    // Crash the accelerator: the next statement drives recovery and the
    // trace carries the restart event with the new epoch.
    idaa.tracer().clear();
    idaa.accel().crash();
    idaa.query(&mut s, "SELECT COUNT(*) FROM r").unwrap();
    let trace = idaa.tracer().last_containing("SELECT COUNT(*)").unwrap();
    let restart = trace.root.find("accel.restart").expect("restart event");
    assert_eq!(restart.attr("epoch"), Some("2"));
    assert!(restart.attr("replayed_bytes").is_some());
    assert_eq!(idaa.metrics().counter("accel.restarts"), 1);
}

#[test]
fn metrics_reconcile_with_link_metrics_under_seeded_chaos() {
    let (idaa, mut s) = seeded_system();
    stage_setup(&idaa, &mut s, 128);
    // Probabilistic drops force retries and failures while the workload
    // keeps succeeding.
    idaa.set_fault_plan(FaultPlan::dropping(7, 0.15));
    let before = idaa.metrics().snapshot();
    for i in 0..20 {
        let _ = idaa.execute(&mut s, &format!("INSERT INTO STAGE VALUES ('EU', {i}.0E0)"));
        let _ = idaa.query(&mut s, "SELECT COUNT(*) FROM stage");
    }
    let after = idaa.metrics().snapshot();
    // Counters are monotone: nothing in the registry ever decreases.
    after.monotone_since(&before).unwrap();

    // The link.* counters mirror LinkMetrics by construction — exact
    // equality, not approximation, delivered traffic and failures alike.
    let wire = idaa.link().metrics();
    assert_eq!(after.counter("link.delivered.to_accel.bytes"), wire.bytes_to_accel);
    assert_eq!(after.counter("link.delivered.to_host.bytes"), wire.bytes_to_host);
    assert_eq!(after.counter("link.delivered.to_accel.msgs"), wire.messages_to_accel);
    assert_eq!(after.counter("link.delivered.to_host.msgs"), wire.messages_to_host);
    assert_eq!(after.counter("link.failures"), wire.failures);
    assert!(after.counter("link.failures") > 0, "the fault plan must have bitten");
    // Statement accounting adds up: every statement is either host- or
    // accelerator-routed or failed with an SQLCODE.
    let statements = after.counter("statements.total");
    let routed = after.counter("statements.route.host") + after.counter("statements.route.accel");
    let errors: u64 = after
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("errors.sqlcode."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(statements, routed + errors, "\n{}", after.render());
}

#[test]
fn same_seed_chaos_runs_render_identical_traces_and_metrics() {
    let run = || {
        let (idaa, mut s) = seeded_system();
        stage_setup(&idaa, &mut s, 96);
        idaa.set_fault_plan(FaultPlan::dropping(23, 0.2));
        idaa.tracer().clear();
        for i in 0..12 {
            let _ = idaa.execute(&mut s, &format!("INSERT INTO STAGE VALUES ('EU', {i}.0E0)"));
            let _ = idaa.query(&mut s, "SELECT COUNT(*), SUM(total) FROM stage");
        }
        let traces: String =
            idaa.tracer().statements().iter().map(|t| t.root.render()).collect();
        (traces, idaa.metrics().snapshot().render())
    };
    let (traces_a, metrics_a) = run();
    let (traces_b, metrics_b) = run();
    assert_eq!(traces_a, traces_b, "same seed must render byte-identical traces");
    assert_eq!(metrics_a, metrics_b, "same seed must produce byte-identical metrics");
    assert!(traces_a.contains("transfer"), "sanity: the workload produced spans");
}

#[test]
fn disabling_the_sink_stops_collection_but_not_execution() {
    let (idaa, mut s) = seeded_system();
    idaa.execute(&mut s, "CREATE TABLE T (X INT) IN ACCELERATOR").unwrap();
    idaa.tracer().set_enabled(false);
    let mut quiet = idaa.session(SYSADM);
    idaa.tracer().clear();
    idaa.execute(&mut quiet, "INSERT INTO T VALUES (1)").unwrap();
    assert!(idaa.tracer().last().is_none(), "untraced session must record nothing");
    // EXPLAIN ANALYZE borrows an enabled trace even on an untraced session.
    let r = idaa.query(&mut quiet, "EXPLAIN ANALYZE SELECT COUNT(*) FROM t").unwrap();
    let text: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
    assert!(text.iter().any(|l| l.contains("op=")), "{text:?}");
    assert!(idaa.tracer().last().is_none(), "the borrowed trace is not sink-recorded");
    idaa.tracer().set_enabled(true);
}

#[test]
fn virtual_clock_timestamps_only() {
    // The entire workload runs in well under a virtual minute; wall time
    // would be nanoseconds-since-epoch scale. Any span stamped from the
    // wall clock lands far outside the link clock's range.
    let (idaa, mut s) = seeded_system();
    stage_setup(&idaa, &mut s, 64);
    idaa.tracer().clear();
    idaa.query(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    idaa.execute(&mut s, "INSERT INTO STAGE SELECT region, SUM(amount) FROM sales GROUP BY region")
        .unwrap();
    let horizon = idaa.link().now() + Duration::from_secs(1);
    for t in idaa.tracer().statements() {
        t.root.validate().unwrap();
        let mut stack = vec![&t.root];
        while let Some(n) = stack.pop() {
            assert!(
                n.end <= horizon,
                "span {} stamped beyond the virtual clock: {:?}",
                n.name,
                n.end
            );
            stack.extend(&n.children);
        }
    }
}

#[test]
fn explain_analyze_reports_routed_execution() {
    let (idaa, mut s) = seeded_system();
    stage_setup(&idaa, &mut s, 64);
    let r = idaa
        .query(
            &mut s,
            "EXPLAIN ANALYZE SELECT region, SUM(amount) FROM sales GROUP BY region",
        )
        .unwrap();
    let text: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
    assert!(text[0].contains("ROUTE: Accelerator"), "{text:?}");
    assert!(text.iter().any(|l| l.trim() == "-- ANALYZE --"), "{text:?}");
    assert!(
        text.iter().any(|l| l.contains("op=AGGREGATE") && l.contains("rows=2")),
        "per-operator row counts missing: {text:?}"
    );
    assert!(text.iter().any(|l| l.contains("transfer")), "{text:?}");
    // Executed — unlike plain EXPLAIN, the accelerator ran a query.
    let queries = idaa.accel().stats.queries.load(std::sync::atomic::Ordering::Relaxed);
    assert!(queries > 0);

    // A COUNT(*) sanity check of the analyzed statement's answer path:
    // EXPLAIN ANALYZE consumed the rows, so re-running returns them.
    let out = idaa.query(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::BigInt(64));
}

// ---------------------------------------------------------------------------
// Storage faults: disk.* counters and scrub / rebuild observability
// ---------------------------------------------------------------------------

/// The registry's `disk.*` counters are delta-mirrored from the engine's
/// own atomics, so the two views must reconcile *exactly* — and a scrub
/// that detects latent bit-rot between statements surfaces as a
/// structural `disk.scrub` trace event, not a log line.
#[test]
fn disk_scrub_metrics_reconcile_with_engine_stats_and_emit_trace_events() {
    use std::sync::atomic::Ordering;
    let idaa = Idaa::new(IdaaConfig {
        // Checkpoints off so the rot stays in the replay tail; the scrub
        // (not recovery) must be what finds it.
        checkpoint_every: Duration::from_secs(3600),
        scrub_every: Duration::from_micros(200),
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE R (X INT) IN ACCELERATOR").unwrap();
    idaa.set_disk_plan(DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 2).seeded(0xA11CE));
    for i in 0..20 {
        idaa.execute(&mut s, &format!("INSERT INTO R VALUES ({i})")).unwrap();
        idaa.link().advance(Duration::from_micros(100));
    }

    let snap = idaa.metrics().snapshot();
    let stats = &idaa.accel().stats;
    for (key, engine_total) in [
        ("disk.corruptions_detected", stats.disk_corruptions_detected.load(Ordering::Relaxed)),
        ("disk.records_truncated", stats.disk_records_truncated.load(Ordering::Relaxed)),
        ("disk.checkpoint_fallbacks", stats.disk_checkpoint_fallbacks.load(Ordering::Relaxed)),
        ("disk.scrub_repairs", stats.disk_scrub_repairs.load(Ordering::Relaxed)),
        ("disk.read_failures", stats.disk_read_failures.load(Ordering::Relaxed)),
    ] {
        assert_eq!(snap.counter(key), engine_total, "{key} diverged\n{}", snap.render());
    }
    assert!(snap.counter("disk.corruptions_detected") >= 1, "the rot must be found");
    assert!(snap.counter("disk.scrub_repairs") >= 1, "the scrub must repair it");
    assert!(snap.counter("disk.scrub.steps") >= 1, "scrub work is metered");
    assert!(snap.counter("disk.scrub.scanned_bytes") > 0, "verification I/O is metered");

    // The detection is discoverable structurally in some statement's trace.
    let detections: Vec<_> = idaa
        .tracer()
        .statements()
        .iter()
        .flat_map(|t| {
            t.root
                .find_all("disk.scrub")
                .iter()
                .map(|e| e.attr("corrupt_records").map(str::to_string))
                .collect::<Vec<_>>()
        })
        .collect();
    assert!(!detections.is_empty(), "scrub detection must surface as a trace event");

    // The repair healed the media: a forced recovery replays clean.
    idaa.accel().crash();
    assert!(idaa.recover(), "scrubbed media must recover without a rebuild");
    assert_eq!(idaa.metrics().counter("disk.node_rebuilds"), 0);
}

/// A rebuild after unrepairable corruption is visible end to end: the
/// recovery-driving statement's `accel.restart` event carries the
/// `rebuilt` attribute, the host re-materialization bytes land in
/// `disk.repair.bytes`, and the engine/registry counter views still
/// reconcile exactly.
#[test]
fn node_rebuild_surfaces_in_restart_event_and_repair_metrics() {
    use std::sync::atomic::Ordering;
    let idaa = Idaa::new(IdaaConfig {
        checkpoint_every: Duration::from_secs(3600),
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    // SALES is replicated and loaded — rebuildable from the host. R is a
    // sole-copy AOT whose loss the rebuild must quarantine, not hide.
    idaa.execute(&mut s, "CREATE TABLE SALES (ID INT NOT NULL)").unwrap();
    idaa.execute(&mut s, "INSERT INTO SALES VALUES (1), (2), (3)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CREATE TABLE R (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    idaa.set_disk_plan(DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 1).seeded(0xB0B));
    idaa.execute(&mut s, "INSERT INTO R VALUES (1)").unwrap();

    idaa.accel().crash();
    idaa.tracer().clear();
    // The next statement drives recovery; acked rot in the replay tail
    // forces the rebuild, and SALES is re-shipped before the query runs.
    let out = idaa.query(&mut s, "SELECT COUNT(*) FROM SALES").unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::BigInt(3));

    let trace = idaa.tracer().last_containing("SELECT COUNT(*)").expect("trace recorded");
    let restart = trace.root.find("accel.restart").expect("restart event");
    assert_eq!(restart.attr("rebuilt"), Some("true"), "{}", trace.root.render());
    assert!(restart.attr("epoch").is_some());

    assert_eq!(idaa.metrics().counter("disk.node_rebuilds"), 1);
    assert!(
        idaa.metrics().counter("disk.repair.bytes") > 0,
        "the SALES re-materialization must be metered as repair traffic"
    );
    assert_eq!(
        idaa.metrics().counter("disk.corruptions_detected"),
        idaa.accel().stats.disk_corruptions_detected.load(Ordering::Relaxed),
        "registry and engine must agree after the rebuild"
    );
    assert!(idaa.metrics().counter("disk.corruptions_detected") >= 1);
    assert_eq!(
        idaa.accel().quarantined_tables(),
        vec![idaa::ObjectName::qualified("APP", "R")],
        "the sole-copy AOT is quarantined, never silently emptied"
    );
}

// ---------------------------------------------------------------------------
// Fleet: scatter/gather and failover traces
// ---------------------------------------------------------------------------

fn fleet_system() -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig {
        fleet: FleetConfig {
            accelerators: 3,
            shards: 4,
            replication_factor: 2,
            ..FleetConfig::default()
        },
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE FLOG (X INT NOT NULL, G VARCHAR(2)) IN ACCELERATOR DISTRIBUTE BY HASH(X)",
    )
    .unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let vals: Vec<String> =
        (0..32).map(|i| format!("({i}, '{}')", ["a", "b"][i % 2])).collect();
    idaa.execute(&mut s, &format!("INSERT INTO FLOG VALUES {}", vals.join(", "))).unwrap();
    (idaa, s)
}

/// A healthy scatter/gather renders one `gather` span covering every shard,
/// and each `shard` span names the node that served it (with its epoch) and
/// nests that node's own transfer spans — the per-shard link breakdown.
#[test]
fn fleet_gather_trace_breaks_down_per_shard() {
    let (idaa, mut s) = fleet_system();
    idaa.tracer().clear();
    idaa.query(&mut s, "SELECT G, COUNT(*) FROM FLOG GROUP BY G ORDER BY G").unwrap();

    let trace = idaa.tracer().last_containing("COUNT(*)").expect("trace recorded");
    let root = &trace.root;
    root.validate().unwrap();

    let gather = root.find("gather").expect("gather span");
    assert_eq!(gather.attr("shards"), Some("4"));
    assert!(gather.attr("tables").is_some_and(|t| t.contains("FLOG")), "{}", root.render());

    let shards = gather.find_all("shard");
    assert_eq!(shards.len(), 4, "one shard span per shard:\n{}", root.render());
    for sp in &shards {
        let node = sp.attr("node").expect("shard span names its serving node");
        assert!(node.starts_with("ACCEL"), "node identity, got {node}");
        assert_eq!(sp.attr("epoch"), Some("1"), "healthy nodes are in their first epoch");
        // Per-shard transfer breakdown: the statement + reply-frame
        // transfers inside a shard span carry that same node's identity.
        let transfers = sp.find_all("transfer");
        assert!(!transfers.is_empty(), "shard exchanges are traced:\n{}", root.render());
        assert!(
            transfers.iter().all(|t| t.attr("node") == Some(node)),
            "transfers in a shard span belong to its node:\n{}",
            root.render()
        );
    }
    // The preferred placement serves: shards 0..4 map to nodes 1,2,3,1.
    let served: Vec<_> = shards.iter().map(|sp| sp.attr("node").unwrap()).collect();
    assert_eq!(served, vec!["ACCEL1", "ACCEL2", "ACCEL3", "ACCEL1"]);

    assert!(root.find_all("failover").is_empty(), "healthy gathers never fail over");
}

/// An inner equi-join against a sharded probe table ships a build-side key
/// summary with each gather request: shard spans report the summary bytes,
/// the answer is byte-identical with the knob off, and reply traffic
/// shrinks when the summary filters most probe rows out.
#[test]
fn fleet_join_pushdown_shrinks_gathers_and_is_traced() {
    let run = |pushdown: bool| -> (Vec<idaa::Row>, u64, bool) {
        let idaa = Idaa::new(IdaaConfig {
            fleet: FleetConfig {
                accelerators: 3,
                shards: 4,
                replication_factor: 2,
                join_pushdown: pushdown,
                ..FleetConfig::default()
            },
            ..IdaaConfig::default()
        });
        let mut s = idaa.session(SYSADM);
        idaa.execute(
            &mut s,
            "CREATE TABLE FLOG (X INT NOT NULL, G VARCHAR(2)) IN ACCELERATOR \
             DISTRIBUTE BY HASH(X)",
        )
        .unwrap();
        let vals: Vec<String> =
            (0..200).map(|i| format!("({i}, '{}')", ["a", "b"][i % 2])).collect();
        idaa.execute(&mut s, &format!("INSERT INTO FLOG VALUES {}", vals.join(", ")))
            .unwrap();
        // A tiny replicated dimension: only 4 of 200 probe keys can join.
        idaa.execute(&mut s, "CREATE TABLE FDIM (X INT NOT NULL, NAME VARCHAR(4))").unwrap();
        idaa.execute(
            &mut s,
            "INSERT INTO FDIM VALUES (3, 'a'), (50, 'b'), (111, 'c'), (180, 'd')",
        )
        .unwrap();
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('FDIM')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('FDIM')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.tracer().clear();
        let before: u64 =
            (0..idaa.fleet_size()).map(|i| idaa.node_link(i).metrics().bytes_to_host).sum();
        let rows = idaa
            .query(
                &mut s,
                "SELECT f.x, d.name FROM flog f INNER JOIN fdim d ON f.x = d.x ORDER BY f.x",
            )
            .unwrap()
            .rows;
        let after: u64 =
            (0..idaa.fleet_size()).map(|i| idaa.node_link(i).metrics().bytes_to_host).sum();
        let trace = idaa.tracer().last_containing("INNER JOIN").expect("trace recorded");
        trace.root.validate().unwrap();
        let summarized = trace
            .root
            .find_all("shard")
            .iter()
            .all(|sp| sp.attr("summary_bytes").is_some());
        (rows, after - before, summarized)
    };
    let (with_rows, with_bytes, with_attr) = run(true);
    let (without_rows, without_bytes, without_attr) = run(false);
    assert_eq!(with_rows, without_rows, "pushdown must never change the answer");
    assert_eq!(with_rows.len(), 4);
    assert!(with_attr, "pushdown gathers report the shipped summary size");
    assert!(!without_attr, "no summary attribute when the knob is off");
    assert!(
        with_bytes < without_bytes,
        "summary-filtered replies must shrink gather traffic: {with_bytes} vs {without_bytes}"
    );
}

/// Crashing a primary mid-scatter surfaces in the trace: the affected shard
/// spans carry the *replica's* identity and a `failover` event records the
/// retarget (shard, from, to) — all discoverable structurally, no log
/// string-matching.
#[test]
fn fleet_failover_trace_names_replica_and_emits_failover_event() {
    let (idaa, mut s) = fleet_system();
    idaa.set_crash_plan_on(0, CrashPlan::at(sites::MID_SCATTER, 1).seeded(0x0B5));
    idaa.tracer().clear();
    idaa.query(&mut s, "SELECT G, COUNT(*) FROM FLOG GROUP BY G ORDER BY G").unwrap();

    let trace = idaa.tracer().last_containing("COUNT(*)").expect("trace recorded");
    let root = &trace.root;
    root.validate().unwrap();

    // Node 0 (ACCEL1) crashes serving shard 0: that shard fails over to the
    // replica (ACCEL2). By the time the scatter reaches shard 3 — node 0's
    // other shard — the readiness probe has already restarted it, so ACCEL1
    // serves again, now in its second epoch.
    let gather = root.find("gather").expect("gather span");
    let shards = gather.find_all("shard");
    assert_eq!(shards.len(), 4);
    let by_shard: Vec<(&str, &str)> = shards
        .iter()
        .map(|sp| (sp.attr("node").unwrap(), sp.attr("epoch").unwrap()))
        .collect();
    assert_eq!(
        by_shard,
        vec![("ACCEL2", "1"), ("ACCEL2", "1"), ("ACCEL3", "1"), ("ACCEL1", "2")],
        "{}",
        root.render()
    );

    let failovers = root.find_all("failover");
    assert_eq!(failovers.len(), 1, "only the crashed attempt fails over:\n{}", root.render());
    assert_eq!(failovers[0].attr("shard"), Some("0"));
    assert_eq!(failovers[0].attr("from"), Some("0"));
    assert_eq!(failovers[0].attr("to"), Some("1"));
}

// ---------------------------------------------------------------------------
// Server scheduler observability
// ---------------------------------------------------------------------------

/// Every statement the server schedules carries exactly one `queue` event
/// (seat, priority class, queue wait, admitting round) in its span tree,
/// and the `server.*` counters reconcile exactly with the scheduler's own
/// completion log — done/failed tallies, summed queue time, round count,
/// and drained per-seat gauges.
#[test]
fn server_queue_events_and_counters_reconcile_with_the_completion_log() {
    let idaa = Idaa::default();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE T (A BIGINT)").unwrap();
    idaa.execute(&mut s, "INSERT INTO T VALUES (1), (2), (3)").unwrap();
    drop(s);
    let srv = idaa::Server::with_idaa(
        idaa,
        idaa::ServerConfig { admission_limit: 1, ..idaa::ServerConfig::default() },
    );
    let hi = srv.connect_with_priority(SYSADM, idaa::Priority::High).unwrap();
    let lo = srv.connect(SYSADM).unwrap();
    for _ in 0..3 {
        srv.submit(lo, "SELECT A FROM T ORDER BY A").unwrap();
        srv.submit(hi, "SELECT COUNT(*) FROM T").unwrap();
    }
    srv.idaa().tracer().clear();
    let completions = srv.run_until_idle();
    assert_eq!(completions.len(), 6);
    assert!(
        completions[..3].iter().all(|c| c.session == hi),
        "the High seat must drain before Normal even though it submitted second"
    );

    // One trace per scheduled statement, in admission order, each with a
    // single queue event whose attributes mirror the completion record.
    let traces = srv.idaa().tracer().statements();
    assert_eq!(traces.len(), completions.len(), "one trace per scheduled statement");
    for (t, c) in traces.iter().zip(&completions) {
        t.root.validate().unwrap();
        let queue = t.root.find_all("queue");
        assert_eq!(queue.len(), 1, "exactly one queue event: {}", t.root.render());
        let q = queue[0];
        assert_eq!(q.attr("seat").unwrap(), c.session.to_string(), "{}", t.root.render());
        let expect_priority = if c.session == hi { "HIGH" } else { "NORMAL" };
        assert_eq!(q.attr("priority"), Some(expect_priority), "{}", t.root.render());
        assert_eq!(q.attr("queued_us").unwrap(), c.queued.as_micros().to_string());
        assert_eq!(q.attr("round").unwrap(), c.round.to_string());
    }
    // Unscheduled statements (the plain facade path) never carry one.
    let mut plain = srv.idaa().session(SYSADM);
    srv.idaa().query(&mut plain, "SELECT COUNT(*) FROM T").unwrap();
    let last = srv.idaa().tracer().last().unwrap();
    assert!(last.root.find_all("queue").is_empty(), "{}", last.root.render());

    // Counters reconcile with the completion log; gauges show a drained,
    // idle server.
    let m = srv.idaa().metrics();
    assert_eq!(m.counter("server.statements"), 6);
    assert_eq!(m.counter("server.submitted"), 6);
    assert_eq!(m.counter("server.rounds"), srv.rounds());
    assert_eq!(m.counter("server.sessions.connected"), 2);
    for seat in [hi, lo] {
        let done = completions.iter().filter(|c| c.session == seat && c.result.is_ok()).count();
        let failed = completions.iter().filter(|c| c.session == seat && c.result.is_err()).count();
        let queued: u64 =
            completions.iter().filter(|c| c.session == seat).map(|c| c.queued.as_micros() as u64).sum();
        assert_eq!(m.counter(&format!("server.session.{seat}.done")), done as u64);
        assert_eq!(m.counter(&format!("server.session.{seat}.failed")), failed as u64);
        assert_eq!(m.counter(&format!("server.session.{seat}.queue_time_us")), queued);
        assert_eq!(m.gauge(&format!("server.session.{seat}.queued")), Some(0));
        assert_eq!(m.gauge(&format!("server.session.{seat}.running")), Some(0));
    }
    assert_eq!(m.gauge(&format!("server.session.{hi}.priority")), Some(idaa::Priority::High.rank()));
}
