//! End-to-end SQL behavior through the federated facade: DDL, DML,
//! queries, routing, and error codes — spanning idaa-sql, idaa-host,
//! idaa-accel, idaa-netsim and idaa-core.

use idaa::{Idaa, Route, Value, SYSADM};

fn system() -> (Idaa, idaa::Session) {
    let idaa = Idaa::default();
    let s = idaa.session(SYSADM);
    (idaa, s)
}

fn seed_sales(idaa: &Idaa, s: &mut idaa::Session, n: usize) {
    idaa.execute(
        s,
        "CREATE TABLE SALES (ID INT NOT NULL, REGION VARCHAR(8), AMOUNT DECIMAL(10,2), \
         QTY INT, SOLD_ON DATE)",
    )
    .unwrap();
    let mut vals = Vec::new();
    for i in 0..n {
        vals.push(format!(
            "({i}, '{}', {}.25, {}, DATE '2015-0{}-01')",
            ["EU", "US", "APAC"][i % 3],
            (i % 500) + 1,
            i % 7,
            (i % 9) + 1
        ));
        if vals.len() == 500 {
            idaa.execute(s, &format!("INSERT INTO SALES VALUES {}", vals.join(", "))).unwrap();
            vals.clear();
        }
    }
    if !vals.is_empty() {
        idaa.execute(s, &format!("INSERT INTO SALES VALUES {}", vals.join(", "))).unwrap();
    }
}

fn accelerate(idaa: &Idaa, s: &mut idaa::Session, table: &str) {
    idaa.execute(s, &format!("CALL ACCEL_ADD_TABLES('{table}')")).unwrap();
    idaa.execute(s, &format!("CALL ACCEL_LOAD_TABLES('{table}')")).unwrap();
}

#[test]
fn same_query_same_answer_on_both_engines() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 3000);
    accelerate(&idaa, &mut s, "SALES");
    let queries = [
        "SELECT COUNT(*) FROM sales",
        "SELECT region, COUNT(*), SUM(amount), AVG(qty) FROM sales GROUP BY region ORDER BY region",
        "SELECT id FROM sales WHERE amount > 400 AND qty = 3 ORDER BY id LIMIT 20",
        "SELECT region, SUM(qty) FROM sales WHERE sold_on >= DATE '2015-04-01' GROUP BY region \
         HAVING SUM(qty) > 10 ORDER BY region",
        "SELECT DISTINCT qty FROM sales ORDER BY qty",
        "SELECT CASE WHEN qty > 3 THEN 'hi' ELSE 'lo' END AS band, COUNT(*) FROM sales \
         GROUP BY CASE WHEN qty > 3 THEN 'hi' ELSE 'lo' END ORDER BY band",
        "SELECT MIN(sold_on), MAX(sold_on) FROM sales WHERE region = 'EU'",
        "SELECT COUNT(DISTINCT region), STDDEV(qty) FROM sales",
        // Join-heavy: the WHERE conjuncts are single-sided, so the planner
        // pushes them below the join on both engines; answers must agree.
        "SELECT a.id, b.id FROM sales a INNER JOIN sales b ON a.id = b.id \
         WHERE a.qty = 3 AND b.amount > 400 ORDER BY a.id",
        "SELECT a.id, b.id FROM sales a LEFT JOIN sales b ON a.id = b.id AND b.qty > 5 \
         WHERE a.id < 50 ORDER BY a.id, b.id",
        "SELECT COUNT(*), SUM(a.qty) FROM sales a INNER JOIN sales b ON a.qty = b.qty \
         WHERE a.id < 100 AND b.id < 100",
        "SELECT COUNT(*) FROM sales a INNER JOIN sales b ON a.id < b.id \
         WHERE a.id < 40 AND b.id < 40",
        "SELECT id, amount FROM sales ORDER BY amount DESC, id LIMIT 15",
    ];
    for q in queries {
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
        let host = idaa.execute(&mut s, q).unwrap();
        assert_eq!(host.route, Route::Host);
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let accel = idaa.execute(&mut s, q).unwrap();
        assert_eq!(accel.route, Route::Accelerator, "query should offload: {q}");
        assert_rows_approx_eq(host.rows().unwrap(), accel.rows().unwrap(), q);
    }
}

/// Row-set equality with a relative tolerance on DOUBLE values: the two
/// engines accumulate floating-point sums in different row orders (the
/// accelerator's slices interleave), which is allowed to perturb the last
/// few bits.
fn assert_rows_approx_eq(a: &idaa::Rows, b: &idaa::Rows, context: &str) {
    assert_eq!(a.len(), b.len(), "row count mismatch for: {context}");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.len(), rb.len(), "arity mismatch for: {context}");
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Double(x), Value::Double(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() / scale < 1e-9,
                        "double mismatch {x} vs {y} for: {context}"
                    );
                }
                _ => assert_eq!(va, vb, "value mismatch for: {context}"),
            }
        }
    }
}

#[test]
fn joins_across_replicated_tables_offload() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 1000);
    idaa.execute(&mut s, "CREATE TABLE REGIONS (NAME VARCHAR(8) NOT NULL, MGR VARCHAR(10))")
        .unwrap();
    idaa.execute(
        &mut s,
        "INSERT INTO REGIONS VALUES ('EU', 'anna'), ('US', 'bob'), ('APAC', 'chen')",
    )
    .unwrap();
    accelerate(&idaa, &mut s, "SALES");
    accelerate(&idaa, &mut s, "REGIONS");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let out = idaa
        .execute(
            &mut s,
            "SELECT r.mgr, COUNT(*) FROM sales sl INNER JOIN regions r ON sl.region = r.name \
             GROUP BY r.mgr ORDER BY r.mgr",
        )
        .unwrap();
    assert_eq!(out.route, Route::Accelerator);
    assert_eq!(out.rows().unwrap().len(), 3);
    // Partially accelerated join falls back to host under ELIGIBLE.
    idaa.execute(&mut s, "CREATE TABLE LOCAL_ONLY (NAME VARCHAR(8))").unwrap();
    idaa.execute(&mut s, "INSERT INTO LOCAL_ONLY VALUES ('EU')").unwrap();
    let out = idaa
        .execute(
            &mut s,
            "SELECT COUNT(*) FROM sales sl INNER JOIN local_only l ON sl.region = l.name",
        )
        .unwrap();
    assert_eq!(out.route, Route::Host);
}

#[test]
fn aot_dml_full_cycle() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE STAGE (K INT NOT NULL, V VARCHAR(8)) IN ACCELERATOR")
        .unwrap();
    // INSERT VALUES, UPDATE, DELETE all run on the accelerator.
    let out = idaa
        .execute(&mut s, "INSERT INTO STAGE VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    assert_eq!(out.route, Route::Accelerator);
    assert_eq!(out.count(), 3);
    let out = idaa.execute(&mut s, "UPDATE STAGE SET V = 'z' WHERE K >= 2").unwrap();
    assert_eq!(out.count(), 2);
    let out = idaa.execute(&mut s, "DELETE FROM STAGE WHERE K = 1").unwrap();
    assert_eq!(out.count(), 1);
    let rows = idaa.query(&mut s, "SELECT k, v FROM stage ORDER BY k").unwrap();
    assert_eq!(rows.rows, vec![
        vec![Value::Int(2), Value::Varchar("z".into())],
        vec![Value::Int(3), Value::Varchar("z".into())],
    ]);
}

#[test]
fn insert_select_between_aots_is_pure_pushdown() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE A (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "CREATE TABLE B (X INT, DOUBLED BIGINT) IN ACCELERATOR").unwrap();
    let vals: Vec<String> = (0..500).map(|i| format!("({i})")).collect();
    idaa.execute(&mut s, &format!("INSERT INTO A VALUES {}", vals.join(", "))).unwrap();
    let before = idaa.link().metrics();
    let out = idaa.execute(&mut s, "INSERT INTO B SELECT x, x * 2 FROM a WHERE x < 100").unwrap();
    assert_eq!(out.count(), 100);
    let moved = idaa.link().metrics().since(&before);
    assert!(
        moved.total_bytes() < 500,
        "pushdown must move only control messages, moved {} bytes",
        moved.total_bytes()
    );
}

#[test]
fn db2_error_codes_surface() {
    let (idaa, mut s) = system();
    assert_eq!(idaa.execute(&mut s, "SELECT * FROM nope").unwrap_err().sqlcode(), -204);
    idaa.execute(&mut s, "CREATE TABLE T (X INT)").unwrap();
    assert_eq!(idaa.execute(&mut s, "CREATE TABLE T (Y INT)").unwrap_err().sqlcode(), -601);
    assert_eq!(idaa.execute(&mut s, "SELECT nope FROM t").unwrap_err().sqlcode(), -206);
    assert_eq!(idaa.execute(&mut s, "SELEC 1").unwrap_err().sqlcode(), -104);
    idaa.execute(&mut s, "CREATE TABLE AO (X INT) IN ACCELERATOR").unwrap();
    assert_eq!(
        idaa.execute(&mut s, "SELECT * FROM ao INNER JOIN t ON ao.x = t.x")
            .unwrap_err()
            .sqlcode(),
        -4742
    );
}

#[test]
fn update_on_aot_visible_to_later_offloaded_query_same_txn() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE W (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "INSERT INTO W VALUES (10)").unwrap();
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "UPDATE W SET X = 99").unwrap();
    let r = idaa.query(&mut s, "SELECT x FROM w").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Int(99), "own update visible before commit");
    idaa.execute(&mut s, "ROLLBACK").unwrap();
    let r = idaa.query(&mut s, "SELECT x FROM w").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::Int(10));
}

#[test]
fn groom_reclaims_after_churn() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE G (X INT) IN ACCELERATOR").unwrap();
    let vals: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    idaa.execute(&mut s, &format!("INSERT INTO G VALUES {}", vals.join(", "))).unwrap();
    idaa.execute(&mut s, "DELETE FROM G WHERE X < 100").unwrap();
    idaa.execute(&mut s, "UPDATE G SET X = X + 1000 WHERE X < 150").unwrap();
    // versions: 200 inserts + 50 update-inserts = 250; dead: 100 deletes + 50 updated-old.
    let table = idaa.accel().table(&idaa::ObjectName::bare("G")).unwrap();
    assert_eq!(table.version_count(), 250);
    let r = idaa.query(&mut s, "CALL SYSPROC.ACCEL_GROOM_TABLES('G')").unwrap();
    assert!(r.rows[0][0].render().contains("150"), "groomed 150 versions: {:?}", r.rows);
    assert_eq!(table.version_count(), 100);
    let r = idaa.query(&mut s, "SELECT COUNT(*) FROM g").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(100));
}

#[test]
fn script_execution_and_table_render() {
    let (idaa, mut s) = system();
    let outcomes = idaa
        .execute_script(
            &mut s,
            "CREATE TABLE SC (A INT, B VARCHAR(4));
             INSERT INTO SC VALUES (1, 'x'), (2, 'y');
             SELECT * FROM SC ORDER BY A;",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    let table = outcomes[2].rows().unwrap().to_table();
    assert!(table.contains("| A |") || table.contains("| A  |"), "{table}");
    assert!(table.contains("2 row(s)"));
}

#[test]
fn order_by_non_projected_and_aggregate_keys() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 300);
    let r = idaa
        .query(&mut s, "SELECT id FROM sales ORDER BY amount DESC, id LIMIT 3")
        .unwrap();
    assert_eq!(r.schema.len(), 1, "hidden sort key must be stripped");
    let r = idaa
        .query(
            &mut s,
            "SELECT region FROM sales GROUP BY region ORDER BY SUM(amount) DESC LIMIT 1",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn union_and_union_all() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE U1 (X INT, TAG VARCHAR(4))").unwrap();
    idaa.execute(&mut s, "CREATE TABLE U2 (X INT, TAG VARCHAR(4))").unwrap();
    idaa.execute(&mut s, "INSERT INTO U1 VALUES (1, 'a'), (2, 'b')").unwrap();
    idaa.execute(&mut s, "INSERT INTO U2 VALUES (2, 'b'), (3, 'c')").unwrap();
    let r = idaa
        .query(&mut s, "SELECT x, tag FROM u1 UNION ALL SELECT x, tag FROM u2 ORDER BY x")
        .unwrap();
    assert_eq!(r.len(), 4);
    let r = idaa
        .query(&mut s, "SELECT x, tag FROM u1 UNION SELECT x, tag FROM u2 ORDER BY x")
        .unwrap();
    assert_eq!(r.len(), 3, "plain UNION dedups");
    assert_eq!(r.rows[0][0], Value::Int(1));
    // Offloaded union over accelerated tables matches host answer.
    accelerate(&idaa, &mut s, "U1");
    accelerate(&idaa, &mut s, "U2");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let out = idaa
        .execute(&mut s, "SELECT x, tag FROM u1 UNION SELECT x, tag FROM u2 ORDER BY x")
        .unwrap();
    assert_eq!(out.route, Route::Accelerator);
    assert_eq!(out.rows().unwrap().rows, r.rows);
    // Mismatched arity errors.
    let err = idaa.query(&mut s, "SELECT x FROM u1 UNION SELECT x, tag FROM u2").unwrap_err();
    assert_eq!(err.sqlcode(), -104);
}

#[test]
fn decimal_arithmetic_through_sql() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE MONEY (AMT DECIMAL(10,2))").unwrap();
    idaa.execute(&mut s, "INSERT INTO MONEY VALUES (10.25), (0.75), (5.00)").unwrap();
    let r = idaa.query(&mut s, "SELECT SUM(amt) FROM money").unwrap();
    assert_eq!(r.scalar().unwrap().render(), "16.00");
    let r = idaa.query(&mut s, "SELECT amt * 2 FROM money WHERE amt = 10.25").unwrap();
    assert_eq!(r.scalar().unwrap().render(), "20.50");
    let err = idaa.query(&mut s, "SELECT amt / 0 FROM money").unwrap_err();
    assert_eq!(err.sqlcode(), -802);
}

#[test]
fn subqueries_and_left_joins_offloaded() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 2000);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let q = "SELECT t.region, t.total FROM \
             (SELECT region, SUM(amount) AS total FROM sales GROUP BY region) AS t \
             WHERE t.total > 0 ORDER BY t.region";
    let out = idaa.execute(&mut s, q).unwrap();
    assert_eq!(out.route, Route::Accelerator);
    assert_eq!(out.rows().unwrap().len(), 3);
}

#[test]
fn explain_reports_route_and_plan() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 100);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let r = idaa
        .query(&mut s, "EXPLAIN SELECT region, SUM(amount) FROM sales WHERE qty > 2 GROUP BY region")
        .unwrap();
    let text: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
    assert!(text[0].contains("ROUTE: Accelerator"), "{text:?}");
    assert!(text.iter().any(|l| l.contains("AGGREGATE")), "{text:?}");
    assert!(text.iter().any(|l| l.contains("SCAN")), "{text:?}");
    // EXPLAIN does not execute: no accelerator query was issued for it.
    let before = idaa.accel().stats.queries.load(std::sync::atomic::Ordering::Relaxed);
    idaa.query(&mut s, "EXPLAIN SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(
        idaa.accel().stats.queries.load(std::sync::atomic::Ordering::Relaxed),
        before
    );
    // DML explain shows the route.
    let r = idaa.query(&mut s, "EXPLAIN DELETE FROM sales WHERE id = 1").unwrap();
    assert!(r.rows[0][0].render().contains("ROUTE: Host"));
    // EXPLAIN of transaction control is unsupported.
    assert!(idaa.query(&mut s, "EXPLAIN COMMIT").is_err());
}

fn plan_lines(r: &idaa::Rows) -> Vec<String> {
    r.rows.iter().map(|row| row[0].render()).collect()
}

#[test]
fn explain_states_the_routing_reason() {
    let (idaa, mut s) = system();
    // ENABLE's cost heuristic only considers offload above
    // ENABLE_OFFLOAD_ROW_THRESHOLD rows, so seed past it.
    seed_sales(&idaa, &mut s, 12_000);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "CREATE INDEX IDX_ID ON SALES (ID)").unwrap();
    // NONE: the register gates everything.
    let text = plan_lines(&idaa.query(&mut s, "EXPLAIN SELECT COUNT(*) FROM sales").unwrap());
    assert_eq!(text[1], "REASON: acceleration register is NONE", "{text:?}");
    // ENABLE keeps an indexed point lookup local even though the table is
    // accelerated and large.
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ENABLE").unwrap();
    let text =
        plan_lines(&idaa.query(&mut s, "EXPLAIN SELECT amount FROM sales WHERE id = 7").unwrap());
    assert!(text[0].contains("ROUTE: Host"), "{text:?}");
    assert_eq!(text[1], "REASON: indexed point access stays local", "{text:?}");
    // The scan-heavy aggregate offloads on cost.
    let text = plan_lines(&idaa.query(&mut s, "EXPLAIN SELECT SUM(amount) FROM sales").unwrap());
    assert!(text[0].contains("ROUTE: Accelerator"), "{text:?}");
    assert_eq!(text[1], "REASON: cost heuristic favors offload", "{text:?}");
}

#[test]
fn explain_analyze_point_lookup_golden() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 100);
    idaa.execute(&mut s, "CREATE INDEX IDX_ID ON SALES (ID)").unwrap();
    let r = idaa.query(&mut s, "EXPLAIN ANALYZE SELECT qty FROM sales WHERE id = 7").unwrap();
    let text = plan_lines(&r);
    assert_eq!(text[0], "ROUTE: Host (CURRENT QUERY ACCELERATION = NONE)", "{text:?}");
    assert!(text.iter().any(|l| l.trim() == "-- ANALYZE --"), "{text:?}");
    // The executed section shows host-side operators with row counts —
    // exactly one row survives the point predicate.
    assert!(text.iter().any(|l| l.contains("host.exec")), "{text:?}");
    assert!(
        text.iter().any(|l| l.contains("op=FILTER") && l.contains("rows=1")),
        "point lookup must report one row out of the filter: {text:?}"
    );
    // Nothing crossed the link for a host-routed statement.
    assert!(!text.iter().any(|l| l.contains("transfer")), "{text:?}");
}

#[test]
fn explain_analyze_offloaded_join_aggregate_shows_transfers_and_rows() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 2000);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let r = idaa
        .query(
            &mut s,
            "EXPLAIN ANALYZE SELECT a.region, COUNT(*) FROM sales a \
             INNER JOIN sales b ON a.id = b.id WHERE a.qty > 3 \
             GROUP BY a.region ORDER BY a.region",
        )
        .unwrap();
    let text = plan_lines(&r);
    assert_eq!(text[0], "ROUTE: Accelerator (CURRENT QUERY ACCELERATION = ELIGIBLE)", "{text:?}");
    // The plan section shows the filter pushed below the join.
    let join_at = text.iter().position(|l| l.contains("JOIN")).expect("join line");
    let filter_at = text.iter().position(|l| l.contains("FILTER")).expect("filter line");
    assert!(filter_at > join_at, "filter renders below the join it was pushed under: {text:?}");
    // The executed section carries the wire transfers (statement over,
    // result frame back) and per-operator row counts.
    assert!(
        text.iter().any(|l| l.contains("transfer") && l.contains("kind=stmt")),
        "{text:?}"
    );
    assert!(
        text.iter().any(|l| l.contains("transfer") && l.contains("kind=frame")),
        "{text:?}"
    );
    assert!(
        text.iter().any(|l| l.contains("op=AGGREGATE") && l.contains("rows=3")),
        "three regions out of the aggregate: {text:?}"
    );
}

#[test]
fn explain_analyze_output_is_byte_identical_across_fresh_runs() {
    let run = || {
        let (idaa, mut s) = system();
        seed_sales(&idaa, &mut s, 500);
        accelerate(&idaa, &mut s, "SALES");
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let r = idaa
            .query(
                &mut s,
                "EXPLAIN ANALYZE SELECT region, SUM(amount) FROM sales \
                 WHERE qty > 1 GROUP BY region ORDER BY region",
            )
            .unwrap();
        plan_lines(&r).join("\n")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "EXPLAIN ANALYZE must be deterministic on the virtual clock");
    assert!(a.contains("-- ANALYZE --"));
}

#[test]
fn explain_analyze_reports_vectorized_kernel_and_fallback() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 2000);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();

    // A filter→aggregate over comparable columns compiles to batch kernels:
    // the executed span carries the pipeline attributes, and plain EXPLAIN
    // names the vectorized pipeline.
    let vectorizable = "SELECT region, COUNT(*), SUM(amount) FROM sales \
                        WHERE qty > 2 GROUP BY region ORDER BY region";
    let text = plan_lines(
        &idaa.query(&mut s, &format!("EXPLAIN ANALYZE {vectorizable}")).unwrap(),
    );
    assert!(
        text.iter().any(|l| l.contains("kernel=vectorized")),
        "vectorizable query must report its kernel: {text:?}"
    );
    assert!(
        text.iter().any(|l| l.contains("batches=")),
        "vectorized span must report its batch count: {text:?}"
    );
    let text = plan_lines(&idaa.query(&mut s, &format!("EXPLAIN {vectorizable}")).unwrap());
    assert!(
        text.iter().any(|l| l.starts_with("PIPELINE: vectorized")),
        "plain EXPLAIN must name the vectorized pipeline: {text:?}"
    );

    // An arithmetic predicate compiles to no kernels, so the same query
    // shape falls back to the row-at-a-time interpreter — no kernel
    // attribute anywhere, and EXPLAIN says so.
    let fallback = "SELECT region, COUNT(*), SUM(amount) FROM sales \
                    WHERE qty + qty > 4 GROUP BY region ORDER BY region";
    let text = plan_lines(
        &idaa.query(&mut s, &format!("EXPLAIN ANALYZE {fallback}")).unwrap(),
    );
    assert!(
        !text.iter().any(|l| l.contains("kernel=")),
        "interpreted fallback must not claim a kernel: {text:?}"
    );
    let text = plan_lines(&idaa.query(&mut s, &format!("EXPLAIN {fallback}")).unwrap());
    assert!(
        text.iter().any(|l| l.starts_with("PIPELINE: interpreted")),
        "plain EXPLAIN must report the interpreted fallback: {text:?}"
    );
}

#[test]
fn explain_names_join_pipelines_bloom_and_plan_cache() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 1000);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();

    let pipeline_of = |idaa: &Idaa, s: &mut idaa::Session, q: &str| -> String {
        plan_lines(&idaa.query(s, &format!("EXPLAIN {q}")).unwrap())
            .into_iter()
            .find(|l| l.starts_with("PIPELINE: "))
            .unwrap_or_else(|| panic!("no PIPELINE line for {q}"))
    };

    // Typed i64 keys over a bare probe scan: kernelized build/probe with
    // the derived join filter pushed into the probe-side scan.
    let int_join = "SELECT a.id, b.qty FROM sales a INNER JOIN sales b ON a.id = b.id \
                    WHERE b.qty > 2 ORDER BY a.id LIMIT 10";
    assert_eq!(
        pipeline_of(&idaa, &mut s, int_join),
        "PIPELINE: vectorized (hash join: typed i64 keys, bloom-guarded probe, \
         derived probe filter)",
    );
    // Typed string keys: dictionary-code probes on the accelerator.
    assert_eq!(
        pipeline_of(
            &idaa,
            &mut s,
            "SELECT a.id FROM sales a INNER JOIN sales b ON a.region = b.region \
             WHERE b.id < 5 ORDER BY a.id LIMIT 10",
        ),
        "PIPELINE: vectorized (hash join: typed string keys, bloom-guarded probe, \
         derived probe filter)",
    );
    // LEFT joins keep the Bloom guard but never push a probe filter — a
    // dropped probe row must still null-extend.
    assert_eq!(
        pipeline_of(
            &idaa,
            &mut s,
            "SELECT a.id, b.id FROM sales a LEFT JOIN sales b ON a.id = b.id \
             ORDER BY a.id LIMIT 10",
        ),
        "PIPELINE: vectorized (hash join: typed i64 keys, bloom-guarded probe)",
    );
    // Multi-column keys fall back to generic row keys (interpreted).
    assert_eq!(
        pipeline_of(
            &idaa,
            &mut s,
            "SELECT COUNT(*) FROM sales a INNER JOIN sales b \
             ON a.id = b.id AND a.region = b.region",
        ),
        "PIPELINE: interpreted (hash join: generic keys, bloom-guarded probe)",
    );
    // Non-equi ON: nested loop.
    assert_eq!(
        pipeline_of(
            &idaa,
            &mut s,
            "SELECT COUNT(*) FROM sales a INNER JOIN sales b ON a.id < b.id \
             WHERE a.id < 30 AND b.id < 30",
        ),
        "PIPELINE: interpreted (nested-loop join)",
    );

    // Executed spans carry the Bloom counter, and the statement-level span
    // reports the compiled-plan cache: miss on first sight, hit on repeat.
    let text = plan_lines(&idaa.query(&mut s, &format!("EXPLAIN ANALYZE {int_join}")).unwrap());
    assert!(
        text.iter().any(|l| l.contains("bloom_skipped=")),
        "executed join span must report Bloom skips: {text:?}"
    );
    assert!(
        text.iter().any(|l| l.contains("cache=miss")),
        "first execution must report a plan-cache miss: {text:?}"
    );
    let text = plan_lines(&idaa.query(&mut s, &format!("EXPLAIN ANALYZE {int_join}")).unwrap());
    assert!(
        text.iter().any(|l| l.contains("cache=hit")),
        "repeated statement must report a plan-cache hit: {text:?}"
    );
}

#[test]
fn parameter_markers_execute() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE PM (A INT, B VARCHAR(8))").unwrap();
    idaa.execute_with_params(
        &mut s,
        "INSERT INTO PM VALUES (?, ?)",
        &[Value::Int(1), Value::Varchar("one".into())],
    )
    .unwrap();
    idaa.execute_with_params(
        &mut s,
        "INSERT INTO PM VALUES (?, ?)",
        &[Value::Int(2), Value::Varchar("two".into())],
    )
    .unwrap();
    let out = idaa
        .execute_with_params(&mut s, "SELECT b FROM pm WHERE a = ?", &[Value::Int(2)])
        .unwrap();
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::Varchar("two".into()));
    // Unbound marker is a clear error.
    assert!(idaa.execute(&mut s, "SELECT b FROM pm WHERE a = ?").is_err());
    assert!(idaa
        .execute_with_params(&mut s, "SELECT b FROM pm WHERE a = ? AND b = ?", &[Value::Int(1)])
        .is_err());
}

#[test]
fn accelerator_outage_falls_back_where_possible() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 200);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "CREATE TABLE OUT_AOT (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "INSERT INTO OUT_AOT VALUES (1)").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();

    idaa.faults.accel_unavailable.store(true, std::sync::atomic::Ordering::Relaxed);
    // Replicated table: falls back to the host copy.
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Host);
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(200));
    // AOT query cannot fall back: the accelerator is stopped, -904.
    assert_eq!(idaa.execute(&mut s, "SELECT * FROM out_aot").unwrap_err().sqlcode(), -904);
    // AOT DML cannot fall back either.
    assert_eq!(idaa.execute(&mut s, "INSERT INTO OUT_AOT VALUES (2)").unwrap_err().sqlcode(), -904);
    // ALL mode demands the accelerator: fail.
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ALL").unwrap();
    assert_eq!(idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap_err().sqlcode(), -904);

    // Accelerator comes back: everything resumes.
    idaa.faults.accel_unavailable.store(false, std::sync::atomic::Ordering::Relaxed);
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Accelerator);
    let r = idaa.query(&mut s, "SELECT COUNT(*) FROM out_aot").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(1));
}

#[test]
fn union_type_mismatch_rejected() {
    let (idaa, mut s) = system();
    idaa.execute(&mut s, "CREATE TABLE UA (X INT)").unwrap();
    idaa.execute(&mut s, "CREATE TABLE UB (NAME VARCHAR(8))").unwrap();
    let err = idaa.query(&mut s, "SELECT x FROM ua UNION SELECT name FROM ub").unwrap_err();
    assert_eq!(err.sqlcode(), -420);
    // Compatible numeric widening is fine.
    idaa.execute(&mut s, "CREATE TABLE UC (Y BIGINT)").unwrap();
    idaa.query(&mut s, "SELECT x FROM ua UNION SELECT y FROM uc").unwrap();
}

#[test]
fn csv_export_reimports_through_the_loader() {
    use idaa::loader::{CsvSource, LoadTarget, Loader};
    let (idaa, mut s) = system();
    idaa.execute(
        &mut s,
        "CREATE TABLE SRC (ID INT, NOTE VARCHAR(32), AMT DECIMAL(8,2), D DATE)",
    )
    .unwrap();
    idaa.execute(
        &mut s,
        "INSERT INTO SRC VALUES \
         (1, 'plain', 10.50, DATE '2015-06-01'), \
         (2, 'has, comma', 0.25, DATE '2015-06-02'), \
         (3, NULL, NULL, NULL)",
    )
    .unwrap();
    let exported = idaa.query(&mut s, "SELECT * FROM src ORDER BY id").unwrap();
    let csv = exported.to_csv();

    idaa.execute(
        &mut s,
        "CREATE TABLE DST (ID INT, NOTE VARCHAR(32), AMT DECIMAL(8,2), D DATE) IN ACCELERATOR",
    )
    .unwrap();
    let report = Loader::new(SYSADM)
        .load(
            &idaa,
            Box::new(CsvSource::with_header(&csv)),
            &idaa::ObjectName::bare("DST"),
            LoadTarget::Auto,
        )
        .unwrap();
    assert_eq!(report.rows_loaded, 3);
    assert_eq!(report.rows_rejected, 0);
    let reimported = idaa.query(&mut s, "SELECT * FROM dst ORDER BY id").unwrap();
    assert_eq!(exported.rows, reimported.rows, "export → import must round-trip");
}

#[test]
fn show_workload_golden_reports_per_seat_scheduler_state() {
    let (idaa, mut s) = system();
    seed_sales(&idaa, &mut s, 10);
    drop(s);
    let srv = idaa::Server::with_idaa(
        idaa,
        idaa::ServerConfig { admission_limit: 1, ..idaa::ServerConfig::default() },
    );
    let hi = srv.connect_with_priority(SYSADM, idaa::Priority::High).unwrap();
    let lo = srv.connect(SYSADM).unwrap();
    srv.submit(hi, "SELECT COUNT(*) FROM SALES").unwrap();
    srv.submit(lo, "SELECT COUNT(*) FROM MISSING").unwrap();
    srv.submit(lo, "SELECT COUNT(*) FROM SALES").unwrap();
    let completions = srv.run_until_idle();
    assert_eq!(completions.len(), 3);
    assert_eq!(
        completions.iter().filter(|c| c.result.is_err()).count(),
        1,
        "exactly the MISSING probe fails"
    );

    // The workload view snapshots the scheduler mid-statement: the seat
    // running the SHOW itself reports RUNNING=1. Everything — including
    // the virtual queue-time column — is deterministic, so the whole
    // table is a golden.
    let rows = srv.query(hi, "SHOW WORKLOAD").unwrap();
    assert_eq!(
        rows.to_csv(),
        "SESSION,PRIORITY,QUEUED,RUNNING,DONE,FAILED,QUEUE_US,BYTES\n\
         1,HIGH,0,1,1,0,0,0\n\
         2,NORMAL,0,0,1,1,150,0\n"
    );

    // Outside a server the view exists but is empty — no seats to report.
    let plain = Idaa::default();
    let mut p = plain.session(SYSADM);
    let rows = plain.query(&mut p, "SHOW WORKLOAD").unwrap();
    assert_eq!(rows.to_csv(), "SESSION,PRIORITY,QUEUED,RUNNING,DONE,FAILED,QUEUE_US,BYTES\n");
}
