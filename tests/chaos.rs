//! Chaos suite: random workloads under deterministic link-fault plans.
//!
//! Every test here runs on the virtual clock only — retries, backoff and
//! outage windows consume `NetLink` time, never wall time. Case count for
//! the randomized test follows `PROPTEST_CASES` (default 16) so CI can pin
//! it; each case derives from a fixed seed, so failures reproduce exactly.
//!
//! Tolerated statement outcomes under faults are the federation SQLCODEs:
//! -30081 (communication failure), -904 (accelerator stopped), -926
//! (transaction rolled back). Everything else is a bug.

use idaa::netsim::sites;
use idaa::{
    CrashPlan, DiskFaultPlan, FaultPlan, FleetConfig, HealthState, Idaa, IdaaConfig, ObjectName,
    Route, Value, SYSADM,
};
use std::time::Duration;

/// splitmix64 — the same generator the link's fault stream uses; good
/// enough to derive per-case workloads deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// Build a system with one replicated host table (SALES) and one AOT (LOG),
/// ready for an ELIGIBLE-mode faulted workload.
fn faulted_system(batch: usize) -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig { replication_batch: batch, ..IdaaConfig::default() });
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE SALES (ID INT NOT NULL)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CREATE TABLE LOG (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    (idaa, s)
}

fn sorted_ints(rows: Vec<idaa::Row>) -> Vec<i32> {
    let mut out: Vec<i32> = rows
        .into_iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            ref other => panic!("expected INT, got {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

fn assert_tolerated(e: &idaa::Error) {
    assert!(
        matches!(e.sqlcode(), -30081 | -904 | -926),
        "unexpected failure under link faults: {e} (sqlcode {})",
        e.sqlcode()
    );
}

/// Heal the link and bring the accelerator back: recovery probe, queued
/// phase-2 commit decisions, replication catch-up.
fn heal(idaa: &Idaa) {
    idaa.link().clear_faults();
    assert!(idaa.recover(), "recovery probe must succeed on a healed link");
    idaa.replicate_now().unwrap();
    assert_eq!(idaa.health().state(), HealthState::Online);
    assert_eq!(idaa.pending_accel_commits(), 0);
    assert_eq!(idaa.replication_backlog(), 0);
}

/// One random workload under one random fault plan; returns nothing —
/// panics on any invariant violation.
fn chaos_case(case_seed: u64) {
    let mut rng = Rng(case_seed);
    let batch = [1usize, 5, 64][rng.below(3) as usize];
    let (idaa, mut s) = faulted_system(batch);

    let mut plan = FaultPlan::dropping(rng.next(), 0.02 + 0.23 * rng.f64());
    plan.to_host.drop = 0.02 + 0.23 * rng.f64();
    if rng.below(3) == 0 {
        let start = idaa.link().now() + Duration::from_micros(rng.below(2_000));
        plan.outages.push(idaa::OutageWindow::new(start, start + Duration::from_millis(2)));
    }
    idaa.set_fault_plan(plan);

    // Shadow model. Host-table rows are certain (link faults cannot fail a
    // host insert); AOT rows are certain when the statement succeeded and
    // ambiguous when it failed inside an explicit transaction that later
    // committed (the loss may have hit the acknowledgement, after the
    // accelerator applied the write).
    let mut expect_sales: Vec<i32> = Vec::new();
    let mut log_definite: Vec<i32> = Vec::new();
    let mut log_maybe: Vec<i32> = Vec::new();
    let mut next_val = 0i32;

    for _ in 0..rng.below(30) + 20 {
        match rng.below(4) {
            0 => {
                // Autocommitted host insert: always succeeds; replication
                // may stall and catch up later.
                let v = next_val;
                next_val += 1;
                idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({v})")).unwrap();
                expect_sales.push(v);
            }
            1 => {
                // Autocommitted AOT insert: statement-level atomicity — an
                // error rolls the implicit transaction back on both sides.
                let v = next_val;
                next_val += 1;
                match idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({v})")) {
                    Ok(_) => log_definite.push(v),
                    Err(e) => assert_tolerated(&e),
                }
            }
            2 => {
                // Explicit transaction across both engines: must be atomic.
                idaa.execute(&mut s, "BEGIN").unwrap();
                let mut txn_sales: Vec<i32> = Vec::new();
                let mut txn_log_ok: Vec<i32> = Vec::new();
                let mut txn_log_err: Vec<i32> = Vec::new();
                for _ in 0..rng.below(4) + 1 {
                    let v = next_val;
                    next_val += 1;
                    if rng.below(2) == 0 {
                        idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({v})"))
                            .unwrap();
                        txn_sales.push(v);
                    } else {
                        match idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({v})")) {
                            Ok(_) => txn_log_ok.push(v),
                            Err(e) => {
                                // The loss may have hit the acknowledgement
                                // after the accelerator applied the write:
                                // the row is ambiguous if this txn commits.
                                assert_tolerated(&e);
                                txn_log_err.push(v);
                            }
                        }
                    }
                }
                if rng.below(5) == 0 {
                    idaa.execute(&mut s, "ROLLBACK").unwrap();
                } else {
                    match idaa.execute(&mut s, "COMMIT") {
                        Ok(_) => {
                            expect_sales.extend(txn_sales);
                            log_definite.extend(txn_log_ok);
                            log_maybe.extend(txn_log_err);
                        }
                        Err(e) => assert_tolerated(&e), // rolled back everywhere
                    }
                }
            }
            _ => {
                // Offload-eligible query: never errors — a link failure
                // mid-statement falls back to the host copy. The host
                // answer is exact; an accelerator answer may lag stalled
                // replication but can never overshoot.
                let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
                let n = match out.rows().unwrap().scalar().unwrap() {
                    Value::BigInt(n) => *n,
                    other => panic!("expected BIGINT count, got {other:?}"),
                };
                match out.route {
                    Route::Host => assert_eq!(n, expect_sales.len() as i64),
                    Route::Accelerator => assert!(n <= expect_sales.len() as i64),
                }
            }
        }
    }

    heal(&idaa);

    // Exactly-once replication: the accelerator replica equals the host
    // table, row for row — nothing lost, nothing applied twice.
    let host_sales = sorted_ints(idaa.host().scan_all(&ObjectName::bare("SALES")).unwrap());
    let accel_sales = sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap());
    expect_sales.sort_unstable();
    assert_eq!(host_sales, expect_sales, "host lost or invented committed rows");
    assert_eq!(accel_sales, expect_sales, "replica diverged from the host table");

    // AOT atomicity: every certain row present exactly once, every row
    // present accounted for (certain or ack-loss ambiguous), nothing from
    // rolled-back transactions.
    let log = sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap());
    for w in log.windows(2) {
        assert!(w[0] < w[1], "duplicate AOT row {} after redelivery", w[0]);
    }
    for v in &log_definite {
        assert!(log.binary_search(v).is_ok(), "committed AOT row {v} lost");
    }
    for v in &log {
        assert!(
            log_definite.contains(v) || log_maybe.contains(v),
            "AOT row {v} from a rolled-back or never-issued statement"
        );
    }
}

#[test]
fn chaos_random_workloads_converge_after_recovery() {
    for case in 0..cases() as u64 {
        chaos_case(0xc4a0_5000 + case);
    }
}

/// Fixed-seed replay: the same workload under the same `FaultPlan` seed
/// must produce byte-identical link metrics — delivered traffic, failure
/// count and fault time included.
#[test]
fn fixed_seed_ten_percent_drop_replays_byte_identically() {
    let run = || {
        let (idaa, mut s) = faulted_system(7);
        idaa.set_fault_plan(FaultPlan::dropping(42, 0.10));
        let mut log_ok = 0i64;
        for i in 0..60 {
            idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
            match idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({i})")) {
                Ok(_) => log_ok += 1,
                Err(e) => assert_tolerated(&e),
            }
            let n = idaa.query(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
            match n.scalar().unwrap() {
                // Accelerator answers may lag stalled replication.
                Value::BigInt(c) => assert!(*c <= i + 1),
                other => panic!("expected BIGINT count, got {other:?}"),
            }
        }
        heal(&idaa);
        let sales = idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap().len();
        assert_eq!(sales, 60, "exactly-once replication under 10% drop");
        let log = idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap().len();
        assert_eq!(log as i64, log_ok, "autocommitted AOT inserts are atomic");
        (idaa.link().metrics(), log_ok)
    };
    let (m1, ok1) = run();
    let (m2, ok2) = run();
    assert_eq!(ok1, ok2, "same seed must fail the same statements");
    assert_eq!(m1, m2, "link metrics must replay byte-identically");
    assert!(m1.failures > 0, "a 10% drop plan over 180+ messages must fault");
}

/// A scheduled outage window: offload-eligible work falls back to the
/// host, accelerator-bound statements fail with -30081, health decays to
/// Offline, and once the window passes recovery restores everything and
/// replication catches up.
#[test]
fn scheduled_outage_falls_back_then_recovers() {
    let (idaa, mut s) = faulted_system(16);
    idaa.execute(&mut s, "INSERT INTO SALES VALUES (1)").unwrap();
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (1)").unwrap();

    let start = idaa.link().now();
    idaa.set_fault_plan(FaultPlan::outage(start, start + Duration::from_millis(50)));

    // Mid-statement failure on an eligible query: falls back to the host.
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Host);
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(1));
    assert_eq!(idaa.health().state(), HealthState::Degraded);

    // Statements that require the accelerator fail with the communication
    // SQLCODE, and repeated failures take it offline.
    for _ in 0..2 {
        let err = idaa.execute(&mut s, "INSERT INTO LOG VALUES (2)").unwrap_err();
        assert_eq!(err.sqlcode(), -30081);
    }
    assert_eq!(idaa.health().state(), HealthState::Offline);

    // While offline, eligible queries route straight to the host and a
    // host-side commit queues its replication backlog for catch-up.
    idaa.execute(&mut s, "INSERT INTO SALES VALUES (2)").unwrap();
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Host);
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(2));
    assert!(idaa.replication_backlog() > 0, "changes queue during the outage");

    // The window passes on the virtual clock; the operator probe brings the
    // accelerator back and drains the backlog.
    idaa.link().advance(Duration::from_millis(60));
    assert!(idaa.recover());
    assert_eq!(idaa.health().state(), HealthState::Online);
    assert_eq!(idaa.replication_backlog(), 0);
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Accelerator);
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(2));
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (3)").unwrap();
    let n = idaa.query(&mut s, "SELECT COUNT(*) FROM log").unwrap();
    assert_eq!(n.scalar().unwrap(), &Value::BigInt(2));
}

// ---------------------------------------------------------------------------
// Crash–restart recovery
// ---------------------------------------------------------------------------

/// Build the two-table system with an aggressive checkpoint cadence so the
/// mid-checkpoint crash site is reachable within a short workload.
fn crash_system() -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig {
        replication_batch: 4,
        checkpoint_every: Duration::from_micros(300),
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE SALES (ID INT NOT NULL)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CREATE TABLE LOG (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    (idaa, s)
}

/// Execute a statement until it applies: a tolerated failure (the crash
/// itself, or -904 while the engine is down) triggers an operator recovery
/// — restart, log replay, catch-up — and a retry. Crash semantics make the
/// retry safe: a failed statement was rolled back on both sides (presumed
/// abort covers the post-prepare window).
fn exec_until_applied(idaa: &Idaa, s: &mut idaa::Session, sql: &str) {
    for _ in 0..6 {
        match idaa.execute(s, sql) {
            Ok(_) => return,
            Err(e) => {
                assert_tolerated(&e);
                idaa.link().advance(Duration::from_millis(10));
                idaa.recover();
            }
        }
    }
    panic!("`{sql}` still failing after recovery retries");
}

/// One deterministic workload under one crash plan: replicated host
/// inserts, retried AOT inserts, periodic full reloads (the bulk-load
/// path), replication pulls, and a steadily advancing virtual clock (the
/// checkpoint cadence). Heals at the end and returns the link metrics, the
/// registry's firing log, and the final accelerator contents.
#[allow(clippy::type_complexity)]
fn crash_run(plan: CrashPlan) -> (idaa::LinkMetrics, Vec<(String, u64)>, Vec<i32>, Vec<i32>) {
    let (idaa, mut s) = crash_system();
    let expect_crash = !plan.is_clean();
    idaa.set_crash_plan(plan);
    for i in 0..40 {
        idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
        exec_until_applied(&idaa, &mut s, &format!("INSERT INTO LOG VALUES ({i})"));
        if i % 10 == 9 {
            exec_until_applied(&idaa, &mut s, "CALL ACCEL_LOAD_TABLES('SALES')");
        }
        idaa.replicate_now().unwrap();
        idaa.link().advance(Duration::from_micros(100));
    }
    let fired = idaa.faults.registry.fired();
    idaa.faults.registry.clear();
    idaa.link().clear_faults();
    assert!(idaa.recover(), "recovery must succeed once crash injection stops");
    idaa.replicate_now().unwrap();
    assert_eq!(idaa.health().state(), HealthState::Online);
    assert_eq!(idaa.pending_accel_commits(), 0);
    assert_eq!(idaa.replication_backlog(), 0);
    if expect_crash {
        let stats = idaa.last_restart().expect("a fired crash must force a restart");
        assert!(stats.epoch >= 2, "restart must advance the recovery epoch");
    }
    (
        idaa.link().metrics(),
        fired,
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap()),
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap()),
    )
}

/// Crash at every named site, at three different pinned hit counts each:
/// after recovery and catch-up the accelerator converges to the crash-free
/// answer, and replaying the same plan reproduces byte-identical link
/// metrics and the exact same firing log.
#[test]
fn crash_at_every_named_site_converges_to_the_crash_free_answer() {
    let (_, fired, sales_clean, log_clean) = crash_run(CrashPlan::default());
    assert!(fired.is_empty(), "a clean plan must never fire");
    assert_eq!(sales_clean, (0..40).collect::<Vec<_>>());
    assert_eq!(log_clean, (0..40).collect::<Vec<_>>());

    for site in [
        sites::MID_BULK_LOAD,
        sites::POST_PREPARE,
        sites::MID_REPL_APPLY,
        sites::MID_CHECKPOINT,
    ] {
        for (k, seed) in [0xA11CEu64, 0xB0B, 0xC0FFEE].into_iter().enumerate() {
            let hit = k as u64 + 1;
            let plan = CrashPlan::at(site, hit).seeded(seed);
            let (m1, fired1, sales, log) = crash_run(plan.clone());
            assert_eq!(
                fired1,
                vec![(site.to_string(), hit)],
                "the pinned crash must fire exactly once at {site} hit {hit}"
            );
            assert_eq!(sales, sales_clean, "replica diverged after crash at {site} hit {hit}");
            assert_eq!(log, log_clean, "AOT diverged after crash at {site} hit {hit}");

            let (m2, fired2, sales2, log2) = crash_run(plan);
            assert_eq!(m1, m2, "crash at {site} hit {hit} must replay byte-identically");
            assert_eq!(fired1, fired2, "firing log must replay identically");
            assert_eq!(sales, sales2);
            assert_eq!(log, log2);
        }
    }
}

/// The in-doubt window end to end: a prepared transaction whose COMMIT
/// decision is queued on the coordinator survives the crash and commits on
/// restart; one whose vote never reached the coordinator is presumed
/// aborted — matching the host's rollback.
#[test]
fn crash_preserves_in_doubt_transactions_until_the_coordinator_decides() {
    let (idaa, mut s) = faulted_system(7);

    // Queued decision: prepare round-trips, every phase-2 delivery dies,
    // the host commits and queues the accelerator's COMMIT. Then a crash.
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (88)").unwrap();
    idaa.link().fail_transfers_after(2, 8);
    idaa.execute(&mut s, "COMMIT").unwrap();
    assert_eq!(idaa.pending_accel_commits(), 1);
    idaa.accel().crash();
    idaa.link().clear_faults();
    assert!(idaa.recover());
    assert_eq!(idaa.pending_accel_commits(), 0, "queued decision resolved on restart");
    assert_eq!(idaa.last_restart().unwrap().rematerialized_in_doubt, 1);

    // No queued decision: the crash fires right after PREPARE is durably
    // logged, the coordinator rolls back, restart presumes abort.
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (99)").unwrap();
    idaa.faults.registry.arm(sites::POST_PREPARE, 1);
    let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
    assert_eq!(err.sqlcode(), -926);
    assert!(idaa.recover());
    assert_eq!(idaa.last_restart().unwrap().rematerialized_in_doubt, 1);

    // Exactly the committed row survives; health is fully restored.
    assert_eq!(
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap()),
        vec![88]
    );
    assert_eq!(idaa.health().state(), HealthState::Online);
}

/// Corrupt faults end-to-end: a damaged frame is caught by the wire
/// codec's checksum on receive (not by fiat), surfaces as a retryable
/// link error, and a retry delivers the original bytes. Failed attempts
/// charge only the failure counters: every reply and acknowledgement is
/// *delivered* exactly once (to-host traffic is byte-identical to a
/// fault-free run), and the only extra delivered to-accel messages are
/// the at-least-once request redeliveries the receiver deduplicates.
/// The whole faulted run replays byte-identically per seed.
#[test]
fn corrupt_faults_are_detected_by_checksum_and_leave_delivered_traffic_clean() {
    let workload = |plan: Option<FaultPlan>| {
        let (idaa, mut s) = faulted_system(7);
        if let Some(p) = plan {
            idaa.set_fault_plan(p);
        }
        for i in 0..40 {
            idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
            idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({i})")).unwrap();
            let n = idaa.query(&mut s, "SELECT COUNT(*) FROM log").unwrap();
            assert_eq!(n.scalar().unwrap(), &Value::BigInt(i + 1));
        }
        idaa.replicate_now().unwrap();
        // Exactly-once convergence despite mid-stream corruption.
        assert_eq!(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap().len(), 40);
        assert_eq!(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap().len(), 40);
        (idaa.link().metrics(), idaa.statements_deduped())
    };
    let corrupting = || {
        let mut plan = FaultPlan::dropping(31, 0.0);
        plan.to_accel.corrupt = 0.12;
        plan.to_host.corrupt = 0.12;
        plan
    };

    let (clean, clean_dedup) = workload(None);
    assert_eq!(clean_dedup, 0);
    let (faulted, deduped) = workload(Some(corrupting()));
    assert!(faulted.failures > 0, "a 12% corrupt plan over this workload must fire");
    assert!(faulted.fault_time > Duration::ZERO, "detected corruption costs virtual time");
    // Replies and acks were each delivered exactly once: checksum-rejected
    // attempts never touched the delivered to-host counters.
    assert_eq!(faulted.bytes_to_host, clean.bytes_to_host);
    assert_eq!(faulted.messages_to_host, clean.messages_to_host);
    assert_eq!(faulted.logical_bytes_to_host, clean.logical_bytes_to_host);
    // Every extra delivered to-accel message is a deduplicated statement
    // redelivery (a corrupted reply forces the request to go out again).
    assert!(deduped > 0, "corrupted replies force request redeliveries");
    assert_eq!(faulted.messages_to_accel, clean.messages_to_accel + deduped);

    let (replay, replay_dedup) = workload(Some(corrupting()));
    assert_eq!(faulted, replay, "same seed must replay byte-identically");
    assert_eq!(deduped, replay_dedup);
}

// ---------------------------------------------------------------------------
// Fleet failover chaos
// ---------------------------------------------------------------------------

/// A 3-node fleet with 4 shards at replication factor 2 and a sharded AOT
/// ready for a scatter/gather workload.
fn fleet_system() -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig {
        fleet: FleetConfig {
            accelerators: 3,
            shards: 4,
            replication_factor: 2,
            ..FleetConfig::default()
        },
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE FLOG (X INT NOT NULL, G VARCHAR(2)) IN ACCELERATOR DISTRIBUTE BY HASH(X)",
    )
    .unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    (idaa, s)
}

/// One deterministic scatter/gather workload, optionally crashing node 0 at
/// the mid-scatter site. Returns every per-statement answer, the per-node
/// link metrics, node 0's firing log, and the failover/rebalance counters.
#[allow(clippy::type_complexity)]
fn fleet_crash_run(
    plan: Option<CrashPlan>,
) -> (Vec<Vec<idaa::Row>>, Vec<idaa::LinkMetrics>, Vec<(String, u64)>, u64, u64) {
    let (idaa, mut s) = fleet_system();
    let crashing = plan.is_some();
    if let Some(p) = plan {
        idaa.set_crash_plan_on(0, p);
    }
    let mut answers = Vec::new();
    for i in 0..30 {
        let g = if i % 2 == 0 { "a" } else { "b" };
        idaa.execute(&mut s, &format!("INSERT INTO FLOG VALUES ({i}, '{g}')")).unwrap();
        let rows = idaa
            .query(&mut s, "SELECT G, COUNT(*), SUM(X) FROM FLOG GROUP BY G ORDER BY G")
            .unwrap();
        answers.push(rows.rows);
        idaa.link().advance(Duration::from_micros(100));
    }
    let fired = idaa.node_registry(0).fired();
    idaa.node_registry(0).clear();
    if crashing {
        assert!(idaa.recover_node(0), "node 0 must recover once crash injection stops");
        assert!(idaa.fleet_catch_up_bytes() > 0, "rejoin must copy shard data over the link");
        // The restarted node rejoins and the background rebalance (virtual
        // clock) migrates its shards back to the preferred placement.
        idaa.link().advance(Duration::from_millis(25));
    }
    let rows = idaa
        .query(&mut s, "SELECT G, COUNT(*), SUM(X) FROM FLOG GROUP BY G ORDER BY G")
        .unwrap();
    answers.push(rows.rows);
    assert_eq!(
        idaa.current_primaries(),
        vec![0, 1, 2, 0],
        "every shard must be back on its preferred primary"
    );
    let metrics = (0..idaa.fleet_size()).map(|i| idaa.node_link(i).metrics()).collect();
    (answers, metrics, fired, idaa.fleet_failovers(), idaa.fleet_rebalances())
}

/// The headline robustness path: crash shard 0's primary mid-scatter. The
/// router retargets the replica inside the same statement (every answer
/// matches the crash-free run), the restarted node rejoins via catch-up,
/// the rebalance task migrates the shards back, and the whole run —
/// including every node's link metrics — replays byte-identically per seed.
#[test]
fn fleet_primary_crash_mid_scatter_fails_over_and_converges() {
    let (clean_answers, _, clean_fired, clean_failovers, _) = fleet_crash_run(None);
    assert!(clean_fired.is_empty());
    assert_eq!(clean_failovers, 0, "a clean run never fails over");

    let plan = || CrashPlan::at(sites::MID_SCATTER, 3).seeded(0xF1EE7);
    let (answers, metrics, fired, failovers, rebalances) = fleet_crash_run(Some(plan()));
    assert_eq!(
        fired,
        vec![(sites::MID_SCATTER.to_string(), 3)],
        "the pinned crash must fire exactly once"
    );
    assert!(failovers > 0, "the crashed primary's shards must fail over to the replica");
    assert!(rebalances > 0, "recovered shards must migrate back to the preferred owner");
    assert_eq!(answers, clean_answers, "failover must never change a query answer");

    let (answers2, metrics2, fired2, failovers2, rebalances2) = fleet_crash_run(Some(plan()));
    assert_eq!(answers, answers2);
    assert_eq!(metrics, metrics2, "per-node link metrics must replay byte-identically");
    assert_eq!(fired, fired2);
    assert_eq!(failovers, failovers2);
    assert_eq!(rebalances, rebalances2);
}

/// Fleet error surfaces: losing every replica of a shard is -904 (resource
/// unavailable), while a shard whose exchange dies after retries on every
/// live replica is -30081 (communication failure).
#[test]
fn fleet_shard_loss_maps_to_db2_sqlcodes() {
    // Replication factor 1: each shard has exactly one owner.
    let idaa = Idaa::new(IdaaConfig {
        fleet: FleetConfig {
            accelerators: 2,
            shards: 2,
            replication_factor: 1,
            ..FleetConfig::default()
        },
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE FLOG (X INT NOT NULL) IN ACCELERATOR DISTRIBUTE BY HASH(X)",
    )
    .unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    idaa.execute(&mut s, "INSERT INTO FLOG VALUES (1), (2), (3), (4), (5)").unwrap();

    // Crash one owner *and* sever its link so the health probe cannot
    // revive it: its shard has no live replica left.
    idaa.node_engine(1).crash();
    idaa.node_link(1).fail_transfers_after(0, u64::MAX);
    let err = idaa.query(&mut s, "SELECT COUNT(*) FROM FLOG").unwrap_err();
    assert_eq!(err.sqlcode(), -904, "a shard with no live replica is -904: {err}");

    // Heal it and verify the fleet serves again.
    idaa.node_link(1).clear_faults();
    assert!(idaa.recover_node(1));
    assert_eq!(idaa.query(&mut s, "SELECT COUNT(*) FROM FLOG").unwrap().rows.len(), 1);

    // Now kill only the statement exchange (the node itself stays up and
    // Online): the shard's gather dies after retries — -30081.
    idaa.node_link(1).fail_transfers_after(0, u64::MAX);
    let err = idaa.query(&mut s, "SELECT COUNT(*) FROM FLOG").unwrap_err();
    assert_eq!(err.sqlcode(), -30081, "a dead exchange on every replica is -30081: {err}");
}

// ---------------------------------------------------------------------------
// Storage fault chaos: torn writes, bit-rot, scrub, rebuild
// ---------------------------------------------------------------------------

/// Build the two-table system with explicit checkpoint and scrub cadences
/// for the storage-fault runs (the bit-rot cases disable checkpoints so
/// every record stays in the replay tail; the torn cases keep them
/// aggressive so the checkpoint sites are reachable).
fn disk_system(checkpoint_every: Duration, scrub_every: Duration) -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig {
        replication_batch: 4,
        checkpoint_every,
        scrub_every,
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE SALES (ID INT NOT NULL)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CREATE TABLE LOG (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    (idaa, s)
}

/// Everything a storage-fault run produces, for convergence and
/// byte-identical-replay comparisons.
#[derive(Debug, PartialEq)]
struct DiskRun {
    metrics: idaa::LinkMetrics,
    fired: Vec<(String, u64)>,
    sales: Vec<i32>,
    /// Final AOT contents — or the deterministic SQLCODE when the only
    /// copy was lost and the table is quarantined.
    log: std::result::Result<Vec<i32>, i32>,
    rebuilds: u64,
    truncated: u64,
    fallbacks: u64,
    scrub_repairs: u64,
}

/// One deterministic workload under one storage-fault plan (the disk
/// analogue of [`crash_run`]): replicated host inserts, retried AOT
/// inserts, periodic bulk reloads, replication pulls, a steady virtual
/// clock — then a forced crash + recovery so any *latent* (silent) damage
/// must be read back. Either recovery repairs it locally, the node is
/// rebuilt from the host, or the loss surfaces as a quarantine — never a
/// silently wrong answer.
fn disk_run(plan: DiskFaultPlan, checkpoint_every: Duration, scrub_every: Duration) -> DiskRun {
    let (idaa, mut s) = disk_system(checkpoint_every, scrub_every);
    let expect_fault = !plan.is_clean();
    idaa.set_disk_plan(plan);
    for i in 0..40 {
        idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
        exec_until_applied(&idaa, &mut s, &format!("INSERT INTO LOG VALUES ({i})"));
        if i % 10 == 9 {
            exec_until_applied(&idaa, &mut s, "CALL ACCEL_LOAD_TABLES('SALES')");
        }
        idaa.replicate_now().unwrap();
        idaa.link().advance(Duration::from_micros(100));
    }
    idaa.accel().crash();
    idaa.link().advance(Duration::from_millis(10));
    assert!(idaa.recover(), "recovery must bring the accelerator back");
    idaa.replicate_now().unwrap();
    assert_eq!(idaa.health().state(), HealthState::Online);
    assert_eq!(idaa.pending_accel_commits(), 0);
    assert_eq!(idaa.replication_backlog(), 0);
    let fired = idaa.faults.registry.fired();
    if expect_fault {
        assert!(!fired.is_empty(), "the pinned storage fault must fire");
    }
    DiskRun {
        metrics: idaa.link().metrics(),
        fired,
        sales: sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap()),
        log: match idaa.accel().scan_visible(&ObjectName::bare("LOG")) {
            Ok(rows) => Ok(sorted_ints(rows)),
            Err(e) => {
                assert!(e.to_string().contains("quarantined"), "unexpected AOT loss error: {e}");
                Err(e.sqlcode())
            }
        },
        rebuilds: idaa.node_rebuilds(0),
        truncated: idaa.metrics().counter("disk.records_truncated"),
        fallbacks: idaa.metrics().counter("disk.checkpoint_fallbacks"),
        scrub_repairs: idaa.metrics().counter("disk.scrub_repairs"),
    }
}

/// Torn writes at both named sites, at three pinned hit counts each: a
/// torn log append is truncated and durably re-logged, a torn checkpoint
/// leaves the previous one authoritative — both are locally repairable
/// (no rebuild), converge to the fault-free answer, and replay
/// byte-identically per seed.
#[test]
fn torn_writes_at_named_sites_self_heal_and_replay_byte_identically() {
    let cadence = Duration::from_micros(300);
    let clean = disk_run(DiskFaultPlan::default(), cadence, Duration::ZERO);
    assert!(clean.fired.is_empty(), "a clean disk plan must never fire");
    assert_eq!(clean.sales, (0..40).collect::<Vec<_>>());
    assert_eq!(clean.log, Ok((0..40).collect::<Vec<_>>()));
    assert_eq!((clean.rebuilds, clean.truncated, clean.fallbacks), (0, 0, 0));

    for site in [sites::TORN_LOG_APPEND, sites::TORN_CHECKPOINT] {
        for (k, seed) in [0xA11CEu64, 0xB0B, 0xC0FFEE].into_iter().enumerate() {
            let hit = k as u64 + 1;
            let plan = || DiskFaultPlan::at(site, hit).seeded(seed);
            let r1 = disk_run(plan(), cadence, Duration::ZERO);
            assert_eq!(
                r1.fired,
                vec![(site.to_string(), hit)],
                "the pinned tear must fire exactly once at {site} hit {hit}"
            );
            assert_eq!(r1.sales, clean.sales, "replica diverged after tear at {site} hit {hit}");
            assert_eq!(r1.log, clean.log, "AOT diverged after tear at {site} hit {hit}");
            assert_eq!(r1.rebuilds, 0, "a torn write is locally repairable at {site}");
            match site {
                s if s == sites::TORN_LOG_APPEND => {
                    assert!(r1.truncated >= 1, "recovery must truncate the torn tail")
                }
                _ => assert!(r1.fallbacks >= 1, "recovery must discard the torn checkpoint"),
            }
            let r2 = disk_run(plan(), cadence, Duration::ZERO);
            assert_eq!(r1, r2, "tear at {site} hit {hit} must replay byte-identically");
        }
    }
}

/// Bit-rot in an *acknowledged* log record with no scrub running: the
/// forced recovery detects the checksum mismatch, refuses to replay
/// damaged state, and rebuilds the node wholesale — the replicated host
/// table is re-shipped in full, while the AOT (whose only copy was on the
/// corrupted media) is quarantined behind a deterministic -904. Never a
/// silently wrong or empty answer, and byte-identical replay per seed.
#[test]
fn acked_bitrot_without_scrub_rebuilds_the_node_and_quarantines_the_aot() {
    // Checkpoints disabled: every record stays in the replay tail, so the
    // rot is always on recovery's critical path.
    let slow = Duration::from_secs(3600);
    let clean = disk_run(DiskFaultPlan::default(), slow, Duration::ZERO);
    assert_eq!(clean.sales, (0..40).collect::<Vec<_>>());
    assert_eq!(clean.log, Ok((0..40).collect::<Vec<_>>()));

    for (k, seed) in [0xA11CEu64, 0xB0B, 0xC0FFEE].into_iter().enumerate() {
        let hit = k as u64 + 1;
        let plan = || DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, hit).seeded(seed);
        let r1 = disk_run(plan(), slow, Duration::ZERO);
        assert_eq!(
            r1.fired,
            vec![(sites::BITROT_LOG_SEGMENT.to_string(), hit)],
            "the pinned rot must fire exactly once at hit {hit}"
        );
        assert_eq!(r1.rebuilds, 1, "acked rot in the tail must force a rebuild");
        assert_eq!(r1.sales, clean.sales, "the host table must be re-shipped in full");
        assert_eq!(r1.log, Err(-904), "a lost AOT is a deterministic error, never empty");
        let r2 = disk_run(plan(), slow, Duration::ZERO);
        assert_eq!(r1, r2, "rot at hit {hit} must replay byte-identically");
    }
}

/// The same acked bit-rot with the background scrub enabled: the scrub
/// finds the checksum mismatch between statements, while the in-memory
/// state is still authoritative, and repairs it with a fresh checkpoint —
/// so the forced recovery reads clean media, nothing is quarantined, and
/// the run converges to the fault-free answer.
#[test]
fn background_scrub_repairs_latent_bitrot_before_recovery_needs_it() {
    let slow = Duration::from_secs(3600);
    let scrub = Duration::from_micros(200);
    let clean = disk_run(DiskFaultPlan::default(), slow, scrub);
    assert_eq!(clean.sales, (0..40).collect::<Vec<_>>());
    assert_eq!(clean.log, Ok((0..40).collect::<Vec<_>>()));
    assert_eq!(clean.scrub_repairs, 0, "a clean run has nothing to repair");

    for (k, seed) in [0xA11CEu64, 0xB0B, 0xC0FFEE].into_iter().enumerate() {
        let hit = k as u64 + 1;
        let plan = || DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, hit).seeded(seed);
        let r1 = disk_run(plan(), slow, scrub);
        assert_eq!(r1.fired, vec![(sites::BITROT_LOG_SEGMENT.to_string(), hit)]);
        assert!(r1.scrub_repairs >= 1, "the scrub must find and repair the rot");
        assert_eq!(r1.rebuilds, 0, "scrub repair must pre-empt the rebuild");
        assert_eq!(r1.sales, clean.sales, "replica diverged despite scrub repair");
        assert_eq!(r1.log, Ok((0..40).collect::<Vec<_>>()), "the AOT must survive intact");
        let r2 = disk_run(plan(), slow, scrub);
        assert_eq!(r1, r2, "scrub repair at hit {hit} must replay byte-identically");
    }
}

/// Bit-rot in an installed checkpoint: crash while the rotted image is
/// still the newest one, and recovery falls back to the previous valid
/// checkpoint, replaying the longer log tail between them — full
/// convergence, no rebuild, byte-identical replay per seed.
#[test]
fn rotted_checkpoint_falls_back_to_the_previous_valid_one() {
    // Hits start at 2 so a previous valid checkpoint always exists; a
    // rotted *first* checkpoint has no fallback coverage and is the
    // rebuild path, covered above.
    // Crash while the rotted checkpoint is still the newest retained one,
    // so recovery must exercise the fallback. Checked after *every*
    // statement: transfer costs advance the clock, and waiting until the
    // end of an iteration would let a newer clean checkpoint install and
    // mask the rotted image.
    fn crash_on_first_fire(idaa: &Idaa, crashed: &mut bool) {
        if !*crashed && !idaa.faults.registry.fired().is_empty() {
            idaa.accel().crash();
            idaa.link().advance(Duration::from_millis(10));
            assert!(idaa.recover(), "fallback recovery must succeed");
            *crashed = true;
        }
    }
    let run = |hit: u64, seed: u64| {
        let (idaa, mut s) = disk_system(Duration::from_micros(300), Duration::ZERO);
        idaa.set_disk_plan(DiskFaultPlan::at(sites::BITROT_CHECKPOINT, hit).seeded(seed));
        let mut crashed_after_fire = false;
        for i in 0..40 {
            idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
            crash_on_first_fire(&idaa, &mut crashed_after_fire);
            exec_until_applied(&idaa, &mut s, &format!("INSERT INTO LOG VALUES ({i})"));
            crash_on_first_fire(&idaa, &mut crashed_after_fire);
            idaa.replicate_now().unwrap();
            crash_on_first_fire(&idaa, &mut crashed_after_fire);
            idaa.link().advance(Duration::from_micros(100));
        }
        assert!(crashed_after_fire, "the pinned checkpoint rot must fire within the workload");
        idaa.replicate_now().unwrap();
        assert_eq!(idaa.health().state(), HealthState::Online);
        assert!(
            idaa.metrics().counter("disk.checkpoint_fallbacks") >= 1,
            "recovery must discard the rotted checkpoint"
        );
        assert_eq!(idaa.node_rebuilds(0), 0, "a retained valid checkpoint avoids the rebuild");
        (
            idaa.link().metrics(),
            idaa.faults.registry.fired(),
            sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap()),
            sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap()),
        )
    };
    for (k, seed) in [0xA11CEu64, 0xB0B, 0xC0FFEE].into_iter().enumerate() {
        let hit = k as u64 + 2;
        let (m1, fired1, sales, log) = run(hit, seed);
        assert_eq!(fired1, vec![(sites::BITROT_CHECKPOINT.to_string(), hit)]);
        assert_eq!(sales, (0..40).collect::<Vec<_>>(), "fallback replay diverged at hit {hit}");
        assert_eq!(log, (0..40).collect::<Vec<_>>(), "AOT diverged at hit {hit}");
        let (m2, fired2, sales2, log2) = run(hit, seed);
        assert_eq!(m1, m2, "checkpoint rot at hit {hit} must replay byte-identically");
        assert_eq!(fired1, fired2);
        assert_eq!(sales, sales2);
        assert_eq!(log, log2);
    }
}

/// Transient disk read failures during recovery: each failed attempt
/// leaves the engine crashed (statements stay -904) and is retried by the
/// next operator probe; once the media reads clean, the full log replays
/// and nothing is lost.
#[test]
fn transient_disk_read_failures_delay_recovery_without_losing_state() {
    let (idaa, mut s) = disk_system(Duration::from_micros(300), Duration::ZERO);
    for i in 0..10 {
        idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({i})")).unwrap();
    }
    idaa.accel().crash();
    idaa.set_disk_plan(
        DiskFaultPlan::at(sites::DISK_READ_FAIL, 1)
            .and_at(sites::DISK_READ_FAIL, 2)
            .seeded(0xA11CE),
    );
    assert!(!idaa.recover(), "first restart attempt dies on the read fault");
    assert!(idaa.accel().is_crashed(), "a failed read leaves the engine down");
    assert!(!idaa.recover(), "second attempt dies too");
    assert!(idaa.recover(), "third attempt reads clean and replays the log");
    assert_eq!(
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap()),
        (0..10).collect::<Vec<_>>(),
        "transient read failures must not lose acknowledged state"
    );
    assert_eq!(idaa.accel().stats.disk_read_failures.load(std::sync::atomic::Ordering::Relaxed), 2);
    assert_eq!(idaa.metrics().counter("disk.read_failures"), 2);
    assert_eq!(
        idaa.faults.registry.fired(),
        vec![
            (sites::DISK_READ_FAIL.to_string(), 1),
            (sites::DISK_READ_FAIL.to_string(), 2)
        ]
    );
}

/// The quarantine lifecycle end to end: after a rebuild loses the only
/// copy of an AOT, every statement against it is a deterministic -904
/// (never a silently empty answer) until the operator recreates the table
/// — the reload path — which lifts the quarantine.
#[test]
fn quarantine_is_explicit_and_lifted_by_recreating_the_aot() {
    let (idaa, mut s) = disk_system(Duration::from_secs(3600), Duration::ZERO);
    idaa.set_disk_plan(DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 1).seeded(0xA11CE));
    for i in 0..8 {
        idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({i})")).unwrap();
        idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
    }
    idaa.replicate_now().unwrap();
    idaa.accel().crash();
    assert!(idaa.recover(), "the rebuild path must bring the node back");
    assert_eq!(idaa.node_rebuilds(0), 1);
    assert_eq!(idaa.accel().quarantined_tables(), vec![ObjectName::qualified("APP", "LOG")]);

    // Reads and writes against the lost table are -904 with an explicit
    // quarantine message.
    let err = idaa.query(&mut s, "SELECT COUNT(*) FROM LOG").unwrap_err();
    assert_eq!(err.sqlcode(), -904, "{err}");
    assert!(err.to_string().contains("quarantined"), "{err}");
    let err = idaa.execute(&mut s, "INSERT INTO LOG VALUES (99)").unwrap_err();
    assert_eq!(err.sqlcode(), -904, "{err}");

    // The replicated host table was re-shipped in full and serves fine.
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(8));

    // Recreating the AOT is the operator's reload path: the quarantine
    // lifts and the table serves again.
    idaa.execute(&mut s, "DROP TABLE LOG").unwrap();
    idaa.execute(&mut s, "CREATE TABLE LOG (X INT) IN ACCELERATOR").unwrap();
    assert!(idaa.accel().quarantined_tables().is_empty());
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (1)").unwrap();
    let n = idaa.query(&mut s, "SELECT COUNT(*) FROM LOG").unwrap();
    assert_eq!(n.scalar().unwrap(), &Value::BigInt(1));
}

/// Fleet self-healing: a sharded AOT at replication factor 2 loses one
/// node's durable state to acked bit-rot. The rebuild recreates the shard
/// definitions and refills their contents from live replicas over metered
/// wire frames — answers converge to the fault-free run and the whole
/// repair replays byte-identically per seed.
#[test]
fn fleet_rebuilds_a_corrupt_node_from_its_replicas_and_converges() {
    let build = || {
        let idaa = Idaa::new(IdaaConfig {
            // Checkpoints disabled so the rot stays in node 1's replay tail.
            checkpoint_every: Duration::from_secs(3600),
            fleet: FleetConfig {
                accelerators: 3,
                shards: 4,
                replication_factor: 2,
                ..FleetConfig::default()
            },
            ..IdaaConfig::default()
        });
        let mut s = idaa.session(SYSADM);
        idaa.execute(
            &mut s,
            "CREATE TABLE FLOG (X INT NOT NULL, G VARCHAR(2)) IN ACCELERATOR DISTRIBUTE BY HASH(X)",
        )
        .unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        (idaa, s)
    };
    #[allow(clippy::type_complexity)]
    let run = |plan: Option<DiskFaultPlan>| -> (Vec<idaa::Row>, Vec<idaa::LinkMetrics>, Vec<(String, u64)>) {
        let (idaa, mut s) = build();
        let corrupting = plan.is_some();
        if let Some(p) = plan {
            idaa.set_disk_plan_on(1, p);
        }
        for i in 0..30 {
            let g = if i % 2 == 0 { "a" } else { "b" };
            idaa.execute(&mut s, &format!("INSERT INTO FLOG VALUES ({i}, '{g}')")).unwrap();
            idaa.link().advance(Duration::from_micros(100));
        }
        if corrupting {
            idaa.node_engine(1).crash();
            assert!(idaa.recover_node(1), "the rebuild must bring node 1 back");
            assert_eq!(idaa.node_rebuilds(1), 1, "acked rot must force a rebuild");
            assert!(
                idaa.fleet_catch_up_bytes() > 0,
                "the repair must copy shard contents from live replicas"
            );
            // The shard contents arrive via the fleet's metered catch-up
            // copies; `disk.repair.bytes` only counts host re-shipments
            // during the rebuild itself, which a pure AOT fleet has none of.
            assert_eq!(idaa.metrics().counter("disk.node_rebuilds"), 1);
            assert!(
                idaa.metrics().counter("fleet.catch_up.bytes") > 0,
                "replica-copy repair traffic must be metered"
            );
            assert!(
                idaa.node_engine(1).quarantined_tables().is_empty(),
                "replicated shards are rebuilt, not quarantined"
            );
            idaa.link().advance(Duration::from_millis(25));
        }
        let rows = idaa
            .query(&mut s, "SELECT G, COUNT(*), SUM(X) FROM FLOG GROUP BY G ORDER BY G")
            .unwrap();
        let metrics = (0..idaa.fleet_size()).map(|i| idaa.node_link(i).metrics()).collect();
        (rows.rows, metrics, idaa.node_registry(1).fired())
    };

    let (clean_rows, _, clean_fired) = run(None);
    assert!(clean_fired.is_empty());

    let plan = || DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 7).seeded(0xC0FFEE);
    let (rows, metrics, fired) = run(Some(plan()));
    assert_eq!(fired, vec![(sites::BITROT_LOG_SEGMENT.to_string(), 7)]);
    assert_eq!(rows, clean_rows, "the rebuilt node must serve the fault-free answer");

    let (rows2, metrics2, fired2) = run(Some(plan()));
    assert_eq!(rows, rows2);
    assert_eq!(metrics, metrics2, "the repair must replay byte-identically per seed");
    assert_eq!(fired, fired2);
}

/// A sole-owner shard (replication factor 1) lost to storage corruption
/// has nothing to rebuild from: its shard table is quarantined and the
/// gather surfaces the deterministic -904 — never an empty answer.
#[test]
fn fleet_sole_owner_shard_loss_is_a_deterministic_error() {
    let idaa = Idaa::new(IdaaConfig {
        checkpoint_every: Duration::from_secs(3600),
        fleet: FleetConfig {
            accelerators: 2,
            shards: 2,
            replication_factor: 1,
            ..FleetConfig::default()
        },
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE FLOG (X INT NOT NULL) IN ACCELERATOR DISTRIBUTE BY HASH(X)",
    )
    .unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    idaa.set_disk_plan_on(1, DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 3).seeded(0xB0B));
    idaa.execute(&mut s, "INSERT INTO FLOG VALUES (1), (2), (3), (4), (5)").unwrap();

    idaa.node_engine(1).crash();
    assert!(idaa.recover_node(1), "the node itself comes back (on empty media)");
    assert_eq!(idaa.node_rebuilds(1), 1);
    assert!(
        !idaa.node_engine(1).quarantined_tables().is_empty(),
        "the lost sole-owner shard must be quarantined on its engine"
    );
    let err = idaa.query(&mut s, "SELECT COUNT(*) FROM FLOG").unwrap_err();
    assert_eq!(err.sqlcode(), -904, "a lost sole-owner shard is -904: {err}");
    assert!(err.to_string().contains("no live replica"), "{err}");
}

// ---------------------------------------------------------------------------
// Server scheduler chaos: crashes while statements sit queued
// ---------------------------------------------------------------------------

/// Render a completion so replay comparisons cover identity, answer,
/// admission order *and* queue timing.
fn render_completion(c: &idaa::Completion) -> String {
    let result = match &c.result {
        Ok(out) => match out.rows() {
            Some(rows) => rows.to_csv().replace('\n', ";"),
            None => format!("count={}", out.count()),
        },
        Err(e) => format!("sqlcode={}", e.sqlcode()),
    };
    format!(
        "seat={} stmt={} round={} waited={} queued_us={} sql={} -> {}",
        c.session,
        c.statement,
        c.round,
        c.waited_rounds,
        c.queued.as_micros(),
        c.sql,
        result
    )
}

/// One deterministic two-seat server workload over the 3-node fleet,
/// optionally crashing node 0 mid-scatter while later statements still sit
/// queued. Returns the rendered completion log, every node's link metrics,
/// node 0's firing log, and the post-recovery convergence answer.
#[allow(clippy::type_complexity)]
fn server_fleet_run(
    plan: Option<CrashPlan>,
) -> (Vec<String>, Vec<idaa::LinkMetrics>, Vec<(String, u64)>, String) {
    let (idaa, mut admin) = fleet_system();
    for i in 0..8 {
        let g = if i % 2 == 0 { "a" } else { "b" };
        idaa.execute(&mut admin, &format!("INSERT INTO FLOG VALUES ({i}, '{g}')")).unwrap();
    }
    drop(admin);
    let srv = idaa::Server::with_idaa(
        idaa,
        idaa::ServerConfig { admission_limit: 1, ..idaa::ServerConfig::default() },
    );
    let writer = srv.connect(SYSADM).unwrap();
    let reader = srv.connect(SYSADM).unwrap();
    srv.execute(writer, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    srv.execute(reader, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();

    // Arm the crash only now, so the pinned hit lands inside the scheduled
    // batch below — while statements are still waiting in the queues.
    let crashing = plan.is_some();
    if let Some(p) = plan {
        srv.idaa().set_crash_plan_on(0, p);
    }
    for i in 8..20 {
        let g = if i % 2 == 0 { "a" } else { "b" };
        srv.submit(writer, &format!("INSERT INTO FLOG VALUES ({i}, '{g}')")).unwrap();
        srv.submit(reader, "SELECT G, COUNT(*), SUM(X) FROM FLOG GROUP BY G ORDER BY G").unwrap();
    }
    let completions = srv.run_until_idle();
    assert_eq!(completions.len(), 24, "every queued statement must drain to a completion");
    assert!(
        completions.iter().any(|c| c.waited_rounds > 0),
        "with admission limit 1 the batch must actually queue"
    );
    for c in &completions {
        if let Err(e) = &c.result {
            assert_tolerated(e);
        }
    }

    let idaa = srv.idaa();
    let fired = idaa.node_registry(0).fired();
    idaa.node_registry(0).clear();
    if crashing {
        assert!(idaa.recover_node(0), "node 0 must recover once crash injection stops");
        idaa.link().advance(Duration::from_millis(25));
    }
    let converged = srv
        .query(reader, "SELECT G, COUNT(*), SUM(X) FROM FLOG GROUP BY G ORDER BY G")
        .unwrap()
        .to_csv();
    assert_eq!(
        idaa.current_primaries(),
        vec![0, 1, 2, 0],
        "every shard must be back on its preferred primary"
    );
    let metrics = (0..idaa.fleet_size()).map(|i| idaa.node_link(i).metrics()).collect();
    (completions.iter().map(render_completion).collect(), metrics, fired, converged)
}

/// Drop the `queued_us=…` field from a rendered completion: failover
/// retries consume virtual time, so queue durations legitimately differ
/// between a clean and a crashed run (the timing column), while identity,
/// answer and admission order must not.
fn without_queue_time(line: &str) -> String {
    let start = line.find(" queued_us=").expect("rendered completion has a queued_us field");
    let rest = &line[start + 1..];
    let end = rest.find(' ').unwrap();
    format!("{}{}", &line[..start], &rest[end..])
}

/// Crash shard 0's primary mid-scatter while a two-seat batch sits queued
/// on the server: the scheduler keeps draining (failover retargets the
/// replica inside the running statement, so every answer matches the
/// crash-free run), the queue never wedges, and the whole run — completion
/// log, per-node link metrics, firing log — replays byte-identically per
/// seed.
#[test]
fn server_queued_statements_drain_across_a_mid_scatter_crash() {
    let (clean_log, _, clean_fired, clean_answer) = server_fleet_run(None);
    assert!(clean_fired.is_empty(), "a clean run must never fire");
    assert!(
        clean_log.iter().all(|l| !l.contains("sqlcode=")),
        "a clean run completes every statement"
    );

    let plan = || CrashPlan::at(sites::MID_SCATTER, 3).seeded(0x5EA75);
    let (log1, metrics1, fired1, answer1) = server_fleet_run(Some(plan()));
    assert_eq!(
        fired1,
        vec![(sites::MID_SCATTER.to_string(), 3)],
        "the pinned crash must fire exactly once, mid-drain"
    );
    assert_eq!(
        log1.iter().map(|l| without_queue_time(l)).collect::<Vec<_>>(),
        clean_log.iter().map(|l| without_queue_time(l)).collect::<Vec<_>>(),
        "replica failover inside the scheduler must not change any completion"
    );
    assert_eq!(answer1, clean_answer, "post-recovery convergence answer diverged");

    let (log2, metrics2, fired2, answer2) = server_fleet_run(Some(plan()));
    assert_eq!(log1, log2, "the scheduled completion log must replay byte-identically");
    assert_eq!(metrics1, metrics2, "per-node link metrics must replay byte-identically");
    assert_eq!(fired1, fired2);
    assert_eq!(answer1, answer2);
}

/// Retry a statement through the server until it applies — the scheduled
/// analogue of [`exec_until_applied`]: a tolerated failure triggers an
/// operator recovery and a resubmission.
fn server_exec_until_applied(srv: &idaa::Server, seat: idaa::SeatId, sql: &str) {
    for _ in 0..6 {
        match srv.execute(seat, sql) {
            Ok(_) => return,
            Err(e) => {
                assert_tolerated(&e);
                srv.idaa().link().advance(Duration::from_millis(10));
                srv.idaa().recover();
            }
        }
    }
    panic!("`{sql}` still failing after recovery retries");
}

/// One deterministic two-seat server workload over a single accelerator
/// with a pinned storage-fault plan: queued AOT inserts drain (tolerated
/// failures are recovered and resubmitted), a forced crash then makes
/// recovery read back any latent damage, and the run must converge to the
/// fault-free contents.
#[allow(clippy::type_complexity)]
fn server_disk_run(
    plan: DiskFaultPlan,
) -> (idaa::LinkMetrics, Vec<(String, u64)>, Vec<String>, Vec<i32>, u64) {
    let (idaa, _admin) = disk_system(Duration::from_micros(300), Duration::ZERO);
    let srv = idaa::Server::with_idaa(
        idaa,
        idaa::ServerConfig { admission_limit: 1, ..idaa::ServerConfig::default() },
    );
    let a = srv.connect(SYSADM).unwrap();
    let b = srv.connect(SYSADM).unwrap();
    srv.idaa().set_disk_plan(plan);
    for i in 0..12 {
        let seat = if i % 2 == 0 { a } else { b };
        srv.submit(seat, &format!("INSERT INTO LOG VALUES ({i})")).unwrap();
        srv.idaa().link().advance(Duration::from_micros(100));
    }
    let completions = srv.run_until_idle();
    assert_eq!(completions.len(), 12, "every queued insert must drain to a completion");
    // A statement the storage fault killed completed with a tolerated
    // error; recover the engine and push it back through the scheduler.
    for c in &completions {
        if let Err(e) = &c.result {
            assert_tolerated(e);
            srv.idaa().link().advance(Duration::from_millis(10));
            srv.idaa().recover();
            server_exec_until_applied(&srv, c.session, &c.sql);
        }
    }

    // Forced crash + recovery: any *latent* torn record must now be read
    // back, truncated and durably re-logged — never silently dropped.
    let idaa = srv.idaa();
    idaa.accel().crash();
    idaa.link().advance(Duration::from_millis(10));
    for _ in 0..3 {
        if idaa.recover() {
            break;
        }
        idaa.link().advance(Duration::from_millis(10));
    }
    assert_eq!(idaa.health().state(), HealthState::Online);
    // Queued work resumes against the recovered engine.
    let post = srv.query(a, "SELECT COUNT(*) FROM LOG").unwrap();
    assert_eq!(post.scalar().unwrap().render(), "12");
    (
        idaa.link().metrics(),
        idaa.faults.registry.fired(),
        completions.iter().map(render_completion).collect(),
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap()),
        idaa.metrics().counter("disk.records_truncated"),
    )
}

/// A torn log append fired while server statements sit queued: the queue
/// drains (the damaged statement fails with a tolerated SQLCODE and is
/// resubmitted after recovery, or the tear stays latent until the forced
/// crash), recovery truncates and re-logs the torn tail, the AOT converges
/// to the fault-free contents, and the run replays byte-identically per
/// seed.
#[test]
fn server_queued_statements_survive_a_torn_log_append() {
    let (_, clean_fired, clean_log, clean_rows, clean_truncated) =
        server_disk_run(DiskFaultPlan::default());
    assert!(clean_fired.is_empty(), "a clean disk plan must never fire");
    assert_eq!(clean_rows, (0..12).collect::<Vec<_>>());
    assert_eq!(clean_truncated, 0);
    assert!(clean_log.iter().all(|l| !l.contains("sqlcode=")));

    let plan = || DiskFaultPlan::at(sites::TORN_LOG_APPEND, 3).seeded(0x70A7);
    let (m1, fired1, log1, rows1, truncated1) = server_disk_run(plan());
    assert_eq!(
        fired1,
        vec![(sites::TORN_LOG_APPEND.to_string(), 3)],
        "the pinned tear must fire exactly once"
    );
    assert_eq!(rows1, clean_rows, "the AOT must converge to the fault-free contents");
    assert!(truncated1 >= 1, "recovery must truncate and re-log the torn tail");

    let (m2, fired2, log2, rows2, truncated2) = server_disk_run(plan());
    assert_eq!(m1, m2, "the faulted server run must replay byte-identically");
    assert_eq!(fired1, fired2);
    assert_eq!(log1, log2, "the completion log must replay byte-identically");
    assert_eq!(rows1, rows2);
    assert_eq!(truncated1, truncated2);
}
