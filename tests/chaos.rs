//! Chaos suite: random workloads under deterministic link-fault plans.
//!
//! Every test here runs on the virtual clock only — retries, backoff and
//! outage windows consume `NetLink` time, never wall time. Case count for
//! the randomized test follows `PROPTEST_CASES` (default 16) so CI can pin
//! it; each case derives from a fixed seed, so failures reproduce exactly.
//!
//! Tolerated statement outcomes under faults are the federation SQLCODEs:
//! -30081 (communication failure), -904 (accelerator stopped), -926
//! (transaction rolled back). Everything else is a bug.

use idaa::netsim::sites;
use idaa::{
    CrashPlan, FaultPlan, FleetConfig, HealthState, Idaa, IdaaConfig, ObjectName, Route, Value,
    SYSADM,
};
use std::time::Duration;

/// splitmix64 — the same generator the link's fault stream uses; good
/// enough to derive per-case workloads deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// Build a system with one replicated host table (SALES) and one AOT (LOG),
/// ready for an ELIGIBLE-mode faulted workload.
fn faulted_system(batch: usize) -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig { replication_batch: batch, ..IdaaConfig::default() });
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE SALES (ID INT NOT NULL)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CREATE TABLE LOG (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    (idaa, s)
}

fn sorted_ints(rows: Vec<idaa::Row>) -> Vec<i32> {
    let mut out: Vec<i32> = rows
        .into_iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            ref other => panic!("expected INT, got {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

fn assert_tolerated(e: &idaa::Error) {
    assert!(
        matches!(e.sqlcode(), -30081 | -904 | -926),
        "unexpected failure under link faults: {e} (sqlcode {})",
        e.sqlcode()
    );
}

/// Heal the link and bring the accelerator back: recovery probe, queued
/// phase-2 commit decisions, replication catch-up.
fn heal(idaa: &Idaa) {
    idaa.link().clear_faults();
    assert!(idaa.recover(), "recovery probe must succeed on a healed link");
    idaa.replicate_now().unwrap();
    assert_eq!(idaa.health().state(), HealthState::Online);
    assert_eq!(idaa.pending_accel_commits(), 0);
    assert_eq!(idaa.replication_backlog(), 0);
}

/// One random workload under one random fault plan; returns nothing —
/// panics on any invariant violation.
fn chaos_case(case_seed: u64) {
    let mut rng = Rng(case_seed);
    let batch = [1usize, 5, 64][rng.below(3) as usize];
    let (idaa, mut s) = faulted_system(batch);

    let mut plan = FaultPlan::dropping(rng.next(), 0.02 + 0.23 * rng.f64());
    plan.to_host.drop = 0.02 + 0.23 * rng.f64();
    if rng.below(3) == 0 {
        let start = idaa.link().now() + Duration::from_micros(rng.below(2_000));
        plan.outages.push(idaa::OutageWindow::new(start, start + Duration::from_millis(2)));
    }
    idaa.set_fault_plan(plan);

    // Shadow model. Host-table rows are certain (link faults cannot fail a
    // host insert); AOT rows are certain when the statement succeeded and
    // ambiguous when it failed inside an explicit transaction that later
    // committed (the loss may have hit the acknowledgement, after the
    // accelerator applied the write).
    let mut expect_sales: Vec<i32> = Vec::new();
    let mut log_definite: Vec<i32> = Vec::new();
    let mut log_maybe: Vec<i32> = Vec::new();
    let mut next_val = 0i32;

    for _ in 0..rng.below(30) + 20 {
        match rng.below(4) {
            0 => {
                // Autocommitted host insert: always succeeds; replication
                // may stall and catch up later.
                let v = next_val;
                next_val += 1;
                idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({v})")).unwrap();
                expect_sales.push(v);
            }
            1 => {
                // Autocommitted AOT insert: statement-level atomicity — an
                // error rolls the implicit transaction back on both sides.
                let v = next_val;
                next_val += 1;
                match idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({v})")) {
                    Ok(_) => log_definite.push(v),
                    Err(e) => assert_tolerated(&e),
                }
            }
            2 => {
                // Explicit transaction across both engines: must be atomic.
                idaa.execute(&mut s, "BEGIN").unwrap();
                let mut txn_sales: Vec<i32> = Vec::new();
                let mut txn_log_ok: Vec<i32> = Vec::new();
                let mut txn_log_err: Vec<i32> = Vec::new();
                for _ in 0..rng.below(4) + 1 {
                    let v = next_val;
                    next_val += 1;
                    if rng.below(2) == 0 {
                        idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({v})"))
                            .unwrap();
                        txn_sales.push(v);
                    } else {
                        match idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({v})")) {
                            Ok(_) => txn_log_ok.push(v),
                            Err(e) => {
                                // The loss may have hit the acknowledgement
                                // after the accelerator applied the write:
                                // the row is ambiguous if this txn commits.
                                assert_tolerated(&e);
                                txn_log_err.push(v);
                            }
                        }
                    }
                }
                if rng.below(5) == 0 {
                    idaa.execute(&mut s, "ROLLBACK").unwrap();
                } else {
                    match idaa.execute(&mut s, "COMMIT") {
                        Ok(_) => {
                            expect_sales.extend(txn_sales);
                            log_definite.extend(txn_log_ok);
                            log_maybe.extend(txn_log_err);
                        }
                        Err(e) => assert_tolerated(&e), // rolled back everywhere
                    }
                }
            }
            _ => {
                // Offload-eligible query: never errors — a link failure
                // mid-statement falls back to the host copy. The host
                // answer is exact; an accelerator answer may lag stalled
                // replication but can never overshoot.
                let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
                let n = match out.rows().unwrap().scalar().unwrap() {
                    Value::BigInt(n) => *n,
                    other => panic!("expected BIGINT count, got {other:?}"),
                };
                match out.route {
                    Route::Host => assert_eq!(n, expect_sales.len() as i64),
                    Route::Accelerator => assert!(n <= expect_sales.len() as i64),
                }
            }
        }
    }

    heal(&idaa);

    // Exactly-once replication: the accelerator replica equals the host
    // table, row for row — nothing lost, nothing applied twice.
    let host_sales = sorted_ints(idaa.host().scan_all(&ObjectName::bare("SALES")).unwrap());
    let accel_sales = sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap());
    expect_sales.sort_unstable();
    assert_eq!(host_sales, expect_sales, "host lost or invented committed rows");
    assert_eq!(accel_sales, expect_sales, "replica diverged from the host table");

    // AOT atomicity: every certain row present exactly once, every row
    // present accounted for (certain or ack-loss ambiguous), nothing from
    // rolled-back transactions.
    let log = sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap());
    for w in log.windows(2) {
        assert!(w[0] < w[1], "duplicate AOT row {} after redelivery", w[0]);
    }
    for v in &log_definite {
        assert!(log.binary_search(v).is_ok(), "committed AOT row {v} lost");
    }
    for v in &log {
        assert!(
            log_definite.contains(v) || log_maybe.contains(v),
            "AOT row {v} from a rolled-back or never-issued statement"
        );
    }
}

#[test]
fn chaos_random_workloads_converge_after_recovery() {
    for case in 0..cases() as u64 {
        chaos_case(0xc4a0_5000 + case);
    }
}

/// Fixed-seed replay: the same workload under the same `FaultPlan` seed
/// must produce byte-identical link metrics — delivered traffic, failure
/// count and fault time included.
#[test]
fn fixed_seed_ten_percent_drop_replays_byte_identically() {
    let run = || {
        let (idaa, mut s) = faulted_system(7);
        idaa.set_fault_plan(FaultPlan::dropping(42, 0.10));
        let mut log_ok = 0i64;
        for i in 0..60 {
            idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
            match idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({i})")) {
                Ok(_) => log_ok += 1,
                Err(e) => assert_tolerated(&e),
            }
            let n = idaa.query(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
            match n.scalar().unwrap() {
                // Accelerator answers may lag stalled replication.
                Value::BigInt(c) => assert!(*c <= i + 1),
                other => panic!("expected BIGINT count, got {other:?}"),
            }
        }
        heal(&idaa);
        let sales = idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap().len();
        assert_eq!(sales, 60, "exactly-once replication under 10% drop");
        let log = idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap().len();
        assert_eq!(log as i64, log_ok, "autocommitted AOT inserts are atomic");
        (idaa.link().metrics(), log_ok)
    };
    let (m1, ok1) = run();
    let (m2, ok2) = run();
    assert_eq!(ok1, ok2, "same seed must fail the same statements");
    assert_eq!(m1, m2, "link metrics must replay byte-identically");
    assert!(m1.failures > 0, "a 10% drop plan over 180+ messages must fault");
}

/// A scheduled outage window: offload-eligible work falls back to the
/// host, accelerator-bound statements fail with -30081, health decays to
/// Offline, and once the window passes recovery restores everything and
/// replication catches up.
#[test]
fn scheduled_outage_falls_back_then_recovers() {
    let (idaa, mut s) = faulted_system(16);
    idaa.execute(&mut s, "INSERT INTO SALES VALUES (1)").unwrap();
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (1)").unwrap();

    let start = idaa.link().now();
    idaa.set_fault_plan(FaultPlan::outage(start, start + Duration::from_millis(50)));

    // Mid-statement failure on an eligible query: falls back to the host.
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Host);
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(1));
    assert_eq!(idaa.health().state(), HealthState::Degraded);

    // Statements that require the accelerator fail with the communication
    // SQLCODE, and repeated failures take it offline.
    for _ in 0..2 {
        let err = idaa.execute(&mut s, "INSERT INTO LOG VALUES (2)").unwrap_err();
        assert_eq!(err.sqlcode(), -30081);
    }
    assert_eq!(idaa.health().state(), HealthState::Offline);

    // While offline, eligible queries route straight to the host and a
    // host-side commit queues its replication backlog for catch-up.
    idaa.execute(&mut s, "INSERT INTO SALES VALUES (2)").unwrap();
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Host);
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(2));
    assert!(idaa.replication_backlog() > 0, "changes queue during the outage");

    // The window passes on the virtual clock; the operator probe brings the
    // accelerator back and drains the backlog.
    idaa.link().advance(Duration::from_millis(60));
    assert!(idaa.recover());
    assert_eq!(idaa.health().state(), HealthState::Online);
    assert_eq!(idaa.replication_backlog(), 0);
    let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
    assert_eq!(out.route, Route::Accelerator);
    assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(2));
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (3)").unwrap();
    let n = idaa.query(&mut s, "SELECT COUNT(*) FROM log").unwrap();
    assert_eq!(n.scalar().unwrap(), &Value::BigInt(2));
}

// ---------------------------------------------------------------------------
// Crash–restart recovery
// ---------------------------------------------------------------------------

/// Build the two-table system with an aggressive checkpoint cadence so the
/// mid-checkpoint crash site is reachable within a short workload.
fn crash_system() -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig {
        replication_batch: 4,
        checkpoint_every: Duration::from_micros(300),
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE SALES (ID INT NOT NULL)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
    idaa.execute(&mut s, "CREATE TABLE LOG (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    (idaa, s)
}

/// Execute a statement until it applies: a tolerated failure (the crash
/// itself, or -904 while the engine is down) triggers an operator recovery
/// — restart, log replay, catch-up — and a retry. Crash semantics make the
/// retry safe: a failed statement was rolled back on both sides (presumed
/// abort covers the post-prepare window).
fn exec_until_applied(idaa: &Idaa, s: &mut idaa::Session, sql: &str) {
    for _ in 0..6 {
        match idaa.execute(s, sql) {
            Ok(_) => return,
            Err(e) => {
                assert_tolerated(&e);
                idaa.link().advance(Duration::from_millis(10));
                idaa.recover();
            }
        }
    }
    panic!("`{sql}` still failing after recovery retries");
}

/// One deterministic workload under one crash plan: replicated host
/// inserts, retried AOT inserts, periodic full reloads (the bulk-load
/// path), replication pulls, and a steadily advancing virtual clock (the
/// checkpoint cadence). Heals at the end and returns the link metrics, the
/// registry's firing log, and the final accelerator contents.
#[allow(clippy::type_complexity)]
fn crash_run(plan: CrashPlan) -> (idaa::LinkMetrics, Vec<(String, u64)>, Vec<i32>, Vec<i32>) {
    let (idaa, mut s) = crash_system();
    let expect_crash = !plan.is_clean();
    idaa.set_crash_plan(plan);
    for i in 0..40 {
        idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
        exec_until_applied(&idaa, &mut s, &format!("INSERT INTO LOG VALUES ({i})"));
        if i % 10 == 9 {
            exec_until_applied(&idaa, &mut s, "CALL ACCEL_LOAD_TABLES('SALES')");
        }
        idaa.replicate_now().unwrap();
        idaa.link().advance(Duration::from_micros(100));
    }
    let fired = idaa.faults.registry.fired();
    idaa.faults.registry.clear();
    idaa.link().clear_faults();
    assert!(idaa.recover(), "recovery must succeed once crash injection stops");
    idaa.replicate_now().unwrap();
    assert_eq!(idaa.health().state(), HealthState::Online);
    assert_eq!(idaa.pending_accel_commits(), 0);
    assert_eq!(idaa.replication_backlog(), 0);
    if expect_crash {
        let stats = idaa.last_restart().expect("a fired crash must force a restart");
        assert!(stats.epoch >= 2, "restart must advance the recovery epoch");
    }
    (
        idaa.link().metrics(),
        fired,
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap()),
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap()),
    )
}

/// Crash at every named site, at three different pinned hit counts each:
/// after recovery and catch-up the accelerator converges to the crash-free
/// answer, and replaying the same plan reproduces byte-identical link
/// metrics and the exact same firing log.
#[test]
fn crash_at_every_named_site_converges_to_the_crash_free_answer() {
    let (_, fired, sales_clean, log_clean) = crash_run(CrashPlan::default());
    assert!(fired.is_empty(), "a clean plan must never fire");
    assert_eq!(sales_clean, (0..40).collect::<Vec<_>>());
    assert_eq!(log_clean, (0..40).collect::<Vec<_>>());

    for site in [
        sites::MID_BULK_LOAD,
        sites::POST_PREPARE,
        sites::MID_REPL_APPLY,
        sites::MID_CHECKPOINT,
    ] {
        for (k, seed) in [0xA11CEu64, 0xB0B, 0xC0FFEE].into_iter().enumerate() {
            let hit = k as u64 + 1;
            let plan = CrashPlan::at(site, hit).seeded(seed);
            let (m1, fired1, sales, log) = crash_run(plan.clone());
            assert_eq!(
                fired1,
                vec![(site.to_string(), hit)],
                "the pinned crash must fire exactly once at {site} hit {hit}"
            );
            assert_eq!(sales, sales_clean, "replica diverged after crash at {site} hit {hit}");
            assert_eq!(log, log_clean, "AOT diverged after crash at {site} hit {hit}");

            let (m2, fired2, sales2, log2) = crash_run(plan);
            assert_eq!(m1, m2, "crash at {site} hit {hit} must replay byte-identically");
            assert_eq!(fired1, fired2, "firing log must replay identically");
            assert_eq!(sales, sales2);
            assert_eq!(log, log2);
        }
    }
}

/// The in-doubt window end to end: a prepared transaction whose COMMIT
/// decision is queued on the coordinator survives the crash and commits on
/// restart; one whose vote never reached the coordinator is presumed
/// aborted — matching the host's rollback.
#[test]
fn crash_preserves_in_doubt_transactions_until_the_coordinator_decides() {
    let (idaa, mut s) = faulted_system(7);

    // Queued decision: prepare round-trips, every phase-2 delivery dies,
    // the host commits and queues the accelerator's COMMIT. Then a crash.
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (88)").unwrap();
    idaa.link().fail_transfers_after(2, 8);
    idaa.execute(&mut s, "COMMIT").unwrap();
    assert_eq!(idaa.pending_accel_commits(), 1);
    idaa.accel().crash();
    idaa.link().clear_faults();
    assert!(idaa.recover());
    assert_eq!(idaa.pending_accel_commits(), 0, "queued decision resolved on restart");
    assert_eq!(idaa.last_restart().unwrap().rematerialized_in_doubt, 1);

    // No queued decision: the crash fires right after PREPARE is durably
    // logged, the coordinator rolls back, restart presumes abort.
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO LOG VALUES (99)").unwrap();
    idaa.faults.registry.arm(sites::POST_PREPARE, 1);
    let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
    assert_eq!(err.sqlcode(), -926);
    assert!(idaa.recover());
    assert_eq!(idaa.last_restart().unwrap().rematerialized_in_doubt, 1);

    // Exactly the committed row survives; health is fully restored.
    assert_eq!(
        sorted_ints(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap()),
        vec![88]
    );
    assert_eq!(idaa.health().state(), HealthState::Online);
}

/// Corrupt faults end-to-end: a damaged frame is caught by the wire
/// codec's checksum on receive (not by fiat), surfaces as a retryable
/// link error, and a retry delivers the original bytes. Failed attempts
/// charge only the failure counters: every reply and acknowledgement is
/// *delivered* exactly once (to-host traffic is byte-identical to a
/// fault-free run), and the only extra delivered to-accel messages are
/// the at-least-once request redeliveries the receiver deduplicates.
/// The whole faulted run replays byte-identically per seed.
#[test]
fn corrupt_faults_are_detected_by_checksum_and_leave_delivered_traffic_clean() {
    let workload = |plan: Option<FaultPlan>| {
        let (idaa, mut s) = faulted_system(7);
        if let Some(p) = plan {
            idaa.set_fault_plan(p);
        }
        for i in 0..40 {
            idaa.execute(&mut s, &format!("INSERT INTO SALES VALUES ({i})")).unwrap();
            idaa.execute(&mut s, &format!("INSERT INTO LOG VALUES ({i})")).unwrap();
            let n = idaa.query(&mut s, "SELECT COUNT(*) FROM log").unwrap();
            assert_eq!(n.scalar().unwrap(), &Value::BigInt(i + 1));
        }
        idaa.replicate_now().unwrap();
        // Exactly-once convergence despite mid-stream corruption.
        assert_eq!(idaa.accel().scan_visible(&ObjectName::bare("SALES")).unwrap().len(), 40);
        assert_eq!(idaa.accel().scan_visible(&ObjectName::bare("LOG")).unwrap().len(), 40);
        (idaa.link().metrics(), idaa.statements_deduped())
    };
    let corrupting = || {
        let mut plan = FaultPlan::dropping(31, 0.0);
        plan.to_accel.corrupt = 0.12;
        plan.to_host.corrupt = 0.12;
        plan
    };

    let (clean, clean_dedup) = workload(None);
    assert_eq!(clean_dedup, 0);
    let (faulted, deduped) = workload(Some(corrupting()));
    assert!(faulted.failures > 0, "a 12% corrupt plan over this workload must fire");
    assert!(faulted.fault_time > Duration::ZERO, "detected corruption costs virtual time");
    // Replies and acks were each delivered exactly once: checksum-rejected
    // attempts never touched the delivered to-host counters.
    assert_eq!(faulted.bytes_to_host, clean.bytes_to_host);
    assert_eq!(faulted.messages_to_host, clean.messages_to_host);
    assert_eq!(faulted.logical_bytes_to_host, clean.logical_bytes_to_host);
    // Every extra delivered to-accel message is a deduplicated statement
    // redelivery (a corrupted reply forces the request to go out again).
    assert!(deduped > 0, "corrupted replies force request redeliveries");
    assert_eq!(faulted.messages_to_accel, clean.messages_to_accel + deduped);

    let (replay, replay_dedup) = workload(Some(corrupting()));
    assert_eq!(faulted, replay, "same seed must replay byte-identically");
    assert_eq!(deduped, replay_dedup);
}

// ---------------------------------------------------------------------------
// Fleet failover chaos
// ---------------------------------------------------------------------------

/// A 3-node fleet with 4 shards at replication factor 2 and a sharded AOT
/// ready for a scatter/gather workload.
fn fleet_system() -> (Idaa, idaa::Session) {
    let idaa = Idaa::new(IdaaConfig {
        fleet: FleetConfig {
            accelerators: 3,
            shards: 4,
            replication_factor: 2,
            ..FleetConfig::default()
        },
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE FLOG (X INT NOT NULL, G VARCHAR(2)) IN ACCELERATOR DISTRIBUTE BY HASH(X)",
    )
    .unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    (idaa, s)
}

/// One deterministic scatter/gather workload, optionally crashing node 0 at
/// the mid-scatter site. Returns every per-statement answer, the per-node
/// link metrics, node 0's firing log, and the failover/rebalance counters.
#[allow(clippy::type_complexity)]
fn fleet_crash_run(
    plan: Option<CrashPlan>,
) -> (Vec<Vec<idaa::Row>>, Vec<idaa::LinkMetrics>, Vec<(String, u64)>, u64, u64) {
    let (idaa, mut s) = fleet_system();
    let crashing = plan.is_some();
    if let Some(p) = plan {
        idaa.set_crash_plan_on(0, p);
    }
    let mut answers = Vec::new();
    for i in 0..30 {
        let g = if i % 2 == 0 { "a" } else { "b" };
        idaa.execute(&mut s, &format!("INSERT INTO FLOG VALUES ({i}, '{g}')")).unwrap();
        let rows = idaa
            .query(&mut s, "SELECT G, COUNT(*), SUM(X) FROM FLOG GROUP BY G ORDER BY G")
            .unwrap();
        answers.push(rows.rows);
        idaa.link().advance(Duration::from_micros(100));
    }
    let fired = idaa.node_registry(0).fired();
    idaa.node_registry(0).clear();
    if crashing {
        assert!(idaa.recover_node(0), "node 0 must recover once crash injection stops");
        assert!(idaa.fleet_catch_up_bytes() > 0, "rejoin must copy shard data over the link");
        // The restarted node rejoins and the background rebalance (virtual
        // clock) migrates its shards back to the preferred placement.
        idaa.link().advance(Duration::from_millis(25));
    }
    let rows = idaa
        .query(&mut s, "SELECT G, COUNT(*), SUM(X) FROM FLOG GROUP BY G ORDER BY G")
        .unwrap();
    answers.push(rows.rows);
    assert_eq!(
        idaa.current_primaries(),
        vec![0, 1, 2, 0],
        "every shard must be back on its preferred primary"
    );
    let metrics = (0..idaa.fleet_size()).map(|i| idaa.node_link(i).metrics()).collect();
    (answers, metrics, fired, idaa.fleet_failovers(), idaa.fleet_rebalances())
}

/// The headline robustness path: crash shard 0's primary mid-scatter. The
/// router retargets the replica inside the same statement (every answer
/// matches the crash-free run), the restarted node rejoins via catch-up,
/// the rebalance task migrates the shards back, and the whole run —
/// including every node's link metrics — replays byte-identically per seed.
#[test]
fn fleet_primary_crash_mid_scatter_fails_over_and_converges() {
    let (clean_answers, _, clean_fired, clean_failovers, _) = fleet_crash_run(None);
    assert!(clean_fired.is_empty());
    assert_eq!(clean_failovers, 0, "a clean run never fails over");

    let plan = || CrashPlan::at(sites::MID_SCATTER, 3).seeded(0xF1EE7);
    let (answers, metrics, fired, failovers, rebalances) = fleet_crash_run(Some(plan()));
    assert_eq!(
        fired,
        vec![(sites::MID_SCATTER.to_string(), 3)],
        "the pinned crash must fire exactly once"
    );
    assert!(failovers > 0, "the crashed primary's shards must fail over to the replica");
    assert!(rebalances > 0, "recovered shards must migrate back to the preferred owner");
    assert_eq!(answers, clean_answers, "failover must never change a query answer");

    let (answers2, metrics2, fired2, failovers2, rebalances2) = fleet_crash_run(Some(plan()));
    assert_eq!(answers, answers2);
    assert_eq!(metrics, metrics2, "per-node link metrics must replay byte-identically");
    assert_eq!(fired, fired2);
    assert_eq!(failovers, failovers2);
    assert_eq!(rebalances, rebalances2);
}

/// Fleet error surfaces: losing every replica of a shard is -904 (resource
/// unavailable), while a shard whose exchange dies after retries on every
/// live replica is -30081 (communication failure).
#[test]
fn fleet_shard_loss_maps_to_db2_sqlcodes() {
    // Replication factor 1: each shard has exactly one owner.
    let idaa = Idaa::new(IdaaConfig {
        fleet: FleetConfig {
            accelerators: 2,
            shards: 2,
            replication_factor: 1,
            ..FleetConfig::default()
        },
        ..IdaaConfig::default()
    });
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE FLOG (X INT NOT NULL) IN ACCELERATOR DISTRIBUTE BY HASH(X)",
    )
    .unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    idaa.execute(&mut s, "INSERT INTO FLOG VALUES (1), (2), (3), (4), (5)").unwrap();

    // Crash one owner *and* sever its link so the health probe cannot
    // revive it: its shard has no live replica left.
    idaa.node_engine(1).crash();
    idaa.node_link(1).fail_transfers_after(0, u64::MAX);
    let err = idaa.query(&mut s, "SELECT COUNT(*) FROM FLOG").unwrap_err();
    assert_eq!(err.sqlcode(), -904, "a shard with no live replica is -904: {err}");

    // Heal it and verify the fleet serves again.
    idaa.node_link(1).clear_faults();
    assert!(idaa.recover_node(1));
    assert_eq!(idaa.query(&mut s, "SELECT COUNT(*) FROM FLOG").unwrap().rows.len(), 1);

    // Now kill only the statement exchange (the node itself stays up and
    // Online): the shard's gather dies after retries — -30081.
    idaa.node_link(1).fail_transfers_after(0, u64::MAX);
    let err = idaa.query(&mut s, "SELECT COUNT(*) FROM FLOG").unwrap_err();
    assert_eq!(err.sqlcode(), -30081, "a dead exchange on every replica is -30081: {err}");
}
