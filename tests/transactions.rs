//! Cross-system transaction semantics: the paper's §2 requirement that
//! with AOTs "IDAA has to be aware of the DB2 transaction context so that
//! correct results are guaranteed" — own-uncommitted visibility, snapshot
//! isolation between sessions, atomic commit/rollback across both engines,
//! two-phase-commit failure handling, and lock behavior on the host.

use idaa::{Idaa, IdaaConfig, Value, SYSADM};
use std::sync::atomic::Ordering;

fn system() -> Idaa {
    Idaa::default()
}

/// BEGIN a transaction writing one row to a host table and one to an AOT,
/// leaving it open so the test can fail the COMMIT protocol.
fn open_mixed_txn(idaa: &Idaa) -> idaa::Session {
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE H (X INT)").unwrap();
    idaa.execute(&mut s, "CREATE TABLE A (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO H VALUES (1)").unwrap();
    idaa.execute(&mut s, "INSERT INTO A VALUES (1)").unwrap();
    s
}

fn count(idaa: &Idaa, s: &mut idaa::Session, table: &str) -> i64 {
    match idaa.query(s, &format!("SELECT COUNT(*) FROM {table}")).unwrap().scalar().unwrap() {
        Value::BigInt(n) => *n,
        other => panic!("expected BIGINT count, got {other:?}"),
    }
}

#[test]
fn own_uncommitted_changes_visible_only_to_self() {
    let idaa = system();
    let mut writer = idaa.session(SYSADM);
    let mut reader = idaa.session(SYSADM);
    idaa.execute(&mut writer, "CREATE TABLE T (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut writer, "BEGIN").unwrap();
    idaa.execute(&mut writer, "INSERT INTO T VALUES (1), (2), (3)").unwrap();
    idaa.execute(&mut writer, "DELETE FROM T WHERE X = 2").unwrap();

    let mine = idaa.query(&mut writer, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(mine.scalar().unwrap(), &Value::BigInt(2));
    let theirs = idaa.query(&mut reader, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(theirs.scalar().unwrap(), &Value::BigInt(0));

    idaa.execute(&mut writer, "COMMIT").unwrap();
    let after = idaa.query(&mut reader, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(after.scalar().unwrap(), &Value::BigInt(2));
}

#[test]
fn snapshot_isolation_within_reader_transaction() {
    let idaa = system();
    let mut writer = idaa.session(SYSADM);
    let mut reader = idaa.session(SYSADM);
    idaa.execute(&mut writer, "CREATE TABLE T (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut writer, "INSERT INTO T VALUES (1)").unwrap();

    // The reader opens a transaction and touches the accelerator, pinning
    // its snapshot.
    idaa.execute(&mut reader, "BEGIN").unwrap();
    idaa.execute(&mut reader, "INSERT INTO T VALUES (100)").unwrap(); // enlists
    let c1 = idaa.query(&mut reader, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(c1.scalar().unwrap(), &Value::BigInt(2)); // 1 committed + own

    // A concurrent commit must stay invisible to the pinned snapshot.
    idaa.execute(&mut writer, "INSERT INTO T VALUES (2)").unwrap();
    let c2 = idaa.query(&mut reader, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(c2.scalar().unwrap(), &Value::BigInt(2), "snapshot must not move");

    idaa.execute(&mut reader, "COMMIT").unwrap();
    let c3 = idaa.query(&mut reader, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(c3.scalar().unwrap(), &Value::BigInt(3));
}

#[test]
fn dirty_reads_never_happen_across_engines() {
    let idaa = system();
    let mut a = idaa.session(SYSADM);
    let mut b = idaa.session(SYSADM);
    idaa.execute(&mut a, "CREATE TABLE HOSTT (X INT)").unwrap();
    idaa.execute(&mut a, "CREATE TABLE AOTT (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut a, "BEGIN").unwrap();
    idaa.execute(&mut a, "INSERT INTO AOTT VALUES (1)").unwrap();
    // The AOT write is invisible to b.
    let r = idaa.query(&mut b, "SELECT COUNT(*) FROM aott").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(0));
    idaa.execute(&mut a, "ROLLBACK").unwrap();
    let r = idaa.query(&mut b, "SELECT COUNT(*) FROM aott").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(0));
}

#[test]
fn write_write_conflict_on_aot_is_detected() {
    let idaa = system();
    let mut a = idaa.session(SYSADM);
    let mut b = idaa.session(SYSADM);
    idaa.execute(&mut a, "CREATE TABLE C (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut a, "INSERT INTO C VALUES (1)").unwrap();
    idaa.execute(&mut a, "BEGIN").unwrap();
    idaa.execute(&mut b, "BEGIN").unwrap();
    idaa.execute(&mut a, "DELETE FROM C WHERE X = 1").unwrap();
    // First-updater-wins: b's delete of the same version fails.
    let err = idaa.execute(&mut b, "DELETE FROM C WHERE X = 1");
    // b's snapshot still sees the row, so it attempts the delete and hits
    // the conflict.
    assert!(err.is_err(), "expected write-write conflict");
    idaa.execute(&mut a, "COMMIT").unwrap();
    idaa.execute(&mut b, "ROLLBACK").unwrap();
    let mut c = idaa.session(SYSADM);
    let r = idaa.query(&mut c, "SELECT COUNT(*) FROM c").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(0));
}

#[test]
fn two_phase_commit_failure_is_atomic_and_recoverable() {
    let idaa = system();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE H (X INT)").unwrap();
    idaa.execute(&mut s, "CREATE TABLE A (X INT) IN ACCELERATOR").unwrap();

    // Failed 2PC leaves both sides clean…
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO H VALUES (1)").unwrap();
    idaa.execute(&mut s, "INSERT INTO A VALUES (1)").unwrap();
    idaa.faults.registry.arm(idaa_netsim::sites::PREPARE_VOTE_NO, 1);
    assert!(idaa.execute(&mut s, "COMMIT").is_err());
    assert_eq!(
        idaa.query(&mut s, "SELECT COUNT(*) FROM h").unwrap().scalar().unwrap(),
        &Value::BigInt(0)
    );
    assert_eq!(
        idaa.query(&mut s, "SELECT COUNT(*) FROM a").unwrap().scalar().unwrap(),
        &Value::BigInt(0)
    );

    // …and the session keeps working afterwards.
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO H VALUES (2)").unwrap();
    idaa.execute(&mut s, "INSERT INTO A VALUES (2)").unwrap();
    idaa.execute(&mut s, "COMMIT").unwrap();
    assert_eq!(
        idaa.query(&mut s, "SELECT COUNT(*) FROM h").unwrap().scalar().unwrap(),
        &Value::BigInt(1)
    );
    assert_eq!(
        idaa.query(&mut s, "SELECT COUNT(*) FROM a").unwrap().scalar().unwrap(),
        &Value::BigInt(1)
    );
}

#[test]
fn concurrent_sessions_parallel_aot_inserts() {
    let idaa = std::sync::Arc::new(system());
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE P (T INT, X INT) IN ACCELERATOR").unwrap();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let idaa = std::sync::Arc::clone(&idaa);
            std::thread::spawn(move || {
                let mut sess = idaa.session(SYSADM);
                for i in 0..50 {
                    idaa.execute(&mut sess, &format!("INSERT INTO P VALUES ({t}, {i})"))
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let r = idaa.query(&mut s, "SELECT COUNT(*), COUNT(DISTINCT t) FROM p").unwrap();
    assert_eq!(r.rows[0][0], Value::BigInt(200));
    assert_eq!(r.rows[0][1], Value::BigInt(4));
}

#[test]
fn host_lock_timeout_surfaces_as_minus_913() {
    let idaa = system();
    let mut a = idaa.session(SYSADM);
    idaa.execute(&mut a, "CREATE TABLE L (X INT)").unwrap();
    idaa.execute(&mut a, "BEGIN").unwrap();
    idaa.execute(&mut a, "INSERT INTO L VALUES (1)").unwrap(); // X lock held
    let idaa_ref = &idaa;
    std::thread::scope(|scope| {
        let h = scope.spawn(move || {
            let mut b = idaa_ref.session(SYSADM);
            idaa_ref.execute(&mut b, "SELECT COUNT(*) FROM l")
        });
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err.sqlcode(), -913);
    });
    idaa.execute(&mut a, "COMMIT").unwrap();
}

#[test]
fn autocommit_failure_of_multirow_aot_insert_is_atomic() {
    let idaa = system();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE NN (X INT NOT NULL) IN ACCELERATOR").unwrap();
    let err = idaa.execute(&mut s, "INSERT INTO NN VALUES (1), (NULL), (3)");
    assert!(err.is_err());
    let r = idaa.query(&mut s, "SELECT COUNT(*) FROM nn").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(0));
}

#[test]
fn commit_without_begin_is_noop_and_begin_twice_errors() {
    let idaa = system();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "COMMIT").unwrap();
    idaa.execute(&mut s, "ROLLBACK").unwrap();
    idaa.execute(&mut s, "BEGIN").unwrap();
    let err = idaa.execute(&mut s, "BEGIN").unwrap_err();
    assert_eq!(err.kind(), "transaction_state");
    idaa.execute(&mut s, "COMMIT").unwrap();
}

#[test]
fn replication_waits_for_commit_lock_release() {
    // A committed host transaction must be fully visible on the accelerator
    // replica immediately after COMMIT (auto-replicate drains the log).
    let idaa = system();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE R (X INT)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('R')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('R')").unwrap();
    idaa.execute(&mut s, "BEGIN").unwrap();
    for i in 0..20 {
        idaa.execute(&mut s, &format!("INSERT INTO R VALUES ({i})")).unwrap();
    }
    // Not replicated yet (uncommitted).
    assert_eq!(idaa.accel().scan_visible(&idaa::ObjectName::bare("R")).unwrap().len(), 0);
    idaa.execute(&mut s, "COMMIT").unwrap();
    assert_eq!(idaa.accel().scan_visible(&idaa::ObjectName::bare("R")).unwrap().len(), 20);
}

#[test]
fn undeliverable_prepare_rolls_back_everywhere() {
    // Link-level generalization of the vote-NO case: the PREPARE request
    // itself never arrives (all retries fail), so the participant never
    // voted — presumed abort on both sides.
    let idaa = system();
    let mut s = open_mixed_txn(&idaa);
    idaa.link().fail_next_transfers(4); // all 4 delivery attempts
    let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
    assert_eq!(err.sqlcode(), -926);
    assert_eq!(count(&idaa, &mut s, "h"), 0);
    assert_eq!(count(&idaa, &mut s, "a"), 0);
    // The session keeps working afterwards.
    idaa.execute(&mut s, "INSERT INTO A VALUES (2)").unwrap();
    assert_eq!(count(&idaa, &mut s, "a"), 1);
}

#[test]
fn lost_vote_leaves_in_doubt_transaction_that_the_resolver_commits() {
    // The accelerator prepared, but its YES vote is lost: the transaction
    // is in-doubt. The resolver's status inquiry succeeds, so the commit
    // goes through — exactly once, on both sides.
    let idaa = system();
    let mut s = open_mixed_txn(&idaa);
    // COMMIT ships: PREPARE →accel (1 transfer), vote →host (fails ×4),
    // then the resolver re-runs the inquiry on a healed link.
    idaa.link().fail_transfers_after(1, 4);
    idaa.execute(&mut s, "COMMIT").unwrap();
    assert_eq!(idaa.in_doubt_resolved(), 1);
    assert_eq!(count(&idaa, &mut s, "h"), 1);
    assert_eq!(count(&idaa, &mut s, "a"), 1);
    let mut other = idaa.session(SYSADM);
    assert_eq!(count(&idaa, &mut other, "a"), 1, "commit visible to other sessions");
}

#[test]
fn unresolvable_in_doubt_transaction_rolls_back_everywhere() {
    // Vote lost AND the resolver cannot reach the participant either:
    // presumed abort, both sides clean.
    let idaa = system();
    let mut s = open_mixed_txn(&idaa);
    // vote ×4 + resolver inquiry →accel ×4 all fail.
    idaa.link().fail_transfers_after(1, 8);
    let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
    assert_eq!(err.sqlcode(), -926);
    assert_eq!(idaa.in_doubt_resolved(), 0);
    assert_eq!(count(&idaa, &mut s, "h"), 0);
    assert_eq!(count(&idaa, &mut s, "a"), 0);
}

#[test]
fn lost_phase_two_commit_is_queued_and_redelivered() {
    // Both participants voted YES and the coordinator committed, but the
    // phase-2 COMMIT message to the accelerator is lost. The decision is
    // queued; the accelerator holds the transaction prepared (invisible)
    // until redelivery.
    let idaa = Idaa::new(IdaaConfig { auto_replicate: false, ..IdaaConfig::default() });
    let mut s = open_mixed_txn(&idaa);
    // PREPARE (1) and vote (2) deliver; phase-2 COMMIT →accel fails ×4.
    idaa.link().fail_transfers_after(2, 4);
    idaa.execute(&mut s, "COMMIT").unwrap(); // coordinator decision is durable
    assert_eq!(idaa.pending_accel_commits(), 1);
    assert_eq!(count(&idaa, &mut s, "h"), 1);
    let mut other = idaa.session(SYSADM);
    assert_eq!(count(&idaa, &mut other, "a"), 0, "still prepared, not visible");
    // Recovery redelivers the queued decision.
    assert!(idaa.recover());
    assert_eq!(idaa.pending_accel_commits(), 0);
    assert_eq!(count(&idaa, &mut other, "a"), 1);
}

// ---------------------------------------------------------------------------
// Isolation-anomaly battery against AOTs
//
// Snapshot isolation forbids dirty reads, non-repeatable reads, lost
// updates, and phantoms — and (unlike serializability) permits write skew.
// Each probe pins the reader's snapshot by enlisting the accelerator in
// its transaction (the first AOT write fixes the snapshot) and checks the
// trace to prove the probed reads really ran on the accelerator.
// ---------------------------------------------------------------------------

/// The last trace for `needle` must show an accelerator-routed statement.
fn assert_ran_on_accel(idaa: &Idaa, needle: &str) {
    let trace = idaa
        .tracer()
        .last_containing(needle)
        .unwrap_or_else(|| panic!("no trace for {needle}"));
    trace.root.validate().unwrap();
    assert_eq!(
        trace.root.attr("route"),
        Some("Accelerator"),
        "probe must execute on the accelerator: {}",
        trace.root.render()
    );
}

/// An AOT `ACCOUNTS` table with two committed rows, plus a `PINNED` AOT
/// scratch table a transaction can write to enlist (pinning its snapshot).
fn anomaly_setup(idaa: &Idaa) -> idaa::Session {
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE ACCOUNTS (ID INT, BAL INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "CREATE TABLE PINNED (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "INSERT INTO ACCOUNTS VALUES (1, 50), (2, 50)").unwrap();
    s
}

fn balance(idaa: &Idaa, s: &mut idaa::Session, id: i32) -> i64 {
    idaa.query(s, &format!("SELECT bal FROM accounts WHERE id = {id}"))
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap()
}

#[test]
fn anomaly_non_repeatable_read_prevented() {
    let idaa = system();
    let mut writer = anomaly_setup(&idaa);
    let mut reader = idaa.session(SYSADM);
    idaa.execute(&mut reader, "BEGIN").unwrap();
    idaa.execute(&mut reader, "INSERT INTO PINNED VALUES (0)").unwrap(); // pin snapshot
    let first = balance(&idaa, &mut reader, 1);
    assert_eq!(first, 50);
    // A concurrent committed update must not change what the pinned
    // transaction re-reads.
    idaa.execute(&mut writer, "UPDATE ACCOUNTS SET BAL = 99 WHERE ID = 1").unwrap();
    let second = balance(&idaa, &mut reader, 1);
    assert_eq!(second, first, "read must repeat under snapshot isolation");
    assert_ran_on_accel(&idaa, "SELECT BAL FROM ACCOUNTS");
    idaa.execute(&mut reader, "COMMIT").unwrap();
    // After commit the new value is visible.
    assert_eq!(balance(&idaa, &mut reader, 1), 99);
}

#[test]
fn anomaly_lost_update_rejected() {
    let idaa = system();
    let _admin = anomaly_setup(&idaa);
    let mut a = idaa.session(SYSADM);
    let mut b = idaa.session(SYSADM);
    idaa.execute(&mut a, "BEGIN").unwrap();
    idaa.execute(&mut b, "BEGIN").unwrap();
    // Both read the same balance, then both try read-modify-write.
    idaa.execute(&mut a, "INSERT INTO PINNED VALUES (1)").unwrap();
    idaa.execute(&mut b, "INSERT INTO PINNED VALUES (2)").unwrap();
    assert_eq!(balance(&idaa, &mut a, 1), 50);
    assert_eq!(balance(&idaa, &mut b, 1), 50);
    idaa.execute(&mut a, "UPDATE ACCOUNTS SET BAL = BAL + 10 WHERE ID = 1").unwrap();
    // First-updater-wins: b's update of the same version must fail, not
    // silently overwrite a's increment after both commit.
    let err = idaa.execute(&mut b, "UPDATE ACCOUNTS SET BAL = BAL + 25 WHERE ID = 1").unwrap_err();
    assert_eq!(err.sqlcode(), -913);
    assert_ran_on_accel(&idaa, "(BAL + 10)");
    // The rejected statement still reached the accelerator — its trace
    // shows the shipped request and the conflict SQLCODE.
    let rejected = idaa.tracer().last_containing("(BAL + 25)").unwrap();
    assert_eq!(rejected.root.attr("sqlcode"), Some("-913"));
    assert!(
        rejected.root.find_all("transfer").iter().any(|t| t.attr("dir") == Some("to_accel")),
        "{}",
        rejected.root.render()
    );
    idaa.execute(&mut a, "COMMIT").unwrap();
    idaa.execute(&mut b, "ROLLBACK").unwrap();
    let mut check = idaa.session(SYSADM);
    assert_eq!(balance(&idaa, &mut check, 1), 60, "exactly one increment applied");
}

#[test]
fn anomaly_phantom_prevented() {
    let idaa = system();
    let mut writer = anomaly_setup(&idaa);
    let mut reader = idaa.session(SYSADM);
    idaa.execute(&mut reader, "BEGIN").unwrap();
    idaa.execute(&mut reader, "INSERT INTO PINNED VALUES (0)").unwrap(); // pin snapshot
    let probe = "SELECT COUNT(*) FROM accounts WHERE bal >= 50";
    let first = idaa.query(&mut reader, probe).unwrap();
    assert_eq!(first.scalar().unwrap(), &Value::BigInt(2));
    // A concurrent commit inserts a row matching the predicate.
    idaa.execute(&mut writer, "INSERT INTO ACCOUNTS VALUES (3, 75)").unwrap();
    let second = idaa.query(&mut reader, probe).unwrap();
    assert_eq!(
        second.scalar().unwrap(),
        &Value::BigInt(2),
        "predicate re-read must not see a phantom"
    );
    assert_ran_on_accel(&idaa, "WHERE (BAL >= 50)");
    idaa.execute(&mut reader, "COMMIT").unwrap();
    let third = idaa.query(&mut reader, probe).unwrap();
    assert_eq!(third.scalar().unwrap(), &Value::BigInt(3));
}

#[test]
fn anomaly_write_skew_permitted_under_si() {
    // The classic SI anomaly: both transactions check SUM(bal) >= 100,
    // each drains a *different* row, and — because their write sets are
    // disjoint — both commit. Snapshot isolation permits this (it is not
    // serializable); the battery documents the boundary rather than
    // pretending the engine is serializable.
    let idaa = system();
    let _admin = anomaly_setup(&idaa);
    let mut a = idaa.session(SYSADM);
    let mut b = idaa.session(SYSADM);
    idaa.execute(&mut a, "BEGIN").unwrap();
    idaa.execute(&mut b, "BEGIN").unwrap();
    idaa.execute(&mut a, "INSERT INTO PINNED VALUES (1)").unwrap();
    idaa.execute(&mut b, "INSERT INTO PINNED VALUES (2)").unwrap();
    let sum = |idaa: &Idaa, s: &mut idaa::Session| {
        idaa.query(s, "SELECT SUM(bal) FROM accounts").unwrap().scalar().unwrap().as_i64().unwrap()
    };
    // Both see the invariant holding (sum = 100) on their snapshots…
    assert_eq!(sum(&idaa, &mut a), 100);
    assert_eq!(sum(&idaa, &mut b), 100);
    // …and each withdraws from its own row. Disjoint write sets: no
    // first-updater conflict fires.
    idaa.execute(&mut a, "UPDATE ACCOUNTS SET BAL = BAL - 50 WHERE ID = 1").unwrap();
    idaa.execute(&mut b, "UPDATE ACCOUNTS SET BAL = BAL - 50 WHERE ID = 2").unwrap();
    assert_ran_on_accel(&idaa, "UPDATE ACCOUNTS");
    idaa.execute(&mut a, "COMMIT").unwrap();
    idaa.execute(&mut b, "COMMIT").unwrap();
    let mut check = idaa.session(SYSADM);
    let total = sum(&idaa, &mut check);
    assert_eq!(total, 0, "write skew drains both rows — SI permits it");
}

#[test]
fn anomaly_dirty_read_prevented_with_trace_evidence() {
    // Dirty-read variant of `dirty_reads_never_happen_across_engines`,
    // with the trace proving the probe executed on the accelerator.
    let idaa = system();
    let mut writer = anomaly_setup(&idaa);
    let mut reader = idaa.session(SYSADM);
    idaa.execute(&mut writer, "BEGIN").unwrap();
    idaa.execute(&mut writer, "UPDATE ACCOUNTS SET BAL = 0 WHERE ID = 1").unwrap();
    // Uncommitted write invisible to the reader.
    assert_eq!(balance(&idaa, &mut reader, 1), 50);
    assert_ran_on_accel(&idaa, "SELECT BAL FROM ACCOUNTS");
    idaa.execute(&mut writer, "ROLLBACK").unwrap();
    assert_eq!(balance(&idaa, &mut reader, 1), 50);
}

#[test]
fn accel_stop_inside_open_transaction_rolls_back_cleanly() {
    // The accelerator is stopped while an explicit transaction has AOT
    // writes in flight: further AOT statements fail with -904, and COMMIT
    // rolls back both participants.
    let idaa = system();
    let mut s = open_mixed_txn(&idaa);
    idaa.faults.accel_unavailable.store(true, Ordering::Relaxed);
    assert_eq!(idaa.execute(&mut s, "INSERT INTO A VALUES (2)").unwrap_err().sqlcode(), -904);
    assert_eq!(idaa.execute(&mut s, "SELECT COUNT(*) FROM a").unwrap_err().sqlcode(), -904);
    assert!(!idaa.recover(), "a stopped accelerator cannot recover by probing");
    let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
    assert_eq!(err.sqlcode(), -904);
    // Back online: both sides are clean and the session keeps working.
    idaa.faults.accel_unavailable.store(false, Ordering::Relaxed);
    assert_eq!(count(&idaa, &mut s, "h"), 0);
    assert_eq!(count(&idaa, &mut s, "a"), 0);
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO H VALUES (2)").unwrap();
    idaa.execute(&mut s, "INSERT INTO A VALUES (2)").unwrap();
    idaa.execute(&mut s, "COMMIT").unwrap();
    assert_eq!(count(&idaa, &mut s, "h"), 1);
    assert_eq!(count(&idaa, &mut s, "a"), 1);
}

// ---------------------------------------------------------------------------
// Isolation-anomaly battery through *server* sessions
//
// The same anomalies, but the two transactions are server seats whose
// statements the deterministic workload scheduler interleaves — nothing is
// hand-driven past the submission order. Each probe proves the scheduler
// preserved snapshot isolation and that the traces carry the queue context.
// ---------------------------------------------------------------------------

/// A server over a fresh federation with the anomaly tables committed.
fn anomaly_server() -> idaa::Server {
    let srv = idaa::Server::with_idaa(Idaa::default(), idaa::ServerConfig::default());
    let idaa = srv.idaa();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE ACCOUNTS (ID INT, BAL INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "CREATE TABLE PINNED (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "INSERT INTO ACCOUNTS VALUES (1, 50), (2, 50)").unwrap();
    srv
}

fn seat_balance(srv: &idaa::Server, seat: u64, id: i32) -> i64 {
    srv.query(seat, &format!("SELECT bal FROM accounts WHERE id = {id}"))
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap()
}

#[test]
fn server_sessions_dirty_read_prevented() {
    let srv = anomaly_server();
    let writer = srv.connect(SYSADM).unwrap();
    let reader = srv.connect(SYSADM).unwrap();
    srv.execute(writer, "BEGIN").unwrap();
    srv.execute(writer, "UPDATE ACCOUNTS SET BAL = 0 WHERE ID = 1").unwrap();
    // One batch: the scheduler interleaves more uncommitted writer work
    // with the reader's probe of the already-dirty row — whichever the
    // rotation admits first, the probe must not see the dirty value.
    srv.submit(writer, "UPDATE ACCOUNTS SET BAL = 0 WHERE ID = 2").unwrap();
    srv.submit(reader, "SELECT BAL FROM ACCOUNTS WHERE ID = 1").unwrap();
    let done = srv.run_until_idle();
    assert_eq!(done.len(), 2);
    let probe = done
        .iter()
        .find(|c| c.session == reader)
        .unwrap()
        .result
        .as_ref()
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(probe.scalar().unwrap().as_i64().unwrap(), 50, "no dirty read");
    srv.execute(writer, "ROLLBACK").unwrap();
    assert_eq!(seat_balance(&srv, reader, 1), 50);
    // The interleaved probe ran on the accelerator with queue context.
    let trace = srv.idaa().tracer().last_containing("SELECT BAL FROM ACCOUNTS").unwrap();
    assert_eq!(trace.root.attr("route"), Some("Accelerator"));
    let queue = trace.root.find_all("queue");
    assert_eq!(queue.len(), 1, "{}", trace.root.render());
    assert_eq!(queue[0].attr("seat"), Some("2"));
}

#[test]
fn server_sessions_lost_update_rejected() {
    let srv = anomaly_server();
    let a = srv.connect(SYSADM).unwrap();
    let b = srv.connect(SYSADM).unwrap();
    srv.execute(a, "BEGIN").unwrap();
    srv.execute(b, "BEGIN").unwrap();
    srv.execute(a, "INSERT INTO PINNED VALUES (1)").unwrap();
    srv.execute(b, "INSERT INTO PINNED VALUES (2)").unwrap();
    assert_eq!(seat_balance(&srv, a, 1), 50);
    assert_eq!(seat_balance(&srv, b, 1), 50);
    // Both read-modify-writes in one scheduler batch: first-updater-wins
    // must reject the second regardless of who submitted first in wall
    // time — admission order decides, deterministically.
    srv.submit(a, "UPDATE ACCOUNTS SET BAL = BAL + 10 WHERE ID = 1").unwrap();
    srv.submit(b, "UPDATE ACCOUNTS SET BAL = BAL + 25 WHERE ID = 1").unwrap();
    let done = srv.run_until_idle();
    assert_eq!(done.len(), 2);
    let winner = done.iter().find(|c| c.result.is_ok()).expect("one update applies");
    let loser = done.iter().find(|c| c.result.is_err()).expect("one update rejected");
    assert_eq!(
        loser.result.as_ref().unwrap_err().sqlcode(),
        -913,
        "second updater loses, never silently overwrites"
    );
    assert!(loser.round >= winner.round, "the earlier-admitted update wins");
    srv.execute(winner.session, "COMMIT").unwrap();
    srv.execute(loser.session, "ROLLBACK").unwrap();
    let check = srv.connect(SYSADM).unwrap();
    let expected = if winner.session == a { 60 } else { 75 };
    assert_eq!(seat_balance(&srv, check, 1), expected, "exactly one increment applied");
    // The workload view reconciles: the loser's seat carries the failure.
    let m = srv.idaa().metrics();
    assert_eq!(m.counter(&format!("server.session.{}.failed", loser.session)), 1);
    assert_eq!(m.counter(&format!("server.session.{}.failed", winner.session)), 0);
}

#[test]
fn server_sessions_write_skew_permitted_under_si() {
    let srv = anomaly_server();
    let a = srv.connect(SYSADM).unwrap();
    let b = srv.connect(SYSADM).unwrap();
    srv.execute(a, "BEGIN").unwrap();
    srv.execute(b, "BEGIN").unwrap();
    srv.execute(a, "INSERT INTO PINNED VALUES (1)").unwrap();
    srv.execute(b, "INSERT INTO PINNED VALUES (2)").unwrap();
    let sum = |seat: u64| {
        srv.query(seat, "SELECT SUM(bal) FROM accounts")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap()
    };
    // Both snapshots see the invariant holding…
    assert_eq!(sum(a), 100);
    assert_eq!(sum(b), 100);
    // …and the scheduler interleaves two disjoint-row withdrawals: no
    // first-updater conflict, so snapshot isolation lets both commit.
    srv.submit(a, "UPDATE ACCOUNTS SET BAL = BAL - 50 WHERE ID = 1").unwrap();
    srv.submit(b, "UPDATE ACCOUNTS SET BAL = BAL - 50 WHERE ID = 2").unwrap();
    for c in srv.run_until_idle() {
        c.result.as_ref().unwrap();
    }
    srv.submit(a, "COMMIT").unwrap();
    srv.submit(b, "COMMIT").unwrap();
    for c in srv.run_until_idle() {
        c.result.as_ref().unwrap();
    }
    let check = srv.connect(SYSADM).unwrap();
    assert_eq!(sum(check), 0, "write skew drains both rows — SI permits it");
}

#[test]
fn server_sessions_snapshot_pinned_across_scheduled_batches() {
    // Non-repeatable-read probe where every step flows through the
    // scheduler: the reader's pinned snapshot survives a concurrent
    // committed update executed in a *later* scheduler round.
    let srv = anomaly_server();
    let writer = srv.connect(SYSADM).unwrap();
    let reader = srv.connect(SYSADM).unwrap();
    srv.execute(reader, "BEGIN").unwrap();
    srv.execute(reader, "INSERT INTO PINNED VALUES (0)").unwrap(); // pin snapshot
    assert_eq!(seat_balance(&srv, reader, 1), 50);
    srv.execute(writer, "UPDATE ACCOUNTS SET BAL = 99 WHERE ID = 1").unwrap();
    assert_eq!(seat_balance(&srv, reader, 1), 50, "read repeats under SI");
    srv.execute(reader, "COMMIT").unwrap();
    assert_eq!(seat_balance(&srv, reader, 1), 99, "post-commit the update is visible");
}
