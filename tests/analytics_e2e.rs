//! The in-database analytics framework end-to-end: every deployed
//! procedure invoked through `CALL`, numerical sanity of the results, the
//! AOT model/score tables, and the governance path (privileges checked by
//! DB2 before any accelerator work happens).

use idaa::analytics;
use idaa::{Idaa, Value, SYSADM};

fn system_with_features(n: usize) -> (Idaa, idaa::Session) {
    let idaa = Idaa::default();
    analytics::deploy_all(&idaa, SYSADM).unwrap();
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE DATA (ID INT NOT NULL, X DOUBLE, Y DOUBLE, NOISY DOUBLE, \
         LABEL VARCHAR(8)) IN ACCELERATOR",
    )
    .unwrap();
    let mut vals = Vec::new();
    for i in 0..n {
        // Two clusters: around (0,0) labeled LO, around (10,10) labeled HI.
        let hi = i % 2 == 1;
        let (cx, cy) = if hi { (10.0, 10.0) } else { (0.0, 0.0) };
        let jx = ((i * 53) % 100) as f64 / 100.0 - 0.5;
        let jy = ((i * 31) % 100) as f64 / 100.0 - 0.5;
        let noisy = if i % 10 == 0 { "NULL".to_string() } else { format!("{}.0E0", i % 7) };
        vals.push(format!(
            "({i}, {:.3}E0, {:.3}E0, {}, '{}')",
            cx + jx,
            cy + jy,
            noisy,
            if hi { "HI" } else { "LO" }
        ));
        if vals.len() == 500 {
            idaa.execute(&mut s, &format!("INSERT INTO DATA VALUES {}", vals.join(", ")))
                .unwrap();
            vals.clear();
        }
    }
    if !vals.is_empty() {
        idaa.execute(&mut s, &format!("INSERT INTO DATA VALUES {}", vals.join(", "))).unwrap();
    }
    (idaa, s)
}

#[test]
fn kmeans_train_and_score() {
    let (idaa, mut s) = system_with_features(1000);
    let r = idaa
        .query(&mut s, "CALL ANALYTICS.KMEANS('DATA', 'X,Y', 2, 25, 'KM_MODEL')")
        .unwrap();
    let iterations = r.rows[0][1].as_i64().unwrap();
    assert!(iterations >= 1);
    // Model table: 2 clusters × 2 dims in long format.
    let m = idaa.query(&mut s, "SELECT COUNT(*) FROM km_model").unwrap();
    assert_eq!(m.scalar().unwrap(), &Value::BigInt(4));
    // Centroids near (0,0) and (10,10).
    let c = idaa
        .query(&mut s, "SELECT cluster_id, SUM(center) FROM km_model GROUP BY cluster_id ORDER BY 2")
        .unwrap();
    assert!(c.rows[0][1].as_f64().unwrap().abs() < 1.0);
    assert!((c.rows[1][1].as_f64().unwrap() - 20.0).abs() < 1.0);
    // Scoring separates the halves perfectly.
    idaa.query(&mut s, "CALL ANALYTICS.KMEANS_SCORE('DATA', 'ID', 'X,Y', 'KM_MODEL', 'KM_OUT')")
        .unwrap();
    let r = idaa
        .query(
            &mut s,
            "SELECT d.label, COUNT(DISTINCT o.cluster_id) FROM km_out o \
             INNER JOIN data d ON o.id = d.id GROUP BY d.label",
        )
        .unwrap();
    for row in &r.rows {
        assert_eq!(row[1], Value::BigInt(1), "each label maps to exactly one cluster");
    }
}

#[test]
fn linreg_recovers_plane() {
    let (idaa, mut s) = system_with_features(400);
    // TARGET = 3*X - 2*Y + 5 constructed in SQL on the accelerator.
    idaa.execute(
        &mut s,
        "CREATE TABLE REG (ID INT, X DOUBLE, Y DOUBLE, TARGET DOUBLE) IN ACCELERATOR",
    )
    .unwrap();
    idaa.execute(
        &mut s,
        "INSERT INTO REG SELECT id, x, y, 3.0E0 * x - 2.0E0 * y + 5.0E0 FROM data",
    )
    .unwrap();
    let r = idaa
        .query(&mut s, "CALL ANALYTICS.LINREG('REG', 'TARGET', 'X,Y', 'REG_MODEL')")
        .unwrap();
    let r2 = r.rows[0][0].as_f64().unwrap();
    assert!(r2 > 0.999, "R² = {r2}");
    let coef = idaa
        .query(&mut s, "SELECT term, coefficient FROM reg_model ORDER BY term")
        .unwrap();
    // Terms sorted: INTERCEPT, X, Y.
    assert!((coef.rows[0][1].as_f64().unwrap() - 5.0).abs() < 1e-6);
    assert!((coef.rows[1][1].as_f64().unwrap() - 3.0).abs() < 1e-6);
    assert!((coef.rows[2][1].as_f64().unwrap() + 2.0).abs() < 1e-6);
}

#[test]
fn classifiers_train_and_score_through_sql() {
    let (idaa, mut s) = system_with_features(800);
    idaa.query(&mut s, "CALL ANALYTICS.SPLIT('DATA', 'TR', 'TE', 0.75, 11)").unwrap();
    let tr = idaa.query(&mut s, "SELECT COUNT(*) FROM tr").unwrap();
    assert_eq!(tr.scalar().unwrap(), &Value::BigInt(600));

    // Naive Bayes.
    let r = idaa
        .query(&mut s, "CALL ANALYTICS.NAIVEBAYES_TRAIN('TR', 'LABEL', 'X,Y', 'NB_MODEL')")
        .unwrap();
    assert!(r.rows[0][1].as_f64().unwrap() > 0.99, "NB train accuracy");
    idaa.query(&mut s, "CALL ANALYTICS.NAIVEBAYES_SCORE('TE', 'ID', 'X,Y', 'NB_MODEL', 'NB_OUT')")
        .unwrap();
    let acc = idaa
        .query(
            &mut s,
            "SELECT SUM(CASE WHEN o.class = d.label THEN 1.0E0 ELSE 0.0E0 END) / COUNT(*) \
             FROM nb_out o INNER JOIN data d ON o.id = d.id",
        )
        .unwrap();
    assert!(acc.scalar().unwrap().as_f64().unwrap() > 0.99, "NB holdout accuracy");

    // Decision tree.
    let r = idaa
        .query(&mut s, "CALL ANALYTICS.DECTREE_TRAIN('TR', 'LABEL', 'X,Y', 'DT_MODEL', 4)")
        .unwrap();
    assert!(r.rows[0][1].as_f64().unwrap() > 0.99, "tree train accuracy");
    idaa.query(&mut s, "CALL ANALYTICS.DECTREE_SCORE('TE', 'ID', 'X,Y', 'DT_MODEL', 'DT_OUT')")
        .unwrap();
    let acc = idaa
        .query(
            &mut s,
            "SELECT SUM(CASE WHEN o.class = d.label THEN 1.0E0 ELSE 0.0E0 END) / COUNT(*) \
             FROM dt_out o INNER JOIN data d ON o.id = d.id",
        )
        .unwrap();
    assert!(acc.scalar().unwrap().as_f64().unwrap() > 0.99, "tree holdout accuracy");
}

#[test]
fn describe_and_normalize() {
    let (idaa, mut s) = system_with_features(500);
    idaa.query(&mut s, "CALL ANALYTICS.DESCRIBE('DATA', 'STATS')").unwrap();
    let r = idaa
        .query(&mut s, "SELECT column_name, cnt, nulls FROM stats ORDER BY column_name")
        .unwrap();
    // ID, NOISY, X, Y are numeric.
    assert_eq!(r.len(), 4);
    let noisy = r.rows.iter().find(|row| row[0].render() == "NOISY").unwrap();
    assert_eq!(noisy[2], Value::BigInt(50), "10% NULLs in NOISY");

    let r = idaa
        .query(&mut s, "CALL ANALYTICS.NORMALIZE('DATA', 'X,Y,NOISY', 'MINMAX', 'NORMED')")
        .unwrap();
    assert_eq!(r.rows[0][1], Value::BigInt(50), "imputed NOISY cells");
    let bounds = idaa
        .query(&mut s, "SELECT MIN(x), MAX(x), MIN(noisy), MAX(noisy) FROM normed")
        .unwrap();
    assert_eq!(bounds.rows[0][0].as_f64().unwrap(), 0.0);
    assert_eq!(bounds.rows[0][1].as_f64().unwrap(), 1.0);
    // All rows kept.
    let n = idaa.query(&mut s, "SELECT COUNT(*) FROM normed").unwrap();
    assert_eq!(n.scalar().unwrap(), &Value::BigInt(500));
}

#[test]
fn governance_enforced_end_to_end() {
    let (idaa, mut admin) = system_with_features(100);
    let mut analyst = idaa.session("ANALYST");

    // No EXECUTE on the procedure: rejected at dispatch.
    let err = idaa
        .query(&mut analyst, "CALL ANALYTICS.KMEANS('DATA', 'X,Y', 2, 5, 'M1')")
        .unwrap_err();
    assert_eq!(err.sqlcode(), -551);

    // EXECUTE granted, but no SELECT on the input: rejected by the
    // procedure's own check — still on DB2, before touching the data.
    idaa.execute(&mut admin, "GRANT EXECUTE ON ANALYTICS.KMEANS TO ANALYST").unwrap();
    let err = idaa
        .query(&mut analyst, "CALL ANALYTICS.KMEANS('DATA', 'X,Y', 2, 5, 'M1')")
        .unwrap_err();
    assert_eq!(err.sqlcode(), -551);

    // With SELECT the call succeeds and the output belongs to the analyst.
    idaa.execute(&mut admin, "GRANT SELECT ON DATA TO ANALYST").unwrap();
    idaa.query(&mut analyst, "CALL ANALYTICS.KMEANS('DATA', 'X,Y', 2, 5, 'M1')").unwrap();
    idaa.query(&mut analyst, "SELECT COUNT(*) FROM m1").unwrap();
    // The admin cannot be locked out (SYSADM), but another user can:
    let mut other = idaa.session("OTHER");
    let err = idaa.query(&mut other, "SELECT * FROM m1").unwrap_err();
    assert_eq!(err.sqlcode(), -551);
}

#[test]
fn analytics_rejects_host_only_inputs() {
    let idaa = Idaa::default();
    analytics::deploy_all(&idaa, SYSADM).unwrap();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE HOSTDATA (ID INT, X DOUBLE)").unwrap();
    idaa.execute(&mut s, "INSERT INTO HOSTDATA VALUES (1, 1.0E0), (2, 2.0E0), (3, 3.0E0)")
        .unwrap();
    let err = idaa
        .query(&mut s, "CALL ANALYTICS.KMEANS('HOSTDATA', 'X', 2, 5, 'M')")
        .unwrap_err();
    assert_eq!(err.sqlcode(), -4742, "input must live on the accelerator");
    // After accelerating it, the same call works.
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('HOSTDATA')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('HOSTDATA')").unwrap();
    idaa.query(&mut s, "CALL ANALYTICS.KMEANS('HOSTDATA', 'X', 2, 5, 'M')").unwrap();
}

#[test]
fn model_tables_are_aots_and_feed_next_stages() {
    let (idaa, mut s) = system_with_features(200);
    idaa.query(&mut s, "CALL ANALYTICS.KMEANS('DATA', 'X,Y', 2, 10, 'KM2')").unwrap();
    // The model is an AOT: a catalog proxy with no host storage.
    let meta = idaa.host().table_meta(&idaa::ObjectName::bare("KM2")).unwrap();
    assert_eq!(meta.kind, idaa::host::TableKind::AcceleratorOnly);
    assert_eq!(idaa.host().scan_count(&idaa::ObjectName::bare("KM2")), 0);
    // And it can feed a plain SQL stage.
    idaa.execute(
        &mut s,
        "CREATE TABLE BIG_CLUSTERS (CLUSTER_ID INT) IN ACCELERATOR",
    )
    .unwrap();
    let out = idaa
        .execute(
            &mut s,
            "INSERT INTO BIG_CLUSTERS SELECT DISTINCT cluster_id FROM km2 WHERE cluster_size > 50",
        )
        .unwrap();
    assert!(out.count() >= 1);
}

#[test]
fn procedure_argument_errors() {
    let (idaa, mut s) = system_with_features(50);
    // Wrong arity.
    assert!(idaa.query(&mut s, "CALL ANALYTICS.KMEANS('DATA')").is_err());
    // Non-numeric column.
    assert!(idaa
        .query(&mut s, "CALL ANALYTICS.KMEANS('DATA', 'LABEL', 2, 5, 'M')")
        .is_err());
    // Unknown input table.
    assert_eq!(
        idaa.query(&mut s, "CALL ANALYTICS.KMEANS('NOPE', 'X', 2, 5, 'M')")
            .unwrap_err()
            .sqlcode(),
        -204
    );
    // k larger than the data.
    assert!(idaa
        .query(&mut s, "CALL ANALYTICS.KMEANS('DATA', 'X,Y', 500, 5, 'M')")
        .is_err());
}

#[test]
fn linreg_score_predicts_through_sql() {
    let (idaa, mut s) = system_with_features(300);
    idaa.execute(
        &mut s,
        "CREATE TABLE REG2 (ID INT, X DOUBLE, Y DOUBLE, TARGET DOUBLE) IN ACCELERATOR",
    )
    .unwrap();
    idaa.execute(
        &mut s,
        "INSERT INTO REG2 SELECT id, x, y, 2.0E0 * x + 0.5E0 * y - 1.0E0 FROM data",
    )
    .unwrap();
    idaa.query(&mut s, "CALL ANALYTICS.LINREG('REG2', 'TARGET', 'X,Y', 'RM')").unwrap();
    let r = idaa
        .query(&mut s, "CALL ANALYTICS.LINREG_SCORE('REG2', 'ID', 'X,Y', 'RM', 'PREDS')")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::BigInt(300));
    // Predictions match the constructed target to numerical precision.
    let err = idaa
        .query(
            &mut s,
            "SELECT MAX(ABS(p.prediction - r.target)) FROM preds p \
             INNER JOIN reg2 r ON p.id = r.id",
        )
        .unwrap();
    assert!(err.scalar().unwrap().as_f64().unwrap() < 1e-6);
    // Feature mismatch against the model errors clearly.
    assert!(idaa
        .query(&mut s, "CALL ANALYTICS.LINREG_SCORE('REG2', 'ID', 'X', 'RM', 'P2')")
        .is_err());
}
