//! Concurrency stress tests: many sessions hammering the federated system
//! at once — the paper's §2 requirement that "concurrent execution of
//! multiple queries in a single transaction are also supported" and that
//! correctness holds under interleaving.

use idaa::{Idaa, ObjectName, Value, SYSADM};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_aot_writers_and_readers_stay_consistent() {
    let idaa = Arc::new(Idaa::default());
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE LEDGER (WRITER INT, SEQ INT) IN ACCELERATOR").unwrap();

    const WRITERS: usize = 4;
    const PER_WRITER: usize = 40;
    let anomalies = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // Writers commit in explicit transactions of 4 rows each.
        for w in 0..WRITERS {
            let idaa = Arc::clone(&idaa);
            scope.spawn(move || {
                let mut sess = idaa.session(SYSADM);
                for chunk in 0..(PER_WRITER / 4) {
                    idaa.execute(&mut sess, "BEGIN").unwrap();
                    for i in 0..4 {
                        let seq = chunk * 4 + i;
                        idaa.execute(&mut sess, &format!("INSERT INTO LEDGER VALUES ({w}, {seq})"))
                            .unwrap();
                    }
                    idaa.execute(&mut sess, "COMMIT").unwrap();
                }
            });
        }
        // Readers continuously check that commits are atomic: every
        // writer's visible row count must be a multiple of 4.
        for _ in 0..2 {
            let idaa = Arc::clone(&idaa);
            let anomalies = Arc::clone(&anomalies);
            scope.spawn(move || {
                let mut sess = idaa.session(SYSADM);
                for _ in 0..30 {
                    let r = idaa
                        .query(&mut sess, "SELECT writer, COUNT(*) FROM ledger GROUP BY writer")
                        .unwrap();
                    for row in &r.rows {
                        if row[1].as_i64().unwrap() % 4 != 0 {
                            anomalies.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(anomalies.load(Ordering::Relaxed), 0, "readers saw a partial transaction");
    let r = idaa.query(&mut s, "SELECT COUNT(*) FROM ledger").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt((WRITERS * PER_WRITER) as i64));
}

#[test]
fn loader_and_queries_run_concurrently() {
    use idaa::loader::{EventSource, LoadTarget, Loader};
    let idaa = Arc::new(Idaa::default());
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE FEED (EVENT_ID INT, CUST_ID INT, TOPIC VARCHAR(10), \
         SENTIMENT DOUBLE, POSTED_AT TIMESTAMP) IN ACCELERATOR",
    )
    .unwrap();

    std::thread::scope(|scope| {
        let idaa2 = Arc::clone(&idaa);
        let load = scope.spawn(move || {
            Loader::new(SYSADM)
                .load(
                    &idaa2,
                    Box::new(EventSource::new(30_000, 3)),
                    &ObjectName::bare("FEED"),
                    LoadTarget::AcceleratorDirect,
                )
                .unwrap()
        });
        // Queries run while the load is in flight: counts must be 0 until
        // the single load transaction commits, then exactly 30000.
        let idaa3 = Arc::clone(&idaa);
        let watch = scope.spawn(move || {
            let mut sess = idaa3.session(SYSADM);
            let mut observed = Vec::new();
            for _ in 0..50 {
                let r = idaa3.query(&mut sess, "SELECT COUNT(*) FROM feed").unwrap();
                observed.push(r.scalar().unwrap().as_i64().unwrap());
            }
            observed
        });
        let report = load.join().unwrap();
        assert_eq!(report.rows_loaded, 30_000);
        let observed = watch.join().unwrap();
        assert!(
            observed.iter().all(|&n| n == 0 || n == 30_000),
            "load visibility must be atomic, saw {observed:?}"
        );
    });
    let r = idaa.query(&mut s, "SELECT COUNT(*) FROM feed").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(30_000));
}

#[test]
fn replication_under_concurrent_host_writers_converges() {
    let idaa = Arc::new(Idaa::default());
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE HOT (W INT, N INT)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('HOT')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('HOT')").unwrap();

    std::thread::scope(|scope| {
        for w in 0..4 {
            let idaa = Arc::clone(&idaa);
            scope.spawn(move || {
                let mut sess = idaa.session(SYSADM);
                for n in 0..30 {
                    // Lock contention on the host serializes these; retries
                    // cover occasional -913 timeouts under heavy interleave.
                    loop {
                        match idaa.execute(&mut sess, &format!("INSERT INTO HOT VALUES ({w}, {n})")) {
                            Ok(_) => break,
                            Err(e) if e.sqlcode() == -913 => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            });
        }
    });
    idaa.replicate_now().unwrap();
    let host_rows = idaa.host().scan_all(&ObjectName::bare("HOT")).unwrap().len();
    let accel_rows = idaa.accel().scan_visible(&ObjectName::bare("HOT")).unwrap().len();
    assert_eq!(host_rows, 120);
    assert_eq!(accel_rows, 120, "replica must converge to the host state");
}

#[test]
fn parallel_offloaded_queries_share_the_accelerator() {
    let idaa = Arc::new(Idaa::default());
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE Q (K INT, V INT) IN ACCELERATOR").unwrap();
    let vals: Vec<String> = (0..5000).map(|i| format!("({}, {})", i % 100, i)).collect();
    for chunk in vals.chunks(1000) {
        idaa.execute(&mut s, &format!("INSERT INTO Q VALUES {}", chunk.join(", "))).unwrap();
    }
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let idaa = Arc::clone(&idaa);
            scope.spawn(move || {
                let mut sess = idaa.session(SYSADM);
                for _ in 0..10 {
                    let r = idaa
                        .query(&mut sess, "SELECT COUNT(*), SUM(v) FROM q WHERE k < 50")
                        .unwrap();
                    assert_eq!(r.rows[0][0], Value::BigInt(2500));
                }
            });
        }
    });
}
