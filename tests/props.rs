//! Property-based tests over the core invariants:
//!
//! * the SQL pretty-printer and parser are inverses on random ASTs;
//! * `LIKE` matching agrees with an independent DP oracle;
//! * decimal arithmetic laws;
//! * `Value` ordering/hashing consistency;
//! * zone-map pruning never changes query answers;
//! * host and accelerator engines agree on random data;
//! * random committed DML streams keep the replica convergent;
//! * commit-log replay is idempotent: any restart schedule rebuilds
//!   byte-identical engine state — including under torn-write and bit-rot
//!   schedules, where recovery either converges or fails with the same
//!   deterministic `storage_corrupt` verdict on every attempt.

use idaa::sql::ast::*;
use idaa::sql::{parse_statement, Statement};
use idaa::{DataType, Decimal, FleetConfig, Idaa, IdaaConfig, ObjectName, Value, SYSADM};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_ident() -> impl Strategy<Value = String> {
    // C-prefixed identifiers can never collide with keywords.
    "[C][0-9]{1,3}".prop_map(|s| s)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        (-1_000_000i64..1_000_000).prop_map(Value::BigInt),
        (-1e9f64..1e9)
            .prop_filter("finite", |v| v.is_finite())
            .prop_map(Value::Double),
        (-10_000i64..10_000, 0u8..4).prop_map(|(units, scale)| {
            Value::Decimal(Decimal::new(units as i128, scale))
        }),
        "[a-z ]{0,8}".prop_map(Value::Varchar),
        (-3000i32..30000).prop_map(Value::Date),
    ]
}

fn arb_data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::SmallInt),
        Just(DataType::Integer),
        Just(DataType::BigInt),
        Just(DataType::Double),
        (1u8..18, 0u8..5).prop_map(|(p, s)| DataType::Decimal(p.max(s + 1), s)),
        (1u16..200).prop_map(DataType::Varchar),
        (1u16..20).prop_map(DataType::Char),
        Just(DataType::Date),
        Just(DataType::Timestamp),
        Just(DataType::Boolean),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Literal),
        arb_ident().prop_map(|name| Expr::Column { qualifier: None, name }),
        (arb_ident(), arb_ident())
            .prop_map(|(q, name)| Expr::Column { qualifier: Some(q), name }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinaryOp::Add), Just(BinaryOp::Sub), Just(BinaryOp::Mul),
                Just(BinaryOp::Div), Just(BinaryOp::Mod), Just(BinaryOp::Eq),
                Just(BinaryOp::Neq), Just(BinaryOp::Lt), Just(BinaryOp::LtEq),
                Just(BinaryOp::Gt), Just(BinaryOp::GtEq), Just(BinaryOp::And),
                Just(BinaryOp::Or), Just(BinaryOp::Concat),
            ])
                .prop_map(|(l, r, op)| Expr::Binary {
                    left: Box::new(l),
                    op,
                    right: Box::new(r)
                }),
            // NOT over anything; unary minus only over columns (the parser
            // folds -literal into the literal).
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            arb_ident().prop_map(|name| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::Column { qualifier: None, name })
            }),
            (arb_ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| {
                    // COUNT() would print as COUNT(*); keep generated
                    // functions distinct from the aggregate namespace.
                    Expr::Function { name: format!("F{name}"), args, distinct: false }
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated
                }
            ),
            (inner.clone(), "[a-z%_]{0,6}", any::<bool>()).prop_map(|(e, pat, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(Expr::Literal(Value::Varchar(pat))),
                    negated,
                }
            }),
            (
                proptest::option::of(inner.clone()),
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone())
            )
                .prop_map(|(operand, branches, else_result)| Expr::Case {
                    operand: operand.map(Box::new),
                    branches,
                    else_result: else_result.map(Box::new),
                }),
            (inner, arb_data_type()).prop_map(|(e, data_type)| Expr::Cast {
                expr: Box::new(e),
                data_type
            }),
        ]
    })
}

fn arb_query_block() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        proptest::collection::vec(
            (arb_expr(), proptest::option::of(arb_ident())),
            1..4,
        ),
        proptest::option::of((arb_ident(), proptest::option::of(arb_ident()))),
        proptest::option::of(arb_expr()),
        proptest::collection::vec(arb_expr(), 0..3),
        proptest::option::of(arb_expr()),
        proptest::collection::vec((arb_expr(), any::<bool>()), 0..3),
        proptest::option::of(0u64..1000),
    )
        .prop_map(
            |(distinct, proj, from, filter, group_by, having, order_by, limit)| Query {
                unions: Vec::new(),
                distinct,
                projection: proj
                    .into_iter()
                    .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                    .collect(),
                from: from.map(|(name, alias)| TableRef::Table {
                    name: ObjectName::bare(name),
                    alias,
                }),
                filter,
                group_by,
                having,
                order_by: order_by
                    .into_iter()
                    .map(|(expr, desc)| OrderByItem { expr, desc })
                    .collect(),
                limit,
            },
        )
}

fn arb_query() -> impl Strategy<Value = Query> {
    // Optionally chain UNION blocks (blocks carry no ORDER BY/LIMIT; the
    // outer query's ORDER BY must be output-resolvable, so strip it when a
    // union is attached to keep generated queries plan-valid in shape).
    (
        arb_query_block(),
        proptest::collection::vec((any::<bool>(), arb_query_block()), 0..3),
    )
        .prop_map(|(mut q, unions)| {
            if !unions.is_empty() {
                q.unions = unions
                    .into_iter()
                    .map(|(all, mut b)| {
                        b.order_by = Vec::new();
                        b.limit = None;
                        b.unions = Vec::new();
                        (all, b)
                    })
                    .collect();
                q.order_by = Vec::new();
            }
            q
        })
}

// ---------------------------------------------------------------------------
// Parser round trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn printed_queries_reparse_identically(q in arb_query()) {
        let stmt = Statement::Query(Box::new(q));
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(stmt, reparsed);
    }

    #[test]
    fn printed_dml_reparses(
        table in arb_ident(),
        cols in proptest::collection::vec(arb_ident(), 1..4),
        exprs in proptest::collection::vec(arb_expr(), 1..4),
        filter in proptest::option::of(arb_expr()),
    ) {
        let n = cols.len().min(exprs.len());
        let insert = Statement::Insert {
            table: ObjectName::bare(&table),
            columns: cols[..n].to_vec(),
            source: InsertSource::Values(vec![exprs[..n].to_vec()]),
        };
        let printed = insert.to_string();
        prop_assert_eq!(insert, parse_statement(&printed).unwrap());

        let update = Statement::Update {
            table: ObjectName::bare(&table),
            assignments: cols[..n].iter().cloned().zip(exprs[..n].iter().cloned()).collect(),
            filter: filter.clone(),
        };
        let printed = update.to_string();
        prop_assert_eq!(update, parse_statement(&printed).unwrap());

        let delete = Statement::Delete { table: ObjectName::bare(&table), filter };
        let printed = delete.to_string();
        prop_assert_eq!(delete, parse_statement(&printed).unwrap());
    }

    #[test]
    fn printed_ddl_reparses(
        table in arb_ident(),
        cols in proptest::collection::vec((arb_ident(), arb_data_type(), any::<bool>()), 1..5),
        in_accel in any::<bool>(),
    ) {
        let mut seen = std::collections::HashSet::new();
        let columns: Vec<ColumnSpec> = cols
            .into_iter()
            .filter(|(n, _, _)| seen.insert(n.clone()))
            .map(|(name, data_type, not_null)| ColumnSpec { name, data_type, not_null })
            .collect();
        let dist = if in_accel { vec![columns[0].name.clone()] } else { vec![] };
        let stmt = Statement::CreateTable {
            name: ObjectName::bare(&table),
            columns,
            in_accelerator: in_accel,
            distribute_by: dist,
        };
        let printed = stmt.to_string();
        prop_assert_eq!(stmt, parse_statement(&printed).unwrap());
    }
}

// ---------------------------------------------------------------------------
// LIKE oracle
// ---------------------------------------------------------------------------

/// Independent O(n·m) dynamic-programming LIKE implementation.
fn like_oracle(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => c == t[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[t.len()][p.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn like_agrees_with_oracle(text in "[ab]{0,8}", pattern in "[ab%_]{0,6}") {
        prop_assert_eq!(
            idaa::sql::eval::like_match(&text, &pattern),
            like_oracle(&text, &pattern),
            "text={:?} pattern={:?}", text, pattern
        );
    }
}

// ---------------------------------------------------------------------------
// Decimal laws
// ---------------------------------------------------------------------------

fn arb_decimal() -> impl Strategy<Value = Decimal> {
    (-1_000_000i64..1_000_000, 0u8..6).prop_map(|(u, s)| Decimal::new(u as i128, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decimal_display_parse_roundtrip(d in arb_decimal()) {
        let printed = d.to_string();
        let back = Decimal::parse(&printed).unwrap();
        prop_assert_eq!(d.compare(&back), std::cmp::Ordering::Equal);
        prop_assert_eq!(back.to_string(), printed);
    }

    #[test]
    fn decimal_addition_commutes_and_sub_inverts(a in arb_decimal(), b in arb_decimal()) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.compare(&ba), std::cmp::Ordering::Equal);
        let back = ab.sub(&b).unwrap();
        prop_assert_eq!(back.compare(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn decimal_order_matches_f64(a in arb_decimal(), b in arb_decimal()) {
        // Within these magnitudes f64 is exact enough to be an oracle.
        let expect = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
        prop_assert_eq!(a.compare(&b), expect);
    }

    #[test]
    fn value_group_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        if a.group_eq(&b) {
            prop_assert_eq!(h(&a), h(&b), "equal values must hash equally: {} vs {}", a, b);
        }
    }

    #[test]
    fn value_total_order_is_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn value_total_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let (ab, bc, ac) = (a.cmp_total(&b), b.cmp_total(&c), a.cmp_total(&c));
        if ab != Greater && bc != Greater {
            prop_assert_ne!(ac, Greater, "a={} b={} c={}", a, b, c);
        }
    }
}

// ---------------------------------------------------------------------------
// Zone maps and engine equivalence
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn zone_map_pruning_never_changes_answers(
        rows in proptest::collection::vec((-5000i64..5000, -100i64..100), 100..400),
        threshold in -5000i64..5000,
    ) {
        use idaa::accel::{AccelConfig, AccelEngine};
        use idaa::common::{ColumnDef, Schema};
        let schema = Schema::new(vec![
            ColumnDef::new("A", DataType::BigInt),
            ColumnDef::new("B", DataType::BigInt),
        ]).unwrap();
        let data: Vec<idaa::Row> = rows
            .iter()
            .map(|(a, b)| vec![Value::BigInt(*a), Value::BigInt(*b)])
            .collect();
        let mut results = Vec::new();
        for zone_maps in [true, false] {
            let engine = AccelEngine::new("APP", AccelConfig { slices: 2, zone_maps, parallel: false, parallelism: 0 });
            engine.create_table(&ObjectName::bare("T"), schema.clone(), &[]).unwrap();
            engine.load_committed(&ObjectName::bare("T"), data.clone()).unwrap();
            let Statement::Query(q) = parse_statement(
                &format!("SELECT COUNT(*), SUM(b) FROM t WHERE a < {threshold}")
            ).unwrap() else { unreachable!() };
            results.push(engine.query(0, &q).unwrap().rows);
        }
        prop_assert_eq!(&results[0], &results[1]);
    }

    #[test]
    fn engines_agree_on_random_data(
        rows in proptest::collection::vec(
            (0i64..1000, 0i64..50, "[a-c]{1}"),
            50..200,
        ),
    ) {
        let idaa = Idaa::default();
        let mut s = idaa.session(SYSADM);
        idaa.execute(&mut s, "CREATE TABLE T (A BIGINT, B BIGINT, G VARCHAR(2))").unwrap();
        let vals: Vec<String> = rows
            .iter()
            .map(|(a, b, g)| format!("({a}, {b}, '{g}')"))
            .collect();
        for chunk in vals.chunks(200) {
            idaa.execute(&mut s, &format!("INSERT INTO T VALUES {}", chunk.join(", "))).unwrap();
        }
        // A few NULL-bearing rows so IS [NOT] NULL predicates and NULL-
        // skipping aggregates have something to disagree about.
        idaa.execute(
            &mut s,
            "INSERT INTO T VALUES (1, NULL, NULL), (NULL, 5, 'a'), (500, NULL, 'b'), (NULL, NULL, NULL)",
        ).unwrap();
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('T')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();
        for q in [
            "SELECT COUNT(*) FROM t WHERE a BETWEEN 100 AND 700",
            "SELECT g, COUNT(*), SUM(a), MIN(b), MAX(b) FROM t GROUP BY g ORDER BY g",
            "SELECT a, b FROM t WHERE b = 7 ORDER BY a, b",
            "SELECT COUNT(DISTINCT b) FROM t WHERE g <> 'a'",
            "SELECT a FROM t WHERE g = 'a' UNION SELECT b FROM t WHERE g = 'b' ORDER BY 1",
            "SELECT a FROM t UNION ALL SELECT a FROM t ORDER BY 1 LIMIT 50",
            // Join-heavy: equi self-join with single-sided WHERE conjuncts
            // (exercises the filter-below-join rewrite on both executors).
            "SELECT x.a, y.b FROM t AS x INNER JOIN t AS y ON x.a = y.a \
             WHERE x.g = 'a' AND y.b < 25 ORDER BY x.a, y.b",
            "SELECT x.g, COUNT(*) FROM t AS x LEFT JOIN t AS y ON x.b = y.a \
             GROUP BY x.g ORDER BY x.g",
            "SELECT x.a, y.a FROM t AS x INNER JOIN t AS y ON x.b = y.b AND x.g = y.g \
             WHERE x.a < y.a ORDER BY x.a, y.a LIMIT 40",
            "SELECT a + b, g FROM t WHERE a + b > 500 ORDER BY 1, 2 LIMIT 30",
            "SELECT b, MAX(a) FROM t WHERE g BETWEEN 'a' AND 'b' GROUP BY b \
             HAVING MAX(a) > 100 ORDER BY b",
            "SELECT x.g, SUM(y.b) FROM t AS x INNER JOIN t AS y ON x.a = y.a \
             GROUP BY x.g ORDER BY x.g",
            // Vectorized-kernel shapes: IS [NOT] NULL, string inequality,
            // multi-conjunct numeric ranges, and agg-over-filtered-scan.
            "SELECT COUNT(*) FROM t WHERE b IS NULL",
            "SELECT a, b FROM t WHERE b IS NOT NULL AND g IS NULL ORDER BY a, b",
            "SELECT a, g FROM t WHERE g <> 'b' ORDER BY a, g LIMIT 40",
            "SELECT COUNT(*), MIN(a), MAX(a) FROM t WHERE a NOT BETWEEN 200 AND 800",
            "SELECT g, COUNT(*), SUM(b) FROM t \
             WHERE a BETWEEN 50 AND 950 AND b BETWEEN 5 AND 45 GROUP BY g ORDER BY g",
            "SELECT COUNT(*), SUM(a) FROM t \
             WHERE a >= 100 AND a < 900 AND b <> 13 AND g IS NOT NULL",
            // Typed string-key joins (dictionary-code probes on the
            // accelerator) and string-key join under aggregation.
            "SELECT x.a, y.b FROM t AS x INNER JOIN t AS y ON x.g = y.g \
             WHERE x.a < 100 AND y.b < 10 ORDER BY x.a, y.b LIMIT 60",
            "SELECT x.g, SUM(y.a) FROM t AS x INNER JOIN t AS y ON x.g = y.g \
             GROUP BY x.g ORDER BY x.g",
            // LEFT join with string keys: NULL G rows must null-extend
            // identically on both engines.
            "SELECT x.a, y.a FROM t AS x LEFT JOIN t AS y ON x.g = y.g \
             WHERE x.a > 900 ORDER BY x.a, y.a LIMIT 60",
        ] {
            idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
            let host = idaa.query(&mut s, q).unwrap();
            idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
            let accel = idaa.query(&mut s, q).unwrap();
            prop_assert_eq!(host.rows, accel.rows, "disagreement on {}", q);
        }
    }

    /// Every statement trace is structurally well formed (well nested,
    /// monotone virtual timestamps, children contained in parents), and two
    /// runs of the same workload on fresh systems render byte-identical
    /// span trees — the trace layer is as deterministic as the link it
    /// observes.
    #[test]
    fn traces_are_well_formed_and_deterministic(
        rows in proptest::collection::vec(
            (0i64..1000, 0i64..50, "[a-c]{1}"),
            40..120,
        ),
    ) {
        let run = |rows: &[(i64, i64, String)]| -> Vec<idaa::StatementTrace> {
            let idaa = Idaa::default();
            let mut s = idaa.session(SYSADM);
            idaa.execute(&mut s, "CREATE TABLE T (A BIGINT, B BIGINT, G VARCHAR(2))").unwrap();
            let vals: Vec<String> = rows
                .iter()
                .map(|(a, b, g)| format!("({a}, {b}, '{g}')"))
                .collect();
            idaa.execute(&mut s, &format!("INSERT INTO T VALUES {}", vals.join(", "))).unwrap();
            idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('T')").unwrap();
            idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();
            idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
            idaa.execute(&mut s, "CREATE TABLE STAGE (G VARCHAR(2), N BIGINT) IN ACCELERATOR")
                .unwrap();
            idaa.execute(
                &mut s,
                "INSERT INTO STAGE SELECT g, COUNT(*) FROM T GROUP BY g",
            ).unwrap();
            idaa.query(&mut s, "SELECT g, COUNT(*), SUM(a) FROM t GROUP BY g ORDER BY g").unwrap();
            idaa.query(&mut s, "SELECT g, n FROM stage ORDER BY g").unwrap();
            // An error-path statement must leave a well-formed trace too.
            let _ = idaa.query(&mut s, "SELECT nope FROM t");
            idaa.tracer().statements()
        };
        let first = run(&rows);
        let second = run(&rows);
        prop_assert!(!first.is_empty());
        for trace in first.iter().chain(second.iter()) {
            if let Err(e) = trace.root.validate() {
                prop_assert!(false, "malformed trace: {}", e);
            }
            // Timestamps come from the virtual clock and only move forward.
            let mut spans = vec![&trace.root];
            while let Some(span) = spans.pop() {
                prop_assert!(span.start <= span.end);
                spans.extend(span.children.iter());
            }
        }
        // Session ids are process-global, so compare the session-free
        // span-tree renderings across instances.
        let render = |traces: &[idaa::StatementTrace]| -> String {
            traces.iter().map(|t| t.root.render()).collect::<Vec<_>>().join("\n")
        };
        prop_assert_eq!(
            render(&first),
            render(&second),
            "same workload must render identical traces"
        );
    }

    #[test]
    fn parallel_and_serial_accel_agree(
        rows in proptest::collection::vec((0i64..200, 0i64..40), 100..300),
    ) {
        use idaa::accel::{AccelConfig, AccelEngine};
        use idaa::common::{ColumnDef, Schema};
        // All-integer data: every operator is exact, so parallel execution
        // must reproduce the serial answers bit for bit — including row
        // order for sorts and top-K (stable merges, fixed partition order).
        let schema = Schema::new(vec![
            ColumnDef::new("A", DataType::BigInt),
            ColumnDef::new("B", DataType::BigInt),
        ]).unwrap();
        let data: Vec<idaa::Row> = rows
            .iter()
            .map(|(a, b)| vec![Value::BigInt(*a), Value::BigInt(*b)])
            .collect();
        let canon = |mut rows: Vec<idaa::Row>| {
            rows.sort_by(|a, b| {
                a.iter().zip(b).map(|(x, y)| x.cmp_total(y))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            rows
        };
        let run = |parallelism: usize| -> Vec<(bool, Vec<idaa::Row>)> {
            let config = if parallelism == 0 {
                AccelConfig { slices: 4, zone_maps: true, parallel: false, parallelism: 0 }
            } else {
                AccelConfig { slices: 4, zone_maps: true, parallel: true, parallelism }
            };
            let engine = AccelEngine::new("APP", config);
            engine.create_table(&ObjectName::bare("T"), schema.clone(), &[]).unwrap();
            engine.load_committed(&ObjectName::bare("T"), data.clone()).unwrap();
            // (order_sensitive, query): sorts and top-K must agree on exact
            // row order; join/aggregate outputs agree as multisets (their
            // concatenation order legitimately varies with partition count).
            [
                (false, "SELECT x.a, y.b FROM t AS x INNER JOIN t AS y ON x.a = y.a \
                         WHERE y.b < 20"),
                (false, "SELECT x.a, y.b FROM t AS x LEFT JOIN t AS y ON x.a = y.a \
                         AND y.b > 30"),
                (false, "SELECT x.a, y.a FROM t AS x INNER JOIN t AS y ON x.b = y.b \
                         WHERE x.a < y.a"),
                (false, "SELECT b, COUNT(*), SUM(a), MIN(a), MAX(a) FROM t GROUP BY b"),
                (false, "SELECT COUNT(DISTINCT a), SUM(b) FROM t"),
                (true,  "SELECT a, b FROM t ORDER BY a DESC, b"),
                (true,  "SELECT a, b FROM t ORDER BY b, a LIMIT 17"),
                // Vectorized-kernel shapes across worker counts: ranges,
                // NOT BETWEEN, IS [NOT] NULL, fused agg over filtered scan.
                (false, "SELECT COUNT(*), SUM(a), MIN(b), MAX(b) FROM t \
                         WHERE a BETWEEN 40 AND 160 AND b BETWEEN 5 AND 35"),
                (false, "SELECT b, COUNT(*), SUM(a) FROM t \
                         WHERE a NOT BETWEEN 60 AND 140 GROUP BY b"),
                (false, "SELECT COUNT(*) FROM t WHERE a IS NULL"),
                (true,  "SELECT a, b FROM t \
                         WHERE a IS NOT NULL AND b >= 10 AND b <= 30 AND a <> 77 \
                         ORDER BY a, b"),
            ]
            .into_iter()
            .map(|(ordered, q)| {
                let Statement::Query(q) = parse_statement(q).unwrap() else { unreachable!() };
                (ordered, engine.query(0, &q).unwrap().rows)
            })
            .collect()
        };
        let serial = run(0);
        for workers in [1usize, 2, 4, 8] {
            let parallel = run(workers);
            for (i, ((ordered, s), (_, p))) in serial.iter().zip(&parallel).enumerate() {
                if *ordered {
                    prop_assert_eq!(s, p, "query #{} order mismatch at workers={}", i, workers);
                } else {
                    prop_assert_eq!(
                        canon(s.clone()), canon(p.clone()),
                        "query #{} multiset mismatch at workers={}", i, workers
                    );
                }
            }
        }
    }

    /// The vectorized batch pipeline is an optimization, never a semantic
    /// change: for every generated query — including shapes that bail out
    /// of kernel compilation, like a literal at 2^53 + 1 — forcing the
    /// row-at-a-time interpreter produces identical rows. Data is chosen
    /// exactness-safe (integers, dyadic doubles, dictionary strings, real
    /// NULLs) so "identical" means bit-for-bit equality, not approximately.
    #[test]
    fn vectorized_and_interpreted_agree(
        rows in proptest::collection::vec(
            (
                proptest::option::of(0i64..1000),
                proptest::option::of(0i64..80),
                proptest::option::of(0usize..3),
            ),
            100..300,
        ),
    ) {
        use idaa::accel::{AccelConfig, AccelEngine, ExecMode};
        use idaa::common::{ColumnDef, Schema};
        let schema = Schema::new(vec![
            ColumnDef::new("A", DataType::BigInt),
            ColumnDef::new("D", DataType::Double),
            ColumnDef::new("G", DataType::Varchar(2)),
        ]).unwrap();
        // Dyadic doubles (multiples of 0.25) so every comparison and SUM is
        // exact in both the f64 kernel path and the interpreter.
        let data: Vec<idaa::Row> = rows
            .iter()
            .map(|(a, d, g)| vec![
                a.map_or(Value::Null, Value::BigInt),
                d.map_or(Value::Null, |v| Value::Double(v as f64 * 0.25)),
                g.map_or(Value::Null, |i| Value::Varchar(["a", "b", "c"][i].into())),
            ])
            .collect();
        let engine = AccelEngine::new(
            "APP",
            AccelConfig { slices: 3, zone_maps: true, parallel: false, parallelism: 0 },
        );
        engine.create_table(&ObjectName::bare("T"), schema, &[]).unwrap();
        engine.load_committed(&ObjectName::bare("T"), data).unwrap();
        for q in [
            // Fused scan-filter-aggregate over an i64 range kernel.
            "SELECT COUNT(*), SUM(a), MIN(a), MAX(a) FROM t WHERE a BETWEEN 100 AND 700",
            // f64 comparison kernels plus projection.
            "SELECT a, d FROM t WHERE d >= 2.5 AND d < 10.25 ORDER BY a, d",
            // Negated range kernel.
            "SELECT COUNT(*) FROM t WHERE a NOT BETWEEN 200 AND 800",
            // Dictionary-code inequality + grouped fused aggregation.
            "SELECT g, COUNT(*), MIN(d), MAX(d) FROM t WHERE g <> 'b' GROUP BY g ORDER BY g",
            // Null-bitmap kernels, both polarities.
            "SELECT COUNT(*) FROM t WHERE d IS NULL",
            "SELECT a FROM t WHERE g IS NOT NULL AND a >= 50 ORDER BY a LIMIT 30",
            // Mixed kernel + interpreted residual (arithmetic conjunct).
            "SELECT a, d FROM t WHERE a BETWEEN 50 AND 900 AND a + a > 300 ORDER BY a, d",
            // 2^53 + 1 literal: kernel compilation must bail out (the f64
            // image collides with 2^53), leaving the interpreter's exact
            // i64 comparison in charge on both paths.
            "SELECT COUNT(*) FROM t WHERE a < 9007199254740993",
            // AVG: both modes accumulate in ascending row order, so the
            // float division input is identical.
            "SELECT COUNT(*), AVG(d) FROM t WHERE a >= 100 AND a <= 900",
            // Join shapes: typed i64 keys with a derived probe filter and
            // late-materialized probe scan vs the interpreted hash join.
            "SELECT x.a, y.d FROM t AS x INNER JOIN t AS y ON x.a = y.a \
             WHERE y.d < 5.0 ORDER BY x.a, y.d LIMIT 60",
            // Typed string keys: dictionary-code probe + NULL keys never
            // matching on either path.
            "SELECT x.a, y.a FROM t AS x INNER JOIN t AS y ON x.g = y.g \
             WHERE x.a < 100 AND y.a < 100 ORDER BY x.a, y.a",
            // LEFT join: Bloom skips must still null-extend, bit for bit.
            "SELECT x.a, y.d FROM t AS x LEFT JOIN t AS y ON x.a = y.a \
             AND y.d > 15.0 ORDER BY x.a, y.d LIMIT 60",
            // Join under aggregation (fused downstream of the join).
            "SELECT x.g, COUNT(*), SUM(y.a) FROM t AS x INNER JOIN t AS y \
             ON x.a = y.a GROUP BY x.g ORDER BY x.g",
            // Multi-key ON falls back to generic keys on both paths.
            "SELECT COUNT(*) FROM t AS x INNER JOIN t AS y \
             ON x.a = y.a AND x.g = y.g",
        ] {
            let Statement::Query(parsed) = parse_statement(q).unwrap() else { unreachable!() };
            let fast = engine.query(0, &parsed).unwrap().rows;
            let slow = engine
                .query_with_mode(0, &parsed, ExecMode::Interpreted)
                .unwrap()
                .rows;
            prop_assert_eq!(fast, slow, "mode disagreement on {}", q);
        }
    }

    #[test]
    fn replication_converges_on_random_streams(
        ops in proptest::collection::vec((0u8..10, 0i64..30, -50i64..50), 10..60),
        batch in prop_oneof![Just(1usize), Just(7), Just(64)],
    ) {
        let idaa = Idaa::new(idaa::IdaaConfig { replication_batch: batch, ..Default::default() });
        let mut s = idaa.session(SYSADM);
        idaa.execute(&mut s, "CREATE TABLE T (K BIGINT, V BIGINT)").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('T')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();
        for (op, k, v) in ops {
            match op {
                0..=5 => {
                    idaa.execute(&mut s, &format!("INSERT INTO T VALUES ({k}, {v})")).unwrap();
                }
                6..=7 => {
                    idaa.execute(&mut s, &format!("UPDATE T SET V = {v} WHERE K = {k}")).unwrap();
                }
                _ => {
                    idaa.execute(&mut s, &format!("DELETE FROM T WHERE K = {k}")).unwrap();
                }
            }
        }
        idaa.replicate_now().unwrap();
        let sort = |mut rows: Vec<idaa::Row>| {
            rows.sort_by(|a, b| {
                a.iter().zip(b).map(|(x, y)| x.cmp_total(y))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            rows
        };
        let host_rows = sort(idaa.host().scan_all(&ObjectName::bare("T")).unwrap());
        let accel_rows = sort(idaa.accel().scan_visible(&ObjectName::bare("T")).unwrap());
        prop_assert_eq!(host_rows, accel_rows);
    }
}

// ---------------------------------------------------------------------------
// Crash recovery: commit-log replay is idempotent
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random committed/aborted DML stream with checkpoints sprinkled in,
    /// then every restart schedule — replay the tail once, replay it again
    /// (double restart), and optionally fold the whole log into a fresh
    /// checkpoint between restarts (re-chunking the same history into a
    /// different checkpoint/tail split) — rebuilds byte-identical state.
    #[test]
    fn commit_log_replay_is_idempotent(
        ops in proptest::collection::vec((0u8..10, 0i64..40, -100i64..100), 10..50),
        checkpoint_between in any::<bool>(),
    ) {
        use idaa::accel::{AccelConfig, AccelEngine};
        use idaa::common::{ColumnDef, Schema};
        use idaa::sql::ast::{BinaryOp, Expr};
        use std::time::Duration;

        let engine = AccelEngine::new(
            "APP",
            AccelConfig { slices: 3, zone_maps: true, parallel: false, parallelism: 0 },
        );
        let t = ObjectName::bare("T");
        let schema = Schema::new(vec![
            ColumnDef::new("K", DataType::BigInt),
            ColumnDef::new("V", DataType::BigInt),
        ]).unwrap();
        engine.create_table(&t, schema, &[]).unwrap();
        let key_eq = |k: i64| Expr::Binary {
            left: Box::new(Expr::Column { qualifier: None, name: "K".into() }),
            op: BinaryOp::Eq,
            right: Box::new(Expr::Literal(Value::BigInt(k))),
        };
        let mut txn = 100u64;
        for (i, (op, k, v)) in ops.iter().enumerate() {
            txn += 1;
            let row = vec![Value::BigInt(*k), Value::BigInt(*v)];
            match op {
                0..=4 => {
                    engine.begin(txn);
                    engine.insert_rows(txn, &t, vec![row]).unwrap();
                    engine.commit(txn);
                }
                5..=6 => {
                    engine.begin(txn);
                    engine.update_where(
                        txn,
                        &t,
                        &[("V".to_string(), Expr::Literal(Value::BigInt(*v)))],
                        Some(&key_eq(*k)),
                    ).unwrap();
                    engine.commit(txn);
                }
                7 => {
                    engine.begin(txn);
                    engine.delete_where(txn, &t, Some(&key_eq(*k))).unwrap();
                    engine.commit(txn);
                }
                8 => {
                    // Aborted work: its effects must never reappear after
                    // any replay.
                    engine.begin(txn);
                    engine.insert_rows(txn, &t, vec![row]).unwrap();
                    engine.abort(txn);
                }
                _ => {
                    engine.groom(&t).unwrap();
                }
            }
            // Mid-stream checkpoints exercise checkpoint-plus-tail replay.
            if i % 13 == 7 {
                engine.checkpoint(Duration::from_millis(i as u64)).unwrap();
            }
        }
        let fp_live = engine.state_fingerprint();
        let rows_live = engine.scan_visible(&t).unwrap();

        engine.crash();
        engine.restart().unwrap();
        prop_assert_eq!(engine.state_fingerprint(), fp_live, "first replay diverged");
        prop_assert_eq!(&engine.scan_visible(&t).unwrap(), &rows_live);

        if checkpoint_between {
            engine.checkpoint(Duration::from_secs(1)).unwrap();
        }
        engine.crash();
        engine.restart().unwrap();
        prop_assert_eq!(engine.state_fingerprint(), fp_live, "second replay diverged");
        prop_assert_eq!(&engine.scan_visible(&t).unwrap(), &rows_live);
    }

    /// The same idempotency contract under storage faults: a torn log
    /// append and a bit-rotted log record are armed at random points in
    /// the stream. Torn tails self-heal (truncate + durably re-log), so
    /// every restart schedule still rebuilds byte-identical state; rot
    /// either gets excised by a covering checkpoint (replay converges) or
    /// surfaces as a *deterministic* `storage_corrupt` on every restart
    /// attempt — never a silently divergent fingerprint.
    #[test]
    fn commit_log_replay_is_idempotent_under_storage_faults(
        ops in proptest::collection::vec((0u8..10, 0i64..40, -100i64..100), 10..50),
        checkpoint_between in any::<bool>(),
        tear_at in 0usize..40,
        rot_at in 0usize..40,
    ) {
        use idaa::accel::{AccelConfig, AccelEngine};
        use idaa::common::{ColumnDef, Schema};
        use idaa::netsim::sites;
        use idaa::sql::ast::{BinaryOp, Expr};
        use std::time::Duration;

        let engine = AccelEngine::new(
            "APP",
            AccelConfig { slices: 3, zone_maps: true, parallel: false, parallelism: 0 },
        );
        let t = ObjectName::bare("T");
        let schema = Schema::new(vec![
            ColumnDef::new("K", DataType::BigInt),
            ColumnDef::new("V", DataType::BigInt),
        ]).unwrap();
        engine.create_table(&t, schema, &[]).unwrap();
        let key_eq = |k: i64| Expr::Binary {
            left: Box::new(Expr::Column { qualifier: None, name: "K".into() }),
            op: BinaryOp::Eq,
            right: Box::new(Expr::Literal(Value::BigInt(k))),
        };
        // Both restart attempts after a corruption verdict must agree: the
        // error is a property of the media, not of the retry schedule.
        let corrupt_stays_corrupt = |e: &idaa::Error| {
            assert_eq!(e.kind(), "storage_corrupt", "unexpected restart error: {e}");
            let again = engine.restart().expect_err("corrupt media cannot heal by retrying");
            assert_eq!(again.kind(), "storage_corrupt", "verdict changed: {again}");
        };
        let mut corrupted = false;
        for (i, (op, k, v)) in ops.iter().enumerate() {
            if i == tear_at {
                engine.fault_registry().arm(sites::TORN_LOG_APPEND, 1);
            }
            if i == rot_at {
                engine.fault_registry().arm(sites::BITROT_LOG_SEGMENT, 1);
            }
            let txn = 101 + i as u64;
            let row = vec![Value::BigInt(*k), Value::BigInt(*v)];
            let attempt: idaa::Result<()> = (|| {
                match op {
                    0..=4 => {
                        engine.begin(txn);
                        engine.insert_rows(txn, &t, vec![row.clone()])?;
                        engine.commit(txn);
                    }
                    5..=6 => {
                        engine.begin(txn);
                        engine.update_where(
                            txn,
                            &t,
                            &[("V".to_string(), Expr::Literal(Value::BigInt(*v)))],
                            Some(&key_eq(*k)),
                        )?;
                        engine.commit(txn);
                    }
                    7 => {
                        engine.begin(txn);
                        engine.delete_where(txn, &t, Some(&key_eq(*k)))?;
                        engine.commit(txn);
                    }
                    8 => {
                        engine.begin(txn);
                        engine.insert_rows(txn, &t, vec![row.clone()])?;
                        engine.abort(txn);
                    }
                    _ => {
                        engine.groom(&t)?;
                    }
                }
                Ok(())
            })();
            if let Err(e) = attempt {
                // The armed torn write crashed the engine mid-append; the
                // restart must truncate the torn tail and re-log the
                // truncation — unless earlier rot sits in the replay tail,
                // in which case the failure is deterministic.
                prop_assert_eq!(e.sqlcode(), -904, "torn append must surface -904: {}", e);
                prop_assert!(engine.is_crashed(), "a torn append must crash the engine");
                if let Err(e) = engine.restart() {
                    corrupt_stays_corrupt(&e);
                    corrupted = true;
                    break;
                }
            }
            if i % 13 == 7 {
                engine.checkpoint(Duration::from_millis(i as u64)).unwrap();
            }
        }
        if !corrupted {
            let fp_live = engine.state_fingerprint();
            let rows_live = engine.scan_visible(&t).unwrap();

            engine.crash();
            match engine.restart() {
                Err(e) => corrupt_stays_corrupt(&e),
                Ok(_) => {
                    prop_assert_eq!(
                        engine.state_fingerprint(), fp_live, "first faulted replay diverged"
                    );
                    prop_assert_eq!(&engine.scan_visible(&t).unwrap(), &rows_live);

                    if checkpoint_between {
                        engine.checkpoint(Duration::from_secs(1)).unwrap();
                    }
                    engine.crash();
                    engine.restart().unwrap();
                    prop_assert_eq!(
                        engine.state_fingerprint(), fp_live, "second faulted replay diverged"
                    );
                    prop_assert_eq!(&engine.scan_visible(&t).unwrap(), &rows_live);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec: encode -> decode round-trips arbitrary batches losslessly
// ---------------------------------------------------------------------------

/// Deterministic cell for column type `dt` from the raw 64-bit draw `x`:
/// NULL one time in five, otherwise a full-range typed value (negative
/// ints, empty strings, decimals with scale all reachable).
fn wire_cell(dt: DataType, x: u64) -> Value {
    if x.is_multiple_of(5) {
        return Value::Null;
    }
    let text = |mut bits: u64| {
        let len = (bits % 9) as usize;
        let mut s = String::new();
        for _ in 0..len {
            s.push((b'a' + (bits % 26) as u8) as char);
            bits /= 26;
        }
        s
    };
    match dt {
        DataType::Boolean => Value::Boolean(x & 1 == 1),
        DataType::SmallInt => Value::SmallInt(x as i16),
        DataType::Integer => Value::Int(x as i32),
        DataType::BigInt => Value::BigInt(x as i64),
        DataType::Double => Value::Double((x as i64 >> 11) as f64 * 0.25),
        DataType::Decimal(_, s) => Value::Decimal(Decimal::new((x as i64 >> 20) as i128, s)),
        DataType::Varchar(_) | DataType::Char(_) => Value::Varchar(text(x >> 8)),
        DataType::Date => Value::Date(x as i32 % 1_000_000),
        DataType::Timestamp => Value::Timestamp(x as i64 >> 4),
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn wire_frames_roundtrip(
        types in proptest::collection::vec(arb_data_type(), 1..6),
        n in 0usize..60,
        seed in any::<u64>(),
    ) {
        use idaa::common::{wire, ColumnDef};
        let schema = idaa::Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, dt)| ColumnDef::new(format!("C{i}"), *dt))
                .collect(),
        )
        .unwrap();
        let mut st = seed;
        let rows: Vec<idaa::Row> = (0..n)
            .map(|_| types.iter().map(|dt| wire_cell(*dt, splitmix(&mut st))).collect())
            .collect();

        // Chunked framing round-trips the batch losslessly, exact variants
        // included, and every frame passes its checksum and carries the
        // batch's logical size split across frames.
        let frames = wire::encode_frames(&schema, &rows);
        prop_assert!(!frames.is_empty());
        let mut decoded = Vec::new();
        let mut logical = 0u64;
        for f in &frames {
            prop_assert!(wire::verify(f));
            logical += wire::frame_logical_len(f).unwrap();
            decoded.extend(wire::decode_rows(f, &schema).unwrap());
        }
        prop_assert_eq!(&decoded, &rows);
        prop_assert_eq!(logical, wire::logical_size(&rows) as u64);

        // Encoding is a pure function of (schema, rows).
        prop_assert_eq!(&frames, &wire::encode_frames(&schema, &rows));
    }
}

// ---------------------------------------------------------------------------
// Fleet: scatter/gather over sharded AOTs reproduces the single-accelerator
// answer for any topology
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A K-node fleet with hash-sharded AOT placement and any replication
    /// factor answers every query exactly like a single accelerator: shard
    /// placement is value-deterministic, per-shard partials merge in fixed
    /// shard order, and non-mergeable shapes fall back to a raw gather —
    /// so topology is invisible to results (modulo float summation order,
    /// which these integer queries avoid).
    #[test]
    fn fleet_and_single_accel_agree(
        rows in proptest::collection::vec(
            (0i64..1000, 0i64..50, "[a-c]{1}"),
            30..120,
        ),
        shards in 1usize..=4,
        accelerators in 1usize..=3,
        replicas in 1usize..=2,
    ) {
        let queries = [
            "SELECT COUNT(*) FROM f",
            "SELECT g, COUNT(*), SUM(a), MIN(b), MAX(b) FROM f GROUP BY g ORDER BY g",
            "SELECT COUNT(*), MIN(a), MAX(a) FROM f WHERE a BETWEEN 100 AND 700",
            "SELECT a, b FROM f WHERE b = 7 ORDER BY a, b",
            "SELECT a, b, g FROM f ORDER BY a DESC, b, g LIMIT 10",
            "SELECT AVG(b) FROM f WHERE g = 'a'",
            "SELECT COUNT(DISTINCT b) FROM f",
            "SELECT x.g, COUNT(*) FROM f AS x INNER JOIN f AS y ON x.a = y.a \
             GROUP BY x.g ORDER BY x.g",
            // Sharded probe ⋈ replicated build: the fleet ships a build-side
            // key summary with each gather (Bloom pushdown) and must still
            // reproduce the single-accelerator answer exactly.
            "SELECT x.a, d.name FROM f AS x INNER JOIN d ON x.a = d.a \
             ORDER BY x.a, d.name",
        ];
        let run = |config: IdaaConfig| -> Vec<Vec<idaa::Row>> {
            let idaa = Idaa::new(config);
            let mut s = idaa.session(SYSADM);
            idaa.execute(
                &mut s,
                "CREATE TABLE F (A BIGINT, B BIGINT, G VARCHAR(2)) IN ACCELERATOR \
                 DISTRIBUTE BY HASH(A)",
            ).unwrap();
            let vals: Vec<String> = rows
                .iter()
                .map(|(a, b, g)| format!("({a}, {b}, '{g}')"))
                .collect();
            for chunk in vals.chunks(50) {
                idaa.execute(&mut s, &format!("INSERT INTO F VALUES {}", chunk.join(", ")))
                    .unwrap();
            }
            idaa.execute(
                &mut s,
                "INSERT INTO F VALUES (1, NULL, NULL), (NULL, 5, 'a'), (NULL, NULL, NULL)",
            ).unwrap();
            // A small replicated dimension for the join-pushdown gather.
            idaa.execute(&mut s, "CREATE TABLE D (A BIGINT, NAME VARCHAR(2))").unwrap();
            idaa.execute(
                &mut s,
                "INSERT INTO D VALUES (1, 'x'), (7, 'y'), (100, 'z'), (500, 'w'), (NULL, 'n')",
            ).unwrap();
            idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('D')").unwrap();
            idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('D')").unwrap();
            idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
            queries.iter().map(|q| idaa.query(&mut s, q).unwrap().rows).collect()
        };
        let single = run(IdaaConfig::default());
        let fleet = run(IdaaConfig {
            fleet: FleetConfig {
                accelerators,
                shards,
                replication_factor: replicas,
                ..FleetConfig::default()
            },
            ..IdaaConfig::default()
        });
        for (i, (lhs, rhs)) in single.iter().zip(&fleet).enumerate() {
            prop_assert_eq!(lhs, rhs, "fleet disagreed with single accelerator on {}", queries[i]);
        }
    }
}

// ---------------------------------------------------------------------------
// Server: the workload scheduler is deterministic and fair
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random (session count × priority mix × submission schedule)
    /// replayed on two fresh servers produces byte-identical completions,
    /// `server.*` metrics, statement traces, and `SHOW WORKLOAD` output —
    /// and within the top priority class no ready seat starves: a
    /// statement's wait stays linearly bounded by its position in its
    /// seat's FIFO times the class size (round-robin), never by the total
    /// backlog.
    #[test]
    fn scheduler_is_deterministic_and_fair(
        priorities in proptest::collection::vec(0i64..4, 2..6),
        schedule in proptest::collection::vec((0usize..8, 0usize..4), 8..32),
        limit in 1usize..4,
    ) {
        use idaa::{Priority, Server, ServerConfig};
        let prio = |rank: i64| match rank {
            0 => Priority::Low,
            1 => Priority::Normal,
            2 => Priority::High,
            _ => Priority::System,
        };
        struct RunOut {
            report: String,
            completions: Vec<(u64, i64, u64)>, // (seat, priority rank, waited_rounds)
        }
        let run = |priorities: &[i64], schedule: &[(usize, usize)]| -> RunOut {
            let idaa = Idaa::default();
            let mut setup = idaa.session(SYSADM);
            idaa.execute(&mut setup, "CREATE TABLE W (A BIGINT, G VARCHAR(2))").unwrap();
            idaa.execute(
                &mut setup,
                "INSERT INTO W VALUES (1, 'a'), (2, 'b'), (3, 'a'), (4, 'c')",
            ).unwrap();
            let srv = Server::with_idaa(
                idaa,
                ServerConfig { admission_limit: limit, ..ServerConfig::default() },
            );
            let seats: Vec<u64> = priorities
                .iter()
                .map(|r| srv.connect_with_priority(SYSADM, prio(*r)).unwrap())
                .collect();
            for (i, (sel, kind)) in schedule.iter().enumerate() {
                let seat = seats[sel % seats.len()];
                let sql = match kind {
                    0 => "SELECT COUNT(*) FROM W".to_string(),
                    1 => "SELECT A, G FROM W ORDER BY A, G".to_string(),
                    2 => format!("INSERT INTO W VALUES ({}, 'z')", 100 + i),
                    _ => "SET CURRENT QUERY ACCELERATION = NONE".to_string(),
                };
                srv.submit(seat, &sql).unwrap();
            }
            let done = srv.run_until_idle();
            // Byte-stable report: completions, full metrics registry,
            // session-free trace renders, and the SHOW WORKLOAD rows.
            let mut report = String::new();
            for c in &done {
                let outcome = match &c.result {
                    Ok(out) => format!("{:?}", out.payload),
                    Err(e) => format!("sqlcode {}", e.sqlcode()),
                };
                report.push_str(&format!(
                    "seat={} stmt={} round={} waited={} queued_us={} sql={} -> {}\n",
                    c.session, c.statement, c.round, c.waited_rounds,
                    c.queued.as_micros(), c.sql, outcome,
                ));
            }
            report.push_str(&srv.idaa().metrics().render());
            for t in srv.idaa().tracer().statements() {
                report.push_str(&t.root.render());
                report.push('\n');
            }
            let mut viewer = srv.idaa().session(SYSADM);
            report.push_str(&srv.idaa().query(&mut viewer, "SHOW WORKLOAD").unwrap().to_csv());
            let completions = done
                .iter()
                .map(|c| {
                    let rank = prio(priorities[seats.iter().position(|s| *s == c.session).unwrap()]).rank();
                    (c.session, rank, c.waited_rounds)
                })
                .collect();
            RunOut { report, completions }
        };
        let first = run(&priorities, &schedule);
        let second = run(&priorities, &schedule);
        prop_assert_eq!(
            &first.report,
            &second.report,
            "same submission schedule must replay byte-identically"
        );
        // Every submitted statement completed exactly once.
        prop_assert_eq!(first.completions.len(), schedule.len());
        // Fairness in the top class (nothing above it can delay it): the
        // i-th statement of a seat's FIFO waits O(i * class_size) rounds,
        // independent of how much total backlog other classes hold.
        let top = first.completions.iter().map(|(_, r, _)| *r).max().unwrap_or(0);
        let class_seats: std::collections::BTreeSet<u64> = first
            .completions
            .iter()
            .filter(|(_, r, _)| *r == top)
            .map(|(s, _, _)| *s)
            .collect();
        let k = class_seats.len() as u64;
        for seat in &class_seats {
            for (i, (_, _, waited)) in first
                .completions
                .iter()
                .filter(|(s, _, _)| s == seat)
                .enumerate()
            {
                let bound = (i as u64 + 2) * k + 2;
                prop_assert!(
                    *waited <= bound,
                    "seat {} statement {} waited {} rounds (> bound {}): starvation",
                    seat, i, waited, bound
                );
            }
        }
    }
}
