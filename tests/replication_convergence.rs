//! Replication convergence: random committed DML streams against an
//! accelerated table must leave the accelerator replica identical to the
//! host table — across batch sizes, interleavings, rollbacks, and reloads.

use idaa::{Idaa, IdaaConfig, ObjectName, Value, SYSADM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sorted(mut rows: Vec<idaa::Row>) -> Vec<idaa::Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            let o = x.cmp_total(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn assert_converged(idaa: &Idaa, table: &str) {
    let name = ObjectName::bare(table);
    let host_rows = sorted(idaa.host().scan_all(&name).unwrap());
    let accel_rows = sorted(idaa.accel().scan_visible(&name).unwrap());
    assert_eq!(host_rows, accel_rows, "replica diverged for {table}");
}

fn random_dml_stream(batch_size: usize, seed: u64, steps: usize) {
    let idaa = Idaa::new(IdaaConfig { replication_batch: batch_size, ..Default::default() });
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE T (K INT NOT NULL, V INT)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('T')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_key = 0;
    for step in 0..steps {
        let in_txn = rng.gen_bool(0.3);
        if in_txn {
            idaa.execute(&mut s, "BEGIN").unwrap();
        }
        let ops = rng.gen_range(1..5);
        for _ in 0..ops {
            match rng.gen_range(0..10) {
                0..=5 => {
                    let k = next_key;
                    next_key += 1;
                    idaa.execute(
                        &mut s,
                        &format!("INSERT INTO T VALUES ({k}, {})", rng.gen_range(0..100)),
                    )
                    .unwrap();
                }
                6..=7 => {
                    let k = rng.gen_range(0..next_key.max(1));
                    idaa.execute(
                        &mut s,
                        &format!("UPDATE T SET V = {} WHERE K = {k}", rng.gen_range(0..100)),
                    )
                    .unwrap();
                }
                _ => {
                    let k = rng.gen_range(0..next_key.max(1));
                    idaa.execute(&mut s, &format!("DELETE FROM T WHERE K = {k}")).unwrap();
                }
            }
        }
        if in_txn {
            if rng.gen_bool(0.25) {
                idaa.execute(&mut s, "ROLLBACK").unwrap();
            } else {
                idaa.execute(&mut s, "COMMIT").unwrap();
            }
        }
        if step % 7 == 0 {
            assert_converged(&idaa, "T");
        }
    }
    idaa.replicate_now().unwrap();
    assert_converged(&idaa, "T");
}

#[test]
fn converges_with_large_batches() {
    random_dml_stream(1024, 1, 60);
}

#[test]
fn converges_with_single_record_batches() {
    random_dml_stream(1, 2, 40);
}

#[test]
fn converges_with_small_batches() {
    random_dml_stream(8, 3, 60);
}

#[test]
fn reload_resets_replica_cleanly() {
    let idaa = Idaa::default();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE T (K INT)").unwrap();
    for i in 0..30 {
        idaa.execute(&mut s, &format!("INSERT INTO T VALUES ({i})")).unwrap();
    }
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('T')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();
    assert_converged(&idaa, "T");
    // More changes, then a full reload on top of the replicated state.
    for i in 30..60 {
        idaa.execute(&mut s, &format!("INSERT INTO T VALUES ({i})")).unwrap();
    }
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();
    assert_converged(&idaa, "T");
    let r = idaa.query(&mut s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::BigInt(60));
}

#[test]
fn offloaded_queries_see_replicated_changes_immediately_after_commit() {
    let idaa = Idaa::default();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE T (K INT, V VARCHAR(4))").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('T')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    for i in 0..10 {
        idaa.execute(&mut s, &format!("INSERT INTO T VALUES ({i}, 'a')")).unwrap();
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(out.route, idaa::Route::Accelerator);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(i + 1));
    }
}

#[test]
fn non_accelerated_tables_never_replicate() {
    let idaa = Idaa::default();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE PRIVATE (K INT)").unwrap();
    idaa.execute(&mut s, "INSERT INTO PRIVATE VALUES (1), (2)").unwrap();
    idaa.replicate_now().unwrap();
    assert!(!idaa.accel().has_table(&ObjectName::bare("PRIVATE")));
    assert_eq!(idaa.link().metrics().bytes_to_accel, 0, "no bytes may cross the link");
}

#[test]
fn mixed_tables_replicate_only_loaded_ones() {
    let idaa = Idaa::default();
    let mut s = idaa.session(SYSADM);
    idaa.execute(&mut s, "CREATE TABLE LOADED (K INT)").unwrap();
    idaa.execute(&mut s, "CREATE TABLE ADDED_ONLY (K INT)").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('LOADED')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('LOADED')").unwrap();
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('ADDED_ONLY')").unwrap();
    // ADDED_ONLY is defined but not loaded: no replication for it.
    idaa.execute(&mut s, "INSERT INTO LOADED VALUES (1)").unwrap();
    idaa.execute(&mut s, "INSERT INTO ADDED_ONLY VALUES (1)").unwrap();
    assert_eq!(idaa.accel().scan_visible(&ObjectName::bare("LOADED")).unwrap().len(), 1);
    assert_eq!(idaa.accel().scan_visible(&ObjectName::bare("ADDED_ONLY")).unwrap().len(), 0);
}
