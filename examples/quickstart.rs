//! Quickstart: the federated system in five minutes.
//!
//! Shows the full accelerator lifecycle on a small sales table:
//! host-only queries, acceleration (ADD + LOAD), offloaded queries under
//! `CURRENT QUERY ACCELERATION`, an accelerator-only table transformation,
//! and the link metrics that make data movement visible.
//!
//! Run with: `cargo run --example quickstart`

use idaa::{Idaa, Route, SYSADM};

fn main() -> idaa::Result<()> {
    let idaa = Idaa::default();
    let mut session = idaa.session(SYSADM);

    // 1. Plain DB2: create and fill a table; queries run on the host.
    idaa.execute(
        &mut session,
        "CREATE TABLE SALES (ID INT NOT NULL, REGION VARCHAR(8), PRODUCT VARCHAR(12), \
         AMOUNT DECIMAL(10,2), SOLD_ON DATE)",
    )?;
    let mut values = Vec::new();
    for i in 0..30_000 {
        values.push(format!(
            "({i}, '{}', 'P{:02}', {}.{:02}, DATE '2015-0{}-1{}')",
            ["EU", "US", "APAC"][i % 3],
            i % 20,
            (i % 900) + 10,
            i % 100,
            (i % 9) + 1,
            i % 9
        ));
        if values.len() == 1000 {
            idaa.execute(&mut session, &format!("INSERT INTO SALES VALUES {}", values.join(", ")))?;
            values.clear();
        }
    }

    let out = idaa.query(&mut session, "SELECT COUNT(*) FROM sales")?;
    println!("rows in SALES: {}", out.scalar().unwrap().render());

    // 2. Accelerate the table: define it on the accelerator and load a
    //    snapshot (incremental replication keeps it fresh afterwards).
    idaa.execute(&mut session, "CALL SYSPROC.ACCEL_ADD_TABLES('ACCEL1', 'SALES')")?;
    idaa.execute(&mut session, "CALL SYSPROC.ACCEL_LOAD_TABLES('ACCEL1', 'SALES')")?;

    // 3. Opt in to acceleration — the same query now runs on the
    //    accelerator.
    idaa.execute(&mut session, "SET CURRENT QUERY ACCELERATION = ELIGIBLE")?;
    let out = idaa.execute(
        &mut session,
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total \
         FROM sales WHERE sold_on >= DATE '2015-03-01' \
         GROUP BY region ORDER BY region",
    )?;
    println!("\nreport ran on: {:?}", out.route);
    assert_eq!(out.route, Route::Accelerator);
    print!("{}", out.rows().unwrap().to_table());

    // 4. The paper's extension: an accelerator-only table. The transform
    //    below never materializes anything in DB2 — only the statement text
    //    crosses the link.
    idaa.execute(
        &mut session,
        "CREATE TABLE REGION_TOTALS (REGION VARCHAR(8), TOTAL DECIMAL(18,2)) IN ACCELERATOR",
    )?;
    let before = idaa.link().metrics();
    let out = idaa.execute(
        &mut session,
        "INSERT INTO REGION_TOTALS SELECT region, SUM(amount) FROM sales GROUP BY region",
    )?;
    let moved = idaa.link().metrics().since(&before);
    println!(
        "AOT transform inserted {} rows; bytes over the link: {} to accel, {} back",
        out.count(),
        moved.bytes_to_accel,
        moved.bytes_to_host
    );

    let rows = idaa.query(&mut session, "SELECT * FROM region_totals ORDER BY region")?;
    print!("{}", rows.to_table());

    // 5. Point lookups stay cheap on the host (routing heuristics).
    idaa.execute(&mut session, "CREATE INDEX SALES_ID ON SALES (ID)")?;
    idaa.execute(&mut session, "SET CURRENT QUERY ACCELERATION = ENABLE")?;
    let out = idaa.execute(&mut session, "SELECT product FROM sales WHERE id = 17")?;
    assert_eq!(out.route, Route::Host);
    println!("point lookup ran on: {:?} (ENABLE keeps indexed point access local)", out.route);

    let m = idaa.link().metrics();
    println!(
        "\nlink totals: {} msgs, {} bytes, {:?} simulated wire time",
        m.total_messages(),
        m.total_bytes(),
        m.wire_time
    );
    Ok(())
}
