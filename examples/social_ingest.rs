//! Loader deep-dive: compare the two ingestion paths of the paper's
//! Fig. 1 for the same external feed —
//!
//! * **via DB2**: rows land in a regular (accelerated) table; incremental
//!   replication then ships them to the accelerator a second time;
//! * **direct**: rows go straight into an accelerator-only table.
//!
//! Also demonstrates CSV ingestion with reject handling and parallel
//! parsing.
//!
//! Run with: `cargo run --release --example social_ingest`

use idaa::loader::{CsvSource, EventSource, LoadTarget, Loader, RejectPolicy};
use idaa::{Idaa, ObjectName, SYSADM};
use std::time::Instant;

const EVENTS: usize = 100_000;

fn main() -> idaa::Result<()> {
    let idaa = Idaa::default();
    let mut s = idaa.session(SYSADM);
    let ddl = "(EVENT_ID INT, CUST_ID INT, TOPIC VARCHAR(10), SENTIMENT DOUBLE, \
               POSTED_AT TIMESTAMP)";

    // Path A: into DB2, replicated to the accelerator.
    idaa.execute(&mut s, &format!("CREATE TABLE FEED_DB2 {ddl}"))?;
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('FEED_DB2')")?;
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('FEED_DB2')")?;

    // Path B: accelerator-only.
    idaa.execute(&mut s, &format!("CREATE TABLE FEED_AOT {ddl} IN ACCELERATOR"))?;

    let loader = Loader::new(SYSADM);
    println!("ingesting {EVENTS} synthetic social-media events per path\n");
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>10}",
        "path", "rows", "elapsed_ms", "bytes_to_accel", "msgs"
    );

    for (label, table, target) in [
        ("via DB2 + replicate", "FEED_DB2", LoadTarget::Db2),
        ("direct to AOT", "FEED_AOT", LoadTarget::AcceleratorDirect),
    ] {
        let before = idaa.link().metrics();
        let t0 = Instant::now();
        let report = loader.load(
            &idaa,
            Box::new(EventSource::new(EVENTS, 99)),
            &ObjectName::bare(table),
            target,
        )?;
        let elapsed = t0.elapsed();
        let moved = idaa.link().metrics().since(&before);
        println!(
            "{:<22} {:>10} {:>12.1} {:>14} {:>10}",
            label,
            report.rows_loaded,
            elapsed.as_secs_f64() * 1000.0,
            moved.bytes_to_accel,
            moved.total_messages()
        );
    }

    // Both copies are queryable; the AOT needed no DB2 storage at all.
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE")?;
    for t in ["FEED_DB2", "FEED_AOT"] {
        let r = idaa.query(
            &mut s,
            &format!("SELECT topic, COUNT(*) FROM {t} GROUP BY topic ORDER BY topic"),
        )?;
        println!("\ntopic histogram from {t}:");
        print!("{}", r.to_table());
    }

    // CSV ingestion with bad records and a reject limit.
    idaa.execute(&mut s, "CREATE TABLE PRICES (SKU VARCHAR(8), PRICE DECIMAL(8,2)) IN ACCELERATOR")?;
    let csv = "sku,price\nA1,19.99\nA2,notanumber\nA3,5.00\nA4,\n";
    let mut csv_loader = Loader::new(SYSADM);
    csv_loader.config.rejects = RejectPolicy::SkipUpTo(3);
    let report = csv_loader.load(
        &idaa,
        Box::new(CsvSource::with_header(csv)),
        &ObjectName::bare("PRICES"),
        LoadTarget::Auto,
    )?;
    println!(
        "\nCSV load: {} rows loaded, {} rejected (reject limit 3)",
        report.rows_loaded, report.rows_rejected
    );
    let r = idaa.query(&mut s, "SELECT * FROM prices ORDER BY sku")?;
    print!("{}", r.to_table());
    Ok(())
}
