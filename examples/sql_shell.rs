//! An interactive SQL shell over the federated system — the closest thing
//! to sitting at a DB2 terminal with an accelerator attached.
//!
//! ```text
//! cargo run --release --example sql_shell
//! idaa> CREATE TABLE T (X INT);
//! idaa> INSERT INTO T VALUES (1), (2), (3);
//! idaa> SELECT COUNT(*) FROM T;
//! idaa> EXPLAIN SELECT COUNT(*) FROM T;
//! idaa> \link      -- link metrics      \stats  -- engine counters
//! idaa> \quit
//! ```
//!
//! Statements may span lines; they execute at `;`. Each result reports
//! where it ran (host vs. accelerator). Also reads a script from stdin
//! when piped: `echo "SELECT 1;" | cargo run --example sql_shell`.

use idaa::{Idaa, Payload, Route, SYSADM};
use std::io::{BufRead, IsTerminal, Write};

fn main() {
    let idaa = Idaa::default();
    let mut session = idaa.session(SYSADM);
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        println!("idaa-rs SQL shell — statements end with ';', \\help for commands");
    }
    let mut buffer = String::new();
    loop {
        if interactive {
            print!("{}", if buffer.is_empty() { "idaa> " } else { "   -> " });
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        // Shell meta-commands.
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match trimmed {
                "\\quit" | "\\q" => break,
                "\\link" => {
                    let m = idaa.link().metrics();
                    println!(
                        "link: {} bytes to accel, {} bytes to host, {} msgs, {:?} wire time",
                        m.bytes_to_accel,
                        m.bytes_to_host,
                        m.total_messages(),
                        m.wire_time
                    );
                }
                "\\stats" => {
                    use std::sync::atomic::Ordering::Relaxed;
                    let h = &idaa.host().stats;
                    let a = &idaa.accel().stats;
                    println!(
                        "host: {} stmts, {} rows scanned, {} index lookups",
                        h.statements.load(Relaxed),
                        h.rows_scanned.load(Relaxed),
                        h.index_lookups.load(Relaxed)
                    );
                    println!(
                        "accel: {} queries, {} rows scanned, {} blocks pruned",
                        a.queries.load(Relaxed),
                        a.rows_scanned.load(Relaxed),
                        a.blocks_pruned.load(Relaxed)
                    );
                }
                "\\help" => {
                    println!("\\quit  exit    \\link  link metrics    \\stats  engine counters");
                    println!("SQL ends with ';' — e.g. SET CURRENT QUERY ACCELERATION = ELIGIBLE;");
                }
                other => println!("unknown command {other} (try \\help)"),
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            if buffer.trim().is_empty() {
                buffer.clear();
            }
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        for stmt in sql.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            match idaa.execute(&mut session, stmt) {
                Ok(out) => {
                    let site = match out.route {
                        Route::Host => "DB2",
                        Route::Accelerator => "accelerator",
                    };
                    match out.payload {
                        Payload::Rows(rows) => {
                            print!("{}", rows.to_table());
                            println!("(executed on {site})");
                        }
                        Payload::Count(n) => println!("{n} row(s) affected (on {site})"),
                        Payload::None => println!("OK"),
                    }
                }
                Err(e) => println!("{e}"),
            }
        }
    }
    if interactive {
        println!("bye");
    }
}
