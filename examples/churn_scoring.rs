//! End-to-end predictive-analytics scenario (the paper's motivating use
//! case): enrich warehouse data with an external social-media feed, prepare
//! features in accelerator-only tables, train a classifier *in-database*,
//! and score customers — all governed by DB2 privileges.
//!
//! Flow:
//! 1. customers live in DB2 (system of record) and are accelerated;
//! 2. social-media events are ingested by the IDAA Loader *directly* into
//!    an AOT (never touching DB2 storage);
//! 3. SQL stages join and aggregate into a feature AOT;
//! 4. `CALL ANALYTICS.SPLIT` / `DECTREE_TRAIN` / `DECTREE_SCORE` run on
//!    the accelerator;
//! 5. an analyst with too few privileges is rejected by DB2, not by the
//!    accelerator.
//!
//! Run with: `cargo run --release --example churn_scoring`

use idaa::analytics;
use idaa::loader::{EventSource, LoadTarget, Loader};
use idaa::{Idaa, ObjectName, SYSADM};

fn main() -> idaa::Result<()> {
    let idaa = Idaa::default();
    analytics::deploy_all(&idaa, SYSADM)?;
    let mut s = idaa.session(SYSADM);

    // --- 1. Warehouse: customer master data in DB2 -------------------------
    idaa.execute(
        &mut s,
        "CREATE TABLE CUSTOMERS (CUST_ID INT NOT NULL, TENURE_M INT, MONTHLY DOUBLE, \
         SUPPORT_CALLS INT, CHURNED VARCHAR(3))",
    )?;
    let mut batch = Vec::new();
    for i in 0..4000i64 {
        // Synthetic ground truth: short tenure + many support calls churn.
        let tenure = (i * 37 % 72) + 1;
        let calls = (i * 13) % 9;
        let monthly = 20.0 + (i % 80) as f64;
        let churned = if tenure < 12 && calls > 4 { "YES" } else { "NO" };
        batch.push(format!("({i}, {tenure}, {monthly:.1}E0, {calls}, '{churned}')"));
        if batch.len() == 500 {
            idaa.execute(&mut s, &format!("INSERT INTO CUSTOMERS VALUES {}", batch.join(", ")))?;
            batch.clear();
        }
    }
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('CUSTOMERS')")?;
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('CUSTOMERS')")?;
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE")?;

    // --- 2. Social media feed → AOT via the loader -------------------------
    idaa.execute(
        &mut s,
        "CREATE TABLE SOCIAL (EVENT_ID INT, CUST_ID INT, TOPIC VARCHAR(10), \
         SENTIMENT DOUBLE, POSTED_AT TIMESTAMP) IN ACCELERATOR",
    )?;
    let loader = Loader::new(SYSADM);
    let report = loader.load(
        &idaa,
        Box::new(EventSource::new(20_000, 2016)),
        &ObjectName::bare("SOCIAL"),
        LoadTarget::Auto,
    )?;
    println!(
        "loader: {} social events ingested directly into the accelerator ({} rejected)",
        report.rows_loaded, report.rows_rejected
    );

    // --- 3. Feature engineering in AOTs ------------------------------------
    // The generator spreads user ids over 1..=100000; fold them onto our
    // customer id space in SQL — a typical cleansing stage.
    idaa.execute(
        &mut s,
        "CREATE TABLE SOCIAL_AGG (CUST_ID INT, NEG_POSTS INT, AVG_SENT DOUBLE) IN ACCELERATOR",
    )?;
    idaa.execute(
        &mut s,
        "INSERT INTO SOCIAL_AGG \
         SELECT cust_id % 4000, \
                CAST(SUM(CASE WHEN sentiment < 0 THEN 1 ELSE 0 END) AS INT), \
                AVG(sentiment) \
         FROM social GROUP BY cust_id % 4000",
    )?;
    idaa.execute(
        &mut s,
        "CREATE TABLE FEATURES (CUST_ID INT, TENURE_M DOUBLE, MONTHLY DOUBLE, \
         SUPPORT_CALLS DOUBLE, NEG_POSTS DOUBLE, CHURNED VARCHAR(3)) IN ACCELERATOR",
    )?;
    let out = idaa.execute(
        &mut s,
        "INSERT INTO FEATURES \
         SELECT c.cust_id, CAST(c.tenure_m AS DOUBLE), c.monthly, \
                CAST(c.support_calls AS DOUBLE), COALESCE(CAST(a.neg_posts AS DOUBLE), 0.0E0), \
                c.churned \
         FROM customers c LEFT JOIN social_agg a ON c.cust_id = a.cust_id",
    )?;
    println!("feature table built on the accelerator: {} rows", out.count());

    // --- 4. Train / test split, training, scoring — all in-database --------
    let r = idaa.query(
        &mut s,
        "CALL ANALYTICS.SPLIT('FEATURES', 'FEAT_TRAIN', 'FEAT_TEST', 0.8, 7)",
    )?;
    print!("{}", r.to_table());
    let r = idaa.query(
        &mut s,
        "CALL ANALYTICS.DECTREE_TRAIN('FEAT_TRAIN', 'CHURNED', \
         'TENURE_M,MONTHLY,SUPPORT_CALLS,NEG_POSTS', 'CHURN_MODEL', 5)",
    )?;
    print!("{}", r.to_table());
    let r = idaa.query(
        &mut s,
        "CALL ANALYTICS.DECTREE_SCORE('FEAT_TEST', 'CUST_ID', \
         'TENURE_M,MONTHLY,SUPPORT_CALLS,NEG_POSTS', 'CHURN_MODEL', 'CHURN_SCORES')",
    )?;
    print!("{}", r.to_table());

    // Holdout accuracy, computed with plain SQL over two AOTs.
    let acc = idaa.query(
        &mut s,
        "SELECT SUM(CASE WHEN sc.class = f.churned THEN 1.0E0 ELSE 0.0E0 END) / COUNT(*) \
         FROM churn_scores sc INNER JOIN feat_test f ON sc.cust_id = f.cust_id",
    )?;
    println!("holdout accuracy: {}", acc.scalar().unwrap().render());

    let at_risk = idaa.query(
        &mut s,
        "SELECT COUNT(*) FROM churn_scores WHERE class = 'YES'",
    )?;
    println!("customers flagged at churn risk: {}", at_risk.scalar().unwrap().render());

    // --- 5. Governance: an unprivileged analyst is stopped by DB2 ----------
    let mut analyst = idaa.session("ANALYST");
    let denied = idaa.query(
        &mut analyst,
        "CALL ANALYTICS.DECTREE_SCORE('FEAT_TEST', 'CUST_ID', 'TENURE_M', 'CHURN_MODEL', 'X')",
    );
    println!(
        "unprivileged CALL rejected by DB2: {}",
        denied.expect_err("must be denied")
    );

    let m = idaa.link().metrics();
    println!(
        "\ntotal link traffic for the whole scenario: {} bytes in {} messages \
         (model + scores never left the accelerator)",
        m.total_bytes(),
        m.total_messages()
    );
    Ok(())
}
