//! The paper's headline scenario: a multi-staged ELT/data-preparation
//! pipeline, run twice —
//!
//! * **baseline** (pre-AOT IDAA): every stage result is materialized in a
//!   DB2 table and re-loaded to the accelerator for the next stage;
//! * **accelerator-only tables**: every stage writes an AOT via
//!   `INSERT … SELECT`, so intermediate data never crosses the link.
//!
//! The printed per-stage table shows elapsed time, rows, and bytes moved —
//! the quantity the paper sets out to minimize.
//!
//! Run with: `cargo run --release --example elt_pipeline`

use idaa::analytics::{Pipeline, PipelineMode};
use idaa::{Idaa, SYSADM};

fn build_system(rows: usize) -> idaa::Result<(Idaa, idaa::Session)> {
    let idaa = Idaa::default();
    let mut s = idaa.session(SYSADM);
    idaa.execute(
        &mut s,
        "CREATE TABLE TXNS (ID INT NOT NULL, CUST INT, KIND VARCHAR(8), AMOUNT DOUBLE, \
         TS TIMESTAMP)",
    )?;
    let mut batch = Vec::new();
    for i in 0..rows {
        batch.push(format!(
            "({i}, {}, '{}', {}.5E0, TIMESTAMP '2015-06-0{} 0{}:00:00')",
            i % 997,
            ["DEBIT", "CREDIT", "FEE"][i % 3],
            (i * 7) % 1000,
            (i % 9) + 1,
            i % 10,
        ));
        if batch.len() == 1000 {
            idaa.execute(&mut s, &format!("INSERT INTO TXNS VALUES {}", batch.join(", ")))?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        idaa.execute(&mut s, &format!("INSERT INTO TXNS VALUES {}", batch.join(", ")))?;
    }
    idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('TXNS')")?;
    idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('TXNS')")?;
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE")?;
    Ok((idaa, s))
}

fn pipeline() -> Pipeline {
    Pipeline::new()
        // Stage 1: cleanse — keep only customer debits/credits, derive sign.
        .stage(
            "STG_CLEAN",
            "SELECT id, cust, amount, CASE kind WHEN 'DEBIT' THEN -1 ELSE 1 END AS SIGN \
             FROM txns WHERE kind <> 'FEE'",
        )
        // Stage 2: transform — signed amounts.
        .stage(
            "STG_SIGNED",
            "SELECT cust, amount * sign AS FLOW FROM stg_clean",
        )
        // Stage 3: aggregate per customer.
        .stage(
            "STG_CUST",
            "SELECT cust, COUNT(*) AS N, SUM(flow) AS NET, AVG(flow) AS AVG_FLOW \
             FROM stg_signed GROUP BY cust",
        )
        // Stage 4: feature filter for the mining step.
        .stage(
            "STG_FEATURES",
            "SELECT cust, n, net, avg_flow FROM stg_cust WHERE n > 5",
        )
}

fn main() -> idaa::Result<()> {
    const ROWS: usize = 50_000;
    println!("base table: {ROWS} transaction rows\n");

    for mode in [PipelineMode::MaterializeInDb2, PipelineMode::AcceleratorOnly] {
        let (idaa, mut s) = build_system(ROWS)?;
        let p = pipeline();
        idaa.link().reset(); // measure the pipeline only
        let report = p.run(&idaa, &mut s, mode)?;
        println!("=== {mode:?} ===");
        println!("{:<14} {:>9} {:>12} {:>14} {:>10}", "stage", "rows", "elapsed_ms", "bytes_moved", "link_msgs");
        for st in &report.stages {
            println!(
                "{:<14} {:>9} {:>12.2} {:>14} {:>10}",
                st.output,
                st.rows,
                st.elapsed.as_secs_f64() * 1000.0,
                st.link.total_bytes(),
                st.link.total_messages()
            );
        }
        println!(
            "{:<14} {:>9} {:>12.2} {:>14} {:>10}  (+ {:.2} ms simulated wire time)\n",
            "TOTAL",
            "",
            report.elapsed.as_secs_f64() * 1000.0,
            report.link.total_bytes(),
            report.link.total_messages(),
            report.link.wire_time.as_secs_f64() * 1000.0,
        );
    }
    println!(
        "The AOT mode ships only statement text per stage; the baseline ships every\n\
         intermediate result twice (accelerator → DB2, then DB2 → accelerator on reload)."
    );
    Ok(())
}
