//! Durable accelerator storage: checkpoints plus an append-only commit log.
//!
//! The paper's transaction-awareness claim only matters if accelerator
//! state survives the accelerator itself failing. This module is the
//! in-memory stand-in for the appliance's disks: atomically-installed
//! [`Checkpoint`]s of every table heap plus the MVCC commit watermark, and
//! an LSN-ordered [`LogRecord`] stream of everything that changed since.
//! Row payloads inside log records and checkpoint images are encoded with
//! the `idaa_common::wire` codec — the same deterministic format that
//! crosses the host link — so recovery replays byte-identical row data.
//!
//! Recovery is `checkpoint + log tail`: [`crate::engine::AccelEngine::restart`]
//! restores the newest checkpoint and re-applies every logged record with
//! an LSN past the checkpoint's coverage, in log order. Because records
//! are LSN-stamped and the checkpoint remembers the LSN it covers, replay
//! is idempotent: replaying the same tail twice (or any prefix/suffix
//! re-chunking of it) reconstructs the same state.
//!
//! The disk is *not* trusted: every record and checkpoint carries a
//! checksum computed at write time, writes can tear (the
//! `sites::TORN_LOG_APPEND` / `sites::TORN_CHECKPOINT` storage faults),
//! and already-written bytes can rot (`sites::BITROT_*`). Recovery runs
//! [`DurableStore::recover_scan`], which validates everything it reads:
//! torn tails are truncated and the truncation durably re-logged as a
//! [`LogRecord::TornTail`] marker, invalid checkpoints are durably
//! discarded in favor of the previous valid one (replaying the longer log
//! tail), and corruption with no valid coverage is reported — never
//! silently replayed. The two most recent checkpoints are retained so a
//! checkpoint-rot fallback always has log coverage, and a background
//! scrub ([`DurableStore::scrub_step`]) walks segments between statements
//! so latent rot is found while the in-memory state can still repair it.
//!
//! Timing is keyed off the netsim virtual clock: checkpoints are stamped
//! with the virtual time they were taken and the periodic-checkpoint
//! policy compares against that stamp, so the whole subsystem is
//! deterministic and consumes no wall-clock time.

use crate::mvcc::{CommitSeq, TxnId, TxnStatus};
use idaa_common::{wire, ObjectName, Schema};
use parking_lot::Mutex;
use std::time::Duration;

/// Log sequence number (1-based; 0 means "before any record").
pub type Lsn = u64;

/// One durably-logged accelerator event.
///
/// Transaction lifecycle records mirror the 2PC protocol; data records
/// carry row payloads as wire-codec frames and delete-marks as explicit
/// `(slice, pos)` coordinates (physical logging — replay needs no
/// predicate re-evaluation, so it cannot diverge from the original run).
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// A (host) transaction enrolled on the accelerator.
    Begin { txn: TxnId },
    /// 2PC phase 1: the transaction voted YES and is now in-doubt.
    Prepare { txn: TxnId },
    /// 2PC phase 2: committed with this sequence number. Replay restores
    /// the exact sequence so snapshot visibility is reproduced bit-for-bit.
    Commit { txn: TxnId, seq: CommitSeq },
    /// Rolled back.
    Abort { txn: TxnId },
    /// Rows inserted by `txn` into `table`, encoded as one wire frame of
    /// already-schema-checked rows.
    Insert { txn: TxnId, table: ObjectName, frame: Vec<u8> },
    /// Delete-marks placed by `txn` in one statement: `(slice, pos)`
    /// version coordinates. Logged only after the statement's marks all
    /// succeeded, so replay applies them unconditionally.
    Marks { txn: TxnId, table: ObjectName, positions: Vec<(usize, usize)> },
    /// DDL: table created.
    CreateTable { name: ObjectName, schema: Schema, dist_cols: Vec<usize>, slices: usize },
    /// DDL: table dropped.
    DropTable { name: ObjectName },
    /// All versions removed (pre-reload truncation).
    Truncate { table: ObjectName },
    /// `GROOM` ran against the then-current transaction states. Replay
    /// re-runs it logically; the replayed registry is in the same state as
    /// the original was at this point in the log, so the same versions go.
    Groom { table: ObjectName },
    /// Recovery truncated a torn (partially-written, never-acknowledged)
    /// record that had been assigned LSN `lost`, and durably re-logged the
    /// decision in its place so every later replay makes the same call.
    /// No-op when replayed.
    TornTail { lost: Lsn },
    /// `table`'s contents were lost to unrepairable storage corruption
    /// with no replica or host copy to rebuild from. Statements against
    /// it fail deterministically (-904) until a TRUNCATE + reload lifts
    /// the quarantine — never a silently empty answer.
    Quarantine { table: ObjectName },
}

impl LogRecord {
    /// Approximate durable size of this record in bytes (fixed header plus
    /// any wire-encoded payload). Used for log-volume metrics and the
    /// recovery-time cost model, never for protocol framing.
    pub fn bytes(&self) -> u64 {
        const RECORD_HEADER: u64 = 24;
        match self {
            LogRecord::Begin { .. }
            | LogRecord::Prepare { .. }
            | LogRecord::Commit { .. }
            | LogRecord::Abort { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::Truncate { .. }
            | LogRecord::Groom { .. }
            | LogRecord::TornTail { .. }
            | LogRecord::Quarantine { .. } => RECORD_HEADER,
            LogRecord::Insert { frame, .. } => RECORD_HEADER + frame.len() as u64,
            LogRecord::Marks { positions, .. } => RECORD_HEADER + 16 * positions.len() as u64,
            LogRecord::CreateTable { schema, .. } => RECORD_HEADER + 32 * schema.len() as u64,
        }
    }
}

/// Deterministic per-record checksum over the record's LSN and logical
/// content (frames contribute their `wire::hash64`). Computed at append
/// time and re-verified by recovery and the scrub, so any post-write
/// damage is detected before the record is replayed.
fn record_fingerprint(lsn: Lsn, record: &LogRecord) -> u64 {
    fn name(buf: &mut Vec<u8>, n: &ObjectName) {
        let s = n.to_string();
        buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(&lsn.to_le_bytes());
    match record {
        LogRecord::Begin { txn } => {
            buf.push(0);
            buf.extend_from_slice(&txn.to_le_bytes());
        }
        LogRecord::Prepare { txn } => {
            buf.push(1);
            buf.extend_from_slice(&txn.to_le_bytes());
        }
        LogRecord::Commit { txn, seq } => {
            buf.push(2);
            buf.extend_from_slice(&txn.to_le_bytes());
            buf.extend_from_slice(&seq.to_le_bytes());
        }
        LogRecord::Abort { txn } => {
            buf.push(3);
            buf.extend_from_slice(&txn.to_le_bytes());
        }
        LogRecord::Insert { txn, table, frame } => {
            buf.push(4);
            buf.extend_from_slice(&txn.to_le_bytes());
            name(&mut buf, table);
            buf.extend_from_slice(&wire::hash64(frame).to_le_bytes());
        }
        LogRecord::Marks { txn, table, positions } => {
            buf.push(5);
            buf.extend_from_slice(&txn.to_le_bytes());
            name(&mut buf, table);
            for (s, p) in positions {
                buf.extend_from_slice(&(*s as u64).to_le_bytes());
                buf.extend_from_slice(&(*p as u64).to_le_bytes());
            }
        }
        LogRecord::CreateTable { name: n, schema, dist_cols, slices } => {
            buf.push(6);
            name(&mut buf, n);
            buf.extend_from_slice(&wire::schema_fingerprint(schema).to_le_bytes());
            for d in dist_cols {
                buf.extend_from_slice(&(*d as u64).to_le_bytes());
            }
            buf.extend_from_slice(&(*slices as u64).to_le_bytes());
        }
        LogRecord::DropTable { name: n } => {
            buf.push(7);
            name(&mut buf, n);
        }
        LogRecord::Truncate { table } => {
            buf.push(8);
            name(&mut buf, table);
        }
        LogRecord::Groom { table } => {
            buf.push(9);
            name(&mut buf, table);
        }
        LogRecord::TornTail { lost } => {
            buf.push(10);
            buf.extend_from_slice(&lost.to_le_bytes());
        }
        LogRecord::Quarantine { table } => {
            buf.push(11);
            name(&mut buf, table);
        }
    }
    wire::hash64(&buf)
}

/// Frozen image of one data slice inside a [`Checkpoint`]: the rows as a
/// wire frame plus the MVCC version vectors, positionally aligned.
#[derive(Debug, Clone)]
pub struct SliceImage {
    /// All row versions of the slice, wire-encoded against the table
    /// schema (empty-row frames are valid and cheap).
    pub frame: Vec<u8>,
    pub created: Vec<TxnId>,
    pub deleted: Vec<TxnId>,
}

/// Frozen image of one table inside a [`Checkpoint`].
#[derive(Debug, Clone)]
pub struct TableImage {
    pub name: ObjectName,
    pub schema: Schema,
    pub dist_cols: Vec<usize>,
    /// Round-robin insert cursor at checkpoint time. Restoring it makes
    /// post-checkpoint replayed inserts land on the same slices as the
    /// original run, which keeps result-row order — and therefore encoded
    /// result frames and [`idaa_netsim::LinkMetrics`] — byte-identical.
    pub rr: usize,
    pub slices: Vec<SliceImage>,
}

/// A consistent full-state snapshot, atomically installed.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Virtual-clock time the checkpoint was taken.
    pub taken_at: Duration,
    /// Log records with `lsn <= covers_lsn` are reflected in the images;
    /// recovery replays only the tail past this watermark.
    pub covers_lsn: Lsn,
    /// MVCC commit watermark at checkpoint time.
    pub next_seq: CommitSeq,
    /// Full transaction-status map (sorted by id for determinism).
    pub txn_states: Vec<(TxnId, TxnStatus)>,
    /// Every table, sorted by name.
    pub tables: Vec<TableImage>,
}

impl Checkpoint {
    /// Approximate durable size in bytes (slice frames + version vectors +
    /// status map). Drives the recovery cost model and E16's table.
    pub fn bytes(&self) -> u64 {
        let mut n = 64 + 12 * self.txn_states.len() as u64;
        for t in &self.tables {
            n += 64 + 32 * t.schema.len() as u64;
            for s in &t.slices {
                n += s.frame.len() as u64 + 16 * s.created.len() as u64;
            }
        }
        n
    }
}

/// Deterministic checksum of a full checkpoint image (frames contribute
/// their `wire::hash64`). Written alongside the checkpoint and re-verified
/// before the checkpoint is trusted by recovery or the scrub.
fn checkpoint_fingerprint(cp: &Checkpoint) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(cp.taken_at.as_nanos() as u64).to_le_bytes());
    buf.extend_from_slice(&cp.covers_lsn.to_le_bytes());
    buf.extend_from_slice(&cp.next_seq.to_le_bytes());
    for (txn, status) in &cp.txn_states {
        buf.extend_from_slice(&txn.to_le_bytes());
        let (tag, seq) = match status {
            TxnStatus::Active => (0u8, 0),
            TxnStatus::Prepared => (1, 0),
            TxnStatus::Committed(s) => (2, *s),
            TxnStatus::Aborted => (3, 0),
        };
        buf.push(tag);
        buf.extend_from_slice(&seq.to_le_bytes());
    }
    for t in &cp.tables {
        let s = t.name.to_string();
        buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
        buf.extend_from_slice(&wire::schema_fingerprint(&t.schema).to_le_bytes());
        buf.extend_from_slice(&(t.rr as u64).to_le_bytes());
        for d in &t.dist_cols {
            buf.extend_from_slice(&(*d as u64).to_le_bytes());
        }
        for slice in &t.slices {
            buf.extend_from_slice(&wire::hash64(&slice.frame).to_le_bytes());
            for c in &slice.created {
                buf.extend_from_slice(&c.to_le_bytes());
            }
            for d in &slice.deleted {
                buf.extend_from_slice(&d.to_le_bytes());
            }
        }
    }
    wire::hash64(&buf)
}

/// A log record as it sits on the simulated disk: payload plus the
/// write-time checksum, and a torn marker for appends whose tail was lost
/// mid-write (set only by the `TORN_LOG_APPEND` storage fault — a torn
/// record was never acknowledged, so truncating it loses nothing).
#[derive(Debug, Clone)]
struct StoredRecord {
    lsn: Lsn,
    checksum: u64,
    torn: bool,
    record: LogRecord,
}

impl StoredRecord {
    fn valid(&self) -> bool {
        !self.torn && self.checksum == record_fingerprint(self.lsn, &self.record)
    }
}

/// A checkpoint as it sits on the simulated disk (image + write-time
/// checksum + torn marker for a crash mid-checkpoint-write).
#[derive(Debug, Clone)]
struct StoredCheckpoint {
    checksum: u64,
    torn: bool,
    checkpoint: Checkpoint,
}

impl StoredCheckpoint {
    fn valid(&self) -> bool {
        !self.torn && self.checksum == checkpoint_fingerprint(&self.checkpoint)
    }
}

/// What recovery needs to rebuild the engine: the newest checkpoint (if
/// any) and the log tail past it, in LSN order.
#[derive(Debug, Clone, Default)]
pub struct RecoverySet {
    pub checkpoint: Option<Checkpoint>,
    pub tail: Vec<(Lsn, LogRecord)>,
}

/// Result of a validating [`DurableStore::recover_scan`]: the recovery set
/// plus what self-healing had to do to produce it.
#[derive(Debug, Clone, Default)]
pub struct RecoveryScan {
    pub checkpoint: Option<Checkpoint>,
    pub tail: Vec<(Lsn, LogRecord)>,
    /// Torn tail records truncated (and durably re-logged as
    /// [`LogRecord::TornTail`]).
    pub torn_truncated: u64,
    /// Invalid (torn or rotted) checkpoints durably discarded in favor of
    /// an older valid one.
    pub checkpoint_fallbacks: u64,
    /// Total invalid items detected (torn tails + bad checkpoints + bad
    /// records).
    pub corruptions_detected: u64,
}

/// Durable state failed validation beyond local repair: acknowledged data
/// (a mid-tail record, or every checkpoint covering truncated log) is
/// unreadable. The node must be rebuilt from a replica or the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionBeyondRepair {
    /// Human-readable description of what failed validation.
    pub detail: String,
    /// Invalid items detected before the scan gave up.
    pub corruptions_detected: u64,
}

/// One background-scrub increment over the durable media (see
/// [`DurableStore::scrub_step`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Log records whose checksums were re-verified this step.
    pub scanned_records: u64,
    /// Durable bytes re-read for verification this step.
    pub scanned_bytes: u64,
    /// LSNs of log records that failed verification.
    pub corrupt_records: Vec<Lsn>,
    /// Checkpoints that failed verification (checked when the cursor
    /// wraps past the end of the log).
    pub corrupt_checkpoints: u64,
    /// True when this step wrapped around to the start of the media.
    pub wrapped: bool,
}

impl ScrubReport {
    /// Total invalid items this step found.
    pub fn corruptions(&self) -> u64 {
        self.corrupt_records.len() as u64 + self.corrupt_checkpoints
    }
}

/// How many retained checkpoints the store keeps. Two, so that a rotted
/// newest checkpoint can fall back to the previous one with the log tail
/// between them still on disk.
const RETAINED_CHECKPOINTS: usize = 2;

#[derive(Debug, Default)]
struct DurableInner {
    /// Retained checkpoints, oldest first (at most
    /// [`RETAINED_CHECKPOINTS`]).
    checkpoints: Vec<StoredCheckpoint>,
    log: Vec<StoredRecord>,
    next_lsn: Lsn,
    log_bytes: u64,
    last_checkpoint_at: Option<Duration>,
    /// Records with `lsn <= truncated_below` have been discarded from the
    /// log; recovery uses this to prove (or disprove) that a fallback
    /// checkpoint still has full log coverage.
    truncated_below: Lsn,
    /// Background-scrub position (index into `log`).
    scrub_cursor: usize,
}

impl DurableInner {
    fn newest_covers(&self) -> Lsn {
        self.checkpoints.last().map(|c| c.checkpoint.covers_lsn).unwrap_or(0)
    }

    fn truncate_log_below(&mut self, covers: Lsn) {
        self.log.retain(|r| r.lsn > covers);
        self.truncated_below = self.truncated_below.max(covers);
        self.log_bytes = self.log.iter().map(|r| r.record.bytes()).sum();
        self.scrub_cursor = self.scrub_cursor.min(self.log.len());
    }
}

/// The accelerator's in-memory "disk": survives [`crate::engine::AccelEngine::crash`]
/// (which wipes only volatile state) and feeds
/// [`crate::engine::AccelEngine::restart`].
#[derive(Debug, Default)]
pub struct DurableStore {
    inner: Mutex<DurableInner>,
}

impl DurableStore {
    /// Append one record; returns its LSN (1-based, strictly increasing).
    pub fn append(&self, record: LogRecord) -> Lsn {
        self.push(record, false)
    }

    /// Append one record whose tail is lost mid-write (the
    /// `TORN_LOG_APPEND` storage fault): the LSN is consumed and the
    /// record occupies the disk, but it is marked torn — recovery will
    /// detect and truncate it. The caller crashes immediately after, so
    /// the torn record is always the last one on disk.
    pub fn append_torn(&self, record: LogRecord) -> Lsn {
        self.push(record, true)
    }

    fn push(&self, record: LogRecord, torn: bool) -> Lsn {
        let mut inner = self.inner.lock();
        inner.next_lsn += 1;
        let lsn = inner.next_lsn;
        inner.log_bytes += record.bytes();
        let checksum = record_fingerprint(lsn, &record);
        inner.log.push(StoredRecord { lsn, checksum, torn, record });
        lsn
    }

    /// Highest LSN ever assigned (0 if the log was never written).
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// Records currently retained in the log.
    pub fn log_len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Records past the newest checkpoint's coverage — what a restart
    /// right now would replay. (The retained log can be longer: records
    /// between the two retained checkpoints stay on disk as fallback
    /// coverage.)
    pub fn tail_len(&self) -> usize {
        let inner = self.inner.lock();
        let covers = inner.newest_covers();
        inner.log.iter().filter(|r| r.lsn > covers).count()
    }

    /// Durable bytes currently retained in the log.
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log_bytes
    }

    /// Virtual time of the last installed checkpoint.
    pub fn last_checkpoint_at(&self) -> Option<Duration> {
        self.inner.lock().last_checkpoint_at
    }

    /// Atomically install `checkpoint`, replacing the oldest retained one
    /// once `RETAINED_CHECKPOINTS` are on disk, and truncate the log up
    /// to the *oldest retained* checkpoint's coverage watermark (keeping
    /// the tail between the retained checkpoints as fallback coverage).
    /// Until this call the previous checkpoints and the full log stay
    /// intact — a crash while *building* a checkpoint loses nothing.
    pub fn install_checkpoint(&self, checkpoint: Checkpoint) {
        let mut inner = self.inner.lock();
        inner.last_checkpoint_at = Some(checkpoint.taken_at);
        let checksum = checkpoint_fingerprint(&checkpoint);
        inner.checkpoints.push(StoredCheckpoint { checksum, torn: false, checkpoint });
        while inner.checkpoints.len() > RETAINED_CHECKPOINTS {
            inner.checkpoints.remove(0);
        }
        let covers = inner.checkpoints[0].checkpoint.covers_lsn;
        inner.truncate_log_below(covers);
    }

    /// Install a checkpoint whose write was torn mid-flight (the
    /// `TORN_CHECKPOINT` storage fault): the image occupies a retention
    /// slot but is marked torn, the log is *not* truncated, and
    /// `last_checkpoint_at` does not advance — the previous checkpoint
    /// stays authoritative and recovery discards this one.
    pub fn install_torn_checkpoint(&self, checkpoint: Checkpoint) {
        let mut inner = self.inner.lock();
        let checksum = checkpoint_fingerprint(&checkpoint);
        inner.checkpoints.push(StoredCheckpoint { checksum, torn: true, checkpoint });
        while inner.checkpoints.len() > RETAINED_CHECKPOINTS {
            inner.checkpoints.remove(0);
        }
    }

    /// Run `build` while holding the store's lock, excluding concurrent
    /// log appends, and hand it the current last LSN — this is how a
    /// checkpoint gets a consistent cut of state + watermark.
    pub fn with_consistent_cut<T>(&self, build: impl FnOnce(Lsn) -> T) -> T {
        let inner = self.inner.lock();
        build(inner.next_lsn)
    }

    /// Clone the newest non-torn checkpoint and the log tail past it,
    /// without checksum validation (the trusting legacy read — recovery
    /// itself goes through [`recover_scan`](Self::recover_scan)).
    pub fn recovery_set(&self) -> RecoverySet {
        let inner = self.inner.lock();
        let newest = inner.checkpoints.iter().rev().find(|c| !c.torn);
        let covers = newest.map(|c| c.checkpoint.covers_lsn).unwrap_or(0);
        RecoverySet {
            checkpoint: newest.map(|c| c.checkpoint.clone()),
            tail: inner
                .log
                .iter()
                .filter(|r| r.lsn > covers)
                .map(|r| (r.lsn, r.record.clone()))
                .collect(),
        }
    }

    /// Validating read of the recovery set, with durable self-healing:
    ///
    /// 1. Checkpoints are verified newest-first; torn or checksum-invalid
    ///    ones are durably discarded (`checkpoint_fallbacks`) and the
    ///    newest *valid* one is chosen.
    /// 2. If the chosen coverage needs log records that were already
    ///    truncated, acknowledged state is unreadable —
    ///    [`CorruptionBeyondRepair`].
    /// 3. The tail past the chosen coverage is verified record by record.
    ///    A torn final record is truncated and durably replaced (same
    ///    LSN) by a [`LogRecord::TornTail`] marker, so every later replay
    ///    makes the identical decision. A torn or checksum-invalid record
    ///    *before* the tail end was acknowledged —
    ///    [`CorruptionBeyondRepair`].
    ///
    /// The scan mutates only durable metadata (discarded checkpoints,
    /// truncated torn tails); it never invents or reorders records, so
    /// running it again returns the same set — replay stays idempotent.
    pub fn recover_scan(&self) -> Result<RecoveryScan, CorruptionBeyondRepair> {
        let mut inner = self.inner.lock();
        let mut scan = RecoveryScan::default();
        // 1. Choose the newest valid checkpoint, durably dropping invalid
        // ones (newest-first, so a valid older one survives the purge).
        while let Some(stored) = inner.checkpoints.last() {
            if stored.valid() {
                break;
            }
            scan.checkpoint_fallbacks += 1;
            scan.corruptions_detected += 1;
            inner.checkpoints.pop();
        }
        let chosen = inner.checkpoints.last().map(|c| c.checkpoint.clone());
        let covers = chosen.as_ref().map(|c| c.covers_lsn).unwrap_or(0);
        // 2. Coverage check: every record past `covers` must still be on
        // disk, else acknowledged state is unreadable.
        if inner.truncated_below > covers {
            return Err(CorruptionBeyondRepair {
                detail: format!(
                    "no valid checkpoint covers log records {}..={} (already truncated)",
                    covers + 1,
                    inner.truncated_below
                ),
                corruptions_detected: scan.corruptions_detected,
            });
        }
        // 3. Validate the tail. A torn record can only be the last write
        // before the crash; anything invalid earlier was acknowledged.
        let last_idx = inner.log.len().checked_sub(1);
        for i in 0..inner.log.len() {
            if inner.log[i].lsn <= covers {
                continue;
            }
            if inner.log[i].torn {
                if Some(i) != last_idx {
                    return Err(CorruptionBeyondRepair {
                        detail: format!(
                            "torn record at lsn {} is not the log tail",
                            inner.log[i].lsn
                        ),
                        corruptions_detected: scan.corruptions_detected + 1,
                    });
                }
                let lost = inner.log[i].lsn;
                let marker = LogRecord::TornTail { lost };
                let prior = inner.log[i].record.bytes();
                inner.log_bytes = inner.log_bytes - prior + marker.bytes();
                inner.log[i] = StoredRecord {
                    lsn: lost,
                    checksum: record_fingerprint(lost, &marker),
                    torn: false,
                    record: marker,
                };
                scan.torn_truncated += 1;
                scan.corruptions_detected += 1;
            } else if !inner.log[i].valid() {
                return Err(CorruptionBeyondRepair {
                    detail: format!(
                        "log record at lsn {} failed checksum verification",
                        inner.log[i].lsn
                    ),
                    corruptions_detected: scan.corruptions_detected + 1,
                });
            }
        }
        scan.tail = inner
            .log
            .iter()
            .filter(|r| r.lsn > covers)
            .map(|r| (r.lsn, r.record.clone()))
            .collect();
        scan.checkpoint = chosen;
        Ok(scan)
    }

    /// One background-scrub increment: re-verify up to `max_records` log
    /// records from the saved cursor, and when the cursor wraps past the
    /// end of the log, re-verify the retained checkpoints too. Detection
    /// only — repair (a fresh checkpoint excising the damage) is the
    /// engine's call, while the in-memory state is still authoritative.
    pub fn scrub_step(&self, max_records: usize) -> ScrubReport {
        let mut inner = self.inner.lock();
        let mut report = ScrubReport::default();
        let start = inner.scrub_cursor.min(inner.log.len());
        let end = (start + max_records.max(1)).min(inner.log.len());
        for r in &inner.log[start..end] {
            report.scanned_records += 1;
            report.scanned_bytes += r.record.bytes();
            if !r.valid() {
                report.corrupt_records.push(r.lsn);
            }
        }
        if end >= inner.log.len() {
            for c in &inner.checkpoints {
                report.scanned_bytes += c.checkpoint.bytes();
                if !c.valid() {
                    report.corrupt_checkpoints += 1;
                }
            }
            report.wrapped = true;
            inner.scrub_cursor = 0;
        } else {
            inner.scrub_cursor = end;
        }
        report
    }

    /// Durably excise everything a fresh checkpoint supersedes: retain
    /// only the newest checkpoint and drop every log record it covers.
    /// This is the scrub's repair step — after a fresh checkpoint of the
    /// (healthy, in-memory) state, any rotted older record or checkpoint
    /// is no longer needed and is destroyed.
    pub fn compact_to_latest(&self) {
        let mut inner = self.inner.lock();
        while inner.checkpoints.len() > 1 {
            inner.checkpoints.remove(0);
        }
        let covers = inner.newest_covers();
        inner.truncate_log_below(covers);
    }

    /// Flip a bit in one already-written log record, chosen by the seeded
    /// `draw` (the `BITROT_LOG_SEGMENT` storage fault). The damage lands
    /// in the stored checksum word, so the record fails verification
    /// exactly like payload rot would. Returns the damaged LSN, or `None`
    /// if the log is empty.
    pub fn rot_log(&self, draw: u64) -> Option<Lsn> {
        let mut inner = self.inner.lock();
        if inner.log.is_empty() {
            return None;
        }
        let idx = (draw % inner.log.len() as u64) as usize;
        let bit = (draw >> 32) % 64;
        inner.log[idx].checksum ^= 1 << bit;
        Some(inner.log[idx].lsn)
    }

    /// Flip a bit in one retained checkpoint, chosen by the seeded `draw`
    /// (the `BITROT_CHECKPOINT` storage fault). Prefers the newest
    /// checkpoint so the fallback path is exercised. Returns true if a
    /// checkpoint existed to damage.
    pub fn rot_checkpoint(&self, draw: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.checkpoints.is_empty() {
            return false;
        }
        let last = inner.checkpoints.len() - 1;
        let bit = (draw >> 32) % 64;
        inner.checkpoints[last].checksum ^= 1 << bit;
        true
    }

    /// Factory-wipe the disk (node rebuild from replica/host: everything
    /// local is discarded and re-created from scratch).
    pub fn reset(&self) {
        *self.inner.lock() = DurableInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_strictly_increasing_and_survive_truncation() {
        let store = DurableStore::default();
        let a = store.append(LogRecord::Begin { txn: 1 });
        let b = store.append(LogRecord::Commit { txn: 1, seq: 1 });
        assert!(b > a);
        store.install_checkpoint(Checkpoint {
            taken_at: Duration::ZERO,
            covers_lsn: b,
            next_seq: 1,
            txn_states: vec![],
            tables: vec![],
        });
        assert_eq!(store.log_len(), 0, "covered records truncated");
        let c = store.append(LogRecord::Begin { txn: 2 });
        assert!(c > b, "LSNs never restart after truncation");
        let rs = store.recovery_set();
        assert_eq!(rs.tail.len(), 1);
        assert_eq!(rs.tail[0].0, c);
    }

    #[test]
    fn checkpoint_install_is_atomic_until_called() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        // A checkpoint being "built" (nothing installed yet) leaves the
        // log intact — a crash mid-build recovers from the full log.
        assert_eq!(store.recovery_set().tail.len(), 1);
        assert!(store.recovery_set().checkpoint.is_none());
        assert_eq!(store.last_checkpoint_at(), None);
    }

    #[test]
    fn log_bytes_track_payload_sizes() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        let small = store.log_bytes();
        store.append(LogRecord::Insert {
            txn: 1,
            table: ObjectName::bare("T"),
            frame: vec![0u8; 1000],
        });
        assert!(store.log_bytes() >= small + 1000);
    }

    fn cp(covers: Lsn, at_us: u64) -> Checkpoint {
        Checkpoint {
            taken_at: Duration::from_micros(at_us),
            covers_lsn: covers,
            next_seq: 1,
            txn_states: vec![],
            tables: vec![],
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_relogged_idempotently() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        store.append_torn(LogRecord::Insert {
            txn: 1,
            table: ObjectName::bare("T"),
            frame: vec![9u8; 128],
        });
        let scan = store.recover_scan().expect("torn tail is repairable");
        assert_eq!(scan.torn_truncated, 1);
        assert_eq!(scan.corruptions_detected, 1);
        assert_eq!(scan.tail.len(), 2);
        assert!(matches!(scan.tail[1].1, LogRecord::TornTail { lost: 2 }));
        // A second scan sees the durably re-logged marker, not the tear.
        let again = store.recover_scan().expect("second scan clean");
        assert_eq!(again.torn_truncated, 0);
        assert_eq!(again.corruptions_detected, 0);
        assert_eq!(again.tail.len(), 2);
    }

    #[test]
    fn rotted_newest_checkpoint_falls_back_to_previous_valid_one() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        store.install_checkpoint(cp(1, 10));
        store.append(LogRecord::Begin { txn: 2 });
        store.install_checkpoint(cp(2, 20));
        assert!(store.rot_checkpoint(0));
        let scan = store.recover_scan().expect("older checkpoint still valid");
        assert_eq!(scan.checkpoint_fallbacks, 1);
        assert_eq!(scan.checkpoint.as_ref().map(|c| c.covers_lsn), Some(1));
        // The tail between the two checkpoints was retained on disk, so
        // the longer replay has full coverage.
        assert_eq!(scan.tail.len(), 1);
        assert_eq!(scan.tail[0].0, 2);
    }

    #[test]
    fn torn_checkpoint_leaves_previous_authoritative() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        store.install_checkpoint(cp(1, 10));
        let at = store.last_checkpoint_at();
        store.append(LogRecord::Begin { txn: 2 });
        store.install_torn_checkpoint(cp(2, 20));
        assert_eq!(store.last_checkpoint_at(), at, "torn install does not advance");
        let scan = store.recover_scan().expect("previous checkpoint valid");
        assert_eq!(scan.checkpoint_fallbacks, 1);
        assert_eq!(scan.checkpoint.as_ref().map(|c| c.covers_lsn), Some(1));
        assert_eq!(scan.tail.len(), 1, "tail past the authoritative checkpoint");
    }

    #[test]
    fn midtail_rot_is_beyond_repair() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        store.append(LogRecord::Commit { txn: 1, seq: 1 });
        let lsn = store.rot_log(0).expect("log non-empty");
        assert_eq!(lsn, 1);
        let err = store.recover_scan().expect_err("acknowledged rot is fatal");
        assert!(err.detail.contains("lsn 1"));
        assert_eq!(err.corruptions_detected, 1);
    }

    #[test]
    fn rot_below_every_checkpoint_is_beyond_repair_once_truncated() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        store.install_checkpoint(cp(1, 10));
        store.append(LogRecord::Begin { txn: 2 });
        store.install_checkpoint(cp(2, 20));
        // Rot both retained checkpoints: recovery has no valid coverage
        // for the records truncated at install time.
        assert!(store.rot_checkpoint(0));
        let mut scanned_both = false;
        // Rot the older one too (rot_checkpoint prefers the newest, so
        // pop the newest by scanning once — instead, damage via a second
        // call after the first fallback would happen at scan time; here
        // we simply rot the remaining one by installing nothing and
        // flipping again after recover_scan drops the newest).
        if store.recover_scan().is_ok() {
            assert!(store.rot_checkpoint(0));
            scanned_both = true;
        }
        let err = store.recover_scan().expect_err("no valid coverage left");
        assert!(scanned_both);
        assert!(err.detail.contains("already truncated"));
    }

    #[test]
    fn scrub_detects_rot_and_compaction_excises_it() {
        let store = DurableStore::default();
        for i in 0..10 {
            store.append(LogRecord::Begin { txn: i });
        }
        let lsn = store.rot_log(3).expect("log non-empty");
        let mut corrupt = Vec::new();
        let mut steps = 0;
        loop {
            let r = store.scrub_step(4);
            corrupt.extend(r.corrupt_records.clone());
            steps += 1;
            if r.wrapped {
                break;
            }
        }
        assert_eq!(corrupt, vec![lsn]);
        assert!(steps >= 3, "segment-sized steps, not one big scan");
        // Repair: fresh checkpoint covering everything + compaction.
        store.install_checkpoint(cp(store.last_lsn(), 99));
        store.compact_to_latest();
        assert_eq!(store.log_len(), 0);
        let scan = store.recover_scan().expect("rot excised");
        assert_eq!(scan.corruptions_detected, 0);
    }
}
