//! Durable accelerator storage: checkpoints plus an append-only commit log.
//!
//! The paper's transaction-awareness claim only matters if accelerator
//! state survives the accelerator itself failing. This module is the
//! in-memory stand-in for the appliance's disks: an atomically-installed
//! [`Checkpoint`] of every table heap plus the MVCC commit watermark, and
//! an LSN-ordered [`LogRecord`] stream of everything that changed since.
//! Row payloads inside log records and checkpoint images are encoded with
//! the `idaa_common::wire` codec — the same deterministic format that
//! crosses the host link — so recovery replays byte-identical row data.
//!
//! Recovery is `checkpoint + log tail`: [`crate::engine::AccelEngine::restart`]
//! restores the newest checkpoint and re-applies every logged record with
//! an LSN past the checkpoint's coverage, in log order. Because records
//! are LSN-stamped and the checkpoint remembers the LSN it covers, replay
//! is idempotent: replaying the same tail twice (or any prefix/suffix
//! re-chunking of it) reconstructs the same state.
//!
//! Timing is keyed off the netsim virtual clock: checkpoints are stamped
//! with the virtual time they were taken and the periodic-checkpoint
//! policy compares against that stamp, so the whole subsystem is
//! deterministic and consumes no wall-clock time.

use crate::mvcc::{CommitSeq, TxnId, TxnStatus};
use idaa_common::{ObjectName, Schema};
use parking_lot::Mutex;
use std::time::Duration;

/// Log sequence number (1-based; 0 means "before any record").
pub type Lsn = u64;

/// One durably-logged accelerator event.
///
/// Transaction lifecycle records mirror the 2PC protocol; data records
/// carry row payloads as wire-codec frames and delete-marks as explicit
/// `(slice, pos)` coordinates (physical logging — replay needs no
/// predicate re-evaluation, so it cannot diverge from the original run).
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// A (host) transaction enrolled on the accelerator.
    Begin { txn: TxnId },
    /// 2PC phase 1: the transaction voted YES and is now in-doubt.
    Prepare { txn: TxnId },
    /// 2PC phase 2: committed with this sequence number. Replay restores
    /// the exact sequence so snapshot visibility is reproduced bit-for-bit.
    Commit { txn: TxnId, seq: CommitSeq },
    /// Rolled back.
    Abort { txn: TxnId },
    /// Rows inserted by `txn` into `table`, encoded as one wire frame of
    /// already-schema-checked rows.
    Insert { txn: TxnId, table: ObjectName, frame: Vec<u8> },
    /// Delete-marks placed by `txn` in one statement: `(slice, pos)`
    /// version coordinates. Logged only after the statement's marks all
    /// succeeded, so replay applies them unconditionally.
    Marks { txn: TxnId, table: ObjectName, positions: Vec<(usize, usize)> },
    /// DDL: table created.
    CreateTable { name: ObjectName, schema: Schema, dist_cols: Vec<usize>, slices: usize },
    /// DDL: table dropped.
    DropTable { name: ObjectName },
    /// All versions removed (pre-reload truncation).
    Truncate { table: ObjectName },
    /// `GROOM` ran against the then-current transaction states. Replay
    /// re-runs it logically; the replayed registry is in the same state as
    /// the original was at this point in the log, so the same versions go.
    Groom { table: ObjectName },
}

impl LogRecord {
    /// Approximate durable size of this record in bytes (fixed header plus
    /// any wire-encoded payload). Used for log-volume metrics and the
    /// recovery-time cost model, never for protocol framing.
    pub fn bytes(&self) -> u64 {
        const RECORD_HEADER: u64 = 24;
        match self {
            LogRecord::Begin { .. }
            | LogRecord::Prepare { .. }
            | LogRecord::Commit { .. }
            | LogRecord::Abort { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::Truncate { .. }
            | LogRecord::Groom { .. } => RECORD_HEADER,
            LogRecord::Insert { frame, .. } => RECORD_HEADER + frame.len() as u64,
            LogRecord::Marks { positions, .. } => RECORD_HEADER + 16 * positions.len() as u64,
            LogRecord::CreateTable { schema, .. } => RECORD_HEADER + 32 * schema.len() as u64,
        }
    }
}

/// Frozen image of one data slice inside a [`Checkpoint`]: the rows as a
/// wire frame plus the MVCC version vectors, positionally aligned.
#[derive(Debug, Clone)]
pub struct SliceImage {
    /// All row versions of the slice, wire-encoded against the table
    /// schema (empty-row frames are valid and cheap).
    pub frame: Vec<u8>,
    pub created: Vec<TxnId>,
    pub deleted: Vec<TxnId>,
}

/// Frozen image of one table inside a [`Checkpoint`].
#[derive(Debug, Clone)]
pub struct TableImage {
    pub name: ObjectName,
    pub schema: Schema,
    pub dist_cols: Vec<usize>,
    /// Round-robin insert cursor at checkpoint time. Restoring it makes
    /// post-checkpoint replayed inserts land on the same slices as the
    /// original run, which keeps result-row order — and therefore encoded
    /// result frames and [`idaa_netsim::LinkMetrics`] — byte-identical.
    pub rr: usize,
    pub slices: Vec<SliceImage>,
}

/// A consistent full-state snapshot, atomically installed.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Virtual-clock time the checkpoint was taken.
    pub taken_at: Duration,
    /// Log records with `lsn <= covers_lsn` are reflected in the images;
    /// recovery replays only the tail past this watermark.
    pub covers_lsn: Lsn,
    /// MVCC commit watermark at checkpoint time.
    pub next_seq: CommitSeq,
    /// Full transaction-status map (sorted by id for determinism).
    pub txn_states: Vec<(TxnId, TxnStatus)>,
    /// Every table, sorted by name.
    pub tables: Vec<TableImage>,
}

impl Checkpoint {
    /// Approximate durable size in bytes (slice frames + version vectors +
    /// status map). Drives the recovery cost model and E16's table.
    pub fn bytes(&self) -> u64 {
        let mut n = 64 + 12 * self.txn_states.len() as u64;
        for t in &self.tables {
            n += 64 + 32 * t.schema.len() as u64;
            for s in &t.slices {
                n += s.frame.len() as u64 + 16 * s.created.len() as u64;
            }
        }
        n
    }
}

/// What recovery needs to rebuild the engine: the newest checkpoint (if
/// any) and the log tail past it, in LSN order.
#[derive(Debug, Clone, Default)]
pub struct RecoverySet {
    pub checkpoint: Option<Checkpoint>,
    pub tail: Vec<(Lsn, LogRecord)>,
}

#[derive(Debug, Default)]
struct DurableInner {
    checkpoint: Option<Checkpoint>,
    log: Vec<(Lsn, LogRecord)>,
    next_lsn: Lsn,
    log_bytes: u64,
    last_checkpoint_at: Option<Duration>,
}

/// The accelerator's in-memory "disk": survives [`crate::engine::AccelEngine::crash`]
/// (which wipes only volatile state) and feeds
/// [`crate::engine::AccelEngine::restart`].
#[derive(Debug, Default)]
pub struct DurableStore {
    inner: Mutex<DurableInner>,
}

impl DurableStore {
    /// Append one record; returns its LSN (1-based, strictly increasing).
    pub fn append(&self, record: LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        inner.next_lsn += 1;
        let lsn = inner.next_lsn;
        inner.log_bytes += record.bytes();
        inner.log.push((lsn, record));
        lsn
    }

    /// Highest LSN ever assigned (0 if the log was never written).
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// Records currently retained in the log (tail past the checkpoint).
    pub fn log_len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Durable bytes currently retained in the log.
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log_bytes
    }

    /// Virtual time of the last installed checkpoint.
    pub fn last_checkpoint_at(&self) -> Option<Duration> {
        self.inner.lock().last_checkpoint_at
    }

    /// Atomically install `checkpoint`, replacing any previous one, and
    /// truncate the log up to its coverage watermark. Until this call the
    /// previous checkpoint and the full log stay intact — a crash while
    /// *building* a checkpoint loses nothing.
    pub fn install_checkpoint(&self, checkpoint: Checkpoint) {
        let mut inner = self.inner.lock();
        let covers = checkpoint.covers_lsn;
        inner.last_checkpoint_at = Some(checkpoint.taken_at);
        inner.checkpoint = Some(checkpoint);
        inner.log.retain(|(lsn, _)| *lsn > covers);
        inner.log_bytes = inner.log.iter().map(|(_, r)| r.bytes()).sum();
    }

    /// Run `build` while holding the store's lock, excluding concurrent
    /// log appends, and hand it the current last LSN — this is how a
    /// checkpoint gets a consistent cut of state + watermark.
    pub fn with_consistent_cut<T>(&self, build: impl FnOnce(Lsn) -> T) -> T {
        let inner = self.inner.lock();
        build(inner.next_lsn)
    }

    /// Clone the newest checkpoint and the log tail past it.
    pub fn recovery_set(&self) -> RecoverySet {
        let inner = self.inner.lock();
        let covers = inner.checkpoint.as_ref().map(|c| c.covers_lsn).unwrap_or(0);
        RecoverySet {
            checkpoint: inner.checkpoint.clone(),
            tail: inner.log.iter().filter(|(lsn, _)| *lsn > covers).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_strictly_increasing_and_survive_truncation() {
        let store = DurableStore::default();
        let a = store.append(LogRecord::Begin { txn: 1 });
        let b = store.append(LogRecord::Commit { txn: 1, seq: 1 });
        assert!(b > a);
        store.install_checkpoint(Checkpoint {
            taken_at: Duration::ZERO,
            covers_lsn: b,
            next_seq: 1,
            txn_states: vec![],
            tables: vec![],
        });
        assert_eq!(store.log_len(), 0, "covered records truncated");
        let c = store.append(LogRecord::Begin { txn: 2 });
        assert!(c > b, "LSNs never restart after truncation");
        let rs = store.recovery_set();
        assert_eq!(rs.tail.len(), 1);
        assert_eq!(rs.tail[0].0, c);
    }

    #[test]
    fn checkpoint_install_is_atomic_until_called() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        // A checkpoint being "built" (nothing installed yet) leaves the
        // log intact — a crash mid-build recovers from the full log.
        assert_eq!(store.recovery_set().tail.len(), 1);
        assert!(store.recovery_set().checkpoint.is_none());
        assert_eq!(store.last_checkpoint_at(), None);
    }

    #[test]
    fn log_bytes_track_payload_sizes() {
        let store = DurableStore::default();
        store.append(LogRecord::Begin { txn: 1 });
        let small = store.log_bytes();
        store.append(LogRecord::Insert {
            txn: 1,
            table: ObjectName::bare("T"),
            frame: vec![0u8; 1000],
        });
        assert!(store.log_bytes() >= small + 1000);
    }
}
