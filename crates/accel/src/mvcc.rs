//! Multi-version concurrency control for the accelerator.
//!
//! Netezza executed IDAA queries under snapshot isolation; the paper's AOT
//! extension additionally requires the accelerator to be *aware of the DB2
//! transaction context*: a transaction must see its own uncommitted
//! changes, and concurrent statements of the same transaction must behave
//! consistently. This module implements exactly that visibility rule:
//!
//! > a row version is visible to snapshot S of transaction T iff
//! >   (created by T) or (creator committed with sequence ≤ S)
//! > and not
//! >   (deleted by T) or (deleter committed with sequence ≤ S)
//!
//! Transaction ids are the *host's* ids — the accelerator enrolls in DB2
//! transactions rather than running its own, which is what makes one-system
//! semantics (and the 2PC in `idaa-core`) possible.

use parking_lot::RwLock;
use std::collections::HashMap;

/// Host transaction id (0 is reserved for "never").
pub type TxnId = u64;

/// Monotonic commit sequence number.
pub type CommitSeq = u64;

/// Lifecycle of a transaction as known to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    Active,
    /// Voted YES in 2PC; changes still invisible to others.
    Prepared,
    Committed(CommitSeq),
    Aborted,
}

/// A consistent read point.
#[derive(Debug, Clone, Copy)]
pub struct Snapshot {
    /// Commit sequences `<= seq` are visible.
    pub seq: CommitSeq,
    /// The observing transaction (sees its own writes).
    pub me: TxnId,
}

/// Registry of transaction states, shared by all accelerator tables.
#[derive(Debug, Default)]
pub struct TxnRegistry {
    states: RwLock<HashMap<TxnId, TxnStatus>>,
    next_seq: RwLock<CommitSeq>,
}

impl TxnRegistry {
    /// Register a (host) transaction as active on the accelerator.
    pub fn begin(&self, txn: TxnId) {
        self.states.write().insert(txn, TxnStatus::Active);
    }

    /// 2PC vote: mark prepared. Errors are impossible here — an unknown txn
    /// id is registered on the fly (idempotent replays are normal in 2PC).
    pub fn prepare(&self, txn: TxnId) {
        self.states.write().insert(txn, TxnStatus::Prepared);
    }

    /// Commit, assigning the next commit sequence. Returns the sequence.
    ///
    /// Idempotent: committing an already-committed transaction returns its
    /// existing sequence without advancing the watermark — a redelivered
    /// phase-2 COMMIT (normal after coordinator retries or a crash–restart
    /// of the accelerator) must never re-order history.
    pub fn commit(&self, txn: TxnId) -> CommitSeq {
        let mut seq = self.next_seq.write();
        let mut states = self.states.write();
        if let Some(TxnStatus::Committed(existing)) = states.get(&txn) {
            return *existing;
        }
        *seq += 1;
        states.insert(txn, TxnStatus::Committed(*seq));
        *seq
    }

    /// Recovery replay: mark `txn` committed with the *original* sequence
    /// from its log record, advancing the watermark as needed. Restoring
    /// exact sequences reproduces snapshot visibility bit-for-bit.
    pub fn commit_at(&self, txn: TxnId, at: CommitSeq) {
        let mut seq = self.next_seq.write();
        *seq = (*seq).max(at);
        self.states.write().insert(txn, TxnStatus::Committed(at));
    }

    /// Abort.
    pub fn abort(&self, txn: TxnId) {
        self.states.write().insert(txn, TxnStatus::Aborted);
    }

    /// Current status (unknown ids are treated as aborted — conservative).
    pub fn status(&self, txn: TxnId) -> TxnStatus {
        self.states.read().get(&txn).copied().unwrap_or(TxnStatus::Aborted)
    }

    /// A snapshot at the current commit watermark for `me`.
    pub fn snapshot(&self, me: TxnId) -> Snapshot {
        Snapshot { seq: *self.next_seq.read(), me }
    }

    /// Highest commit sequence assigned.
    pub fn high_water(&self) -> CommitSeq {
        *self.next_seq.read()
    }

    /// Is `txn` definitely finished (committed or aborted)? Used by groom
    /// to decide which versions are reclaimable.
    pub fn is_finished(&self, txn: TxnId) -> bool {
        matches!(self.status(txn), TxnStatus::Committed(_) | TxnStatus::Aborted)
    }

    /// Transactions currently in the given status, sorted by id. Recovery
    /// uses this to enumerate in-doubt (`Prepared`) and in-flight
    /// (`Active`) transactions after log replay.
    pub fn with_status(&self, wanted: TxnStatus) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .states
            .read()
            .iter()
            .filter(|(_, s)| **s == wanted)
            .map(|(t, _)| *t)
            .collect();
        v.sort_unstable();
        v
    }

    /// Full status map sorted by transaction id (checkpointing and state
    /// fingerprints need a canonical order).
    pub fn all_states(&self) -> Vec<(TxnId, TxnStatus)> {
        let mut v: Vec<(TxnId, TxnStatus)> = self.states.read().iter().map(|(t, s)| (*t, *s)).collect();
        v.sort_unstable_by_key(|(t, _)| *t);
        v
    }

    /// Drop all volatile state (a crash lost it).
    pub fn reset(&self) {
        self.states.write().clear();
        *self.next_seq.write() = 0;
    }

    /// Restore a checkpointed status map and commit watermark.
    pub fn restore(&self, states: &[(TxnId, TxnStatus)], next_seq: CommitSeq) {
        let mut map = self.states.write();
        map.clear();
        map.extend(states.iter().copied());
        *self.next_seq.write() = next_seq;
    }

    /// Visibility of a creation event to `snap`.
    #[inline]
    pub fn created_visible(&self, created: TxnId, snap: &Snapshot) -> bool {
        if created == snap.me {
            return true;
        }
        matches!(self.status(created), TxnStatus::Committed(seq) if seq <= snap.seq)
    }

    /// Visibility of a deletion event to `snap` (0 = not deleted).
    #[inline]
    pub fn delete_visible(&self, deleted: TxnId, snap: &Snapshot) -> bool {
        if deleted == 0 {
            return false;
        }
        if deleted == snap.me {
            return true;
        }
        matches!(self.status(deleted), TxnStatus::Committed(seq) if seq <= snap.seq)
    }

    /// Full row-version visibility rule.
    #[inline]
    pub fn version_visible(&self, created: TxnId, deleted: TxnId, snap: &Snapshot) -> bool {
        self.created_visible(created, snap) && !self.delete_visible(deleted, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_uncommitted_writes_visible() {
        let reg = TxnRegistry::default();
        reg.begin(7);
        let snap = reg.snapshot(7);
        assert!(reg.version_visible(7, 0, &snap));
        // Another transaction does not see them.
        let other = reg.snapshot(8);
        assert!(!reg.version_visible(7, 0, &other));
    }

    #[test]
    fn own_deletes_hide_rows() {
        let reg = TxnRegistry::default();
        reg.begin(1);
        let c = reg.commit(1); // row created by committed txn 1
        reg.begin(2);
        let snap2 = reg.snapshot(2);
        assert!(reg.version_visible(1, 0, &snap2));
        // Txn 2 deletes it: immediately invisible to itself…
        assert!(!reg.version_visible(1, 2, &snap2));
        // …but still visible to a concurrent txn 3.
        reg.begin(3);
        let snap3 = reg.snapshot(3);
        assert!(reg.version_visible(1, 2, &snap3));
        let _ = c;
    }

    #[test]
    fn snapshot_isolation_ignores_later_commits() {
        let reg = TxnRegistry::default();
        reg.begin(1);
        reg.begin(2);
        let snap2 = reg.snapshot(2); // taken before txn 1 commits
        reg.commit(1);
        assert!(!reg.version_visible(1, 0, &snap2), "commit after snapshot is invisible");
        let fresh = reg.snapshot(3);
        assert!(reg.version_visible(1, 0, &fresh));
    }

    #[test]
    fn prepared_is_not_visible() {
        let reg = TxnRegistry::default();
        reg.begin(1);
        reg.prepare(1);
        let snap = reg.snapshot(2);
        assert!(!reg.version_visible(1, 0, &snap));
        reg.commit(1);
        let snap = reg.snapshot(2);
        assert!(reg.version_visible(1, 0, &snap));
    }

    #[test]
    fn aborted_never_visible() {
        let reg = TxnRegistry::default();
        reg.begin(1);
        reg.abort(1);
        let snap = reg.snapshot(2);
        assert!(!reg.version_visible(1, 0, &snap));
        // A delete by an aborted txn does not hide the row.
        reg.begin(3);
        reg.commit(3);
        let snap = reg.snapshot(4);
        assert!(reg.version_visible(3, 1, &snap));
    }

    #[test]
    fn unknown_txns_treated_as_aborted() {
        let reg = TxnRegistry::default();
        let snap = reg.snapshot(1);
        assert!(!reg.version_visible(999, 0, &snap));
    }

    #[test]
    fn commit_is_idempotent_and_replay_restores_sequences() {
        let reg = TxnRegistry::default();
        reg.begin(1);
        let s1 = reg.commit(1);
        assert_eq!(reg.commit(1), s1, "re-commit returns the original sequence");
        assert_eq!(reg.high_water(), s1, "watermark did not advance twice");
        // Replay restores exact sequences and the watermark follows.
        let reg2 = TxnRegistry::default();
        reg2.commit_at(9, 4);
        reg2.commit_at(3, 2);
        assert_eq!(reg2.high_water(), 4);
        assert_eq!(reg2.status(9), TxnStatus::Committed(4));
        assert_eq!(reg2.status(3), TxnStatus::Committed(2));
        // Restore from a checkpointed map.
        let reg3 = TxnRegistry::default();
        reg3.restore(&reg2.all_states(), reg2.high_water());
        assert_eq!(reg3.all_states(), reg2.all_states());
        assert_eq!(reg3.high_water(), 4);
        reg3.reset();
        assert_eq!(reg3.high_water(), 0);
        assert!(reg3.all_states().is_empty());
    }

    #[test]
    fn with_status_enumerates_sorted() {
        let reg = TxnRegistry::default();
        reg.begin(5);
        reg.begin(2);
        reg.begin(8);
        reg.prepare(8);
        reg.abort(5);
        assert_eq!(reg.with_status(TxnStatus::Active), vec![2]);
        assert_eq!(reg.with_status(TxnStatus::Prepared), vec![8]);
        assert_eq!(reg.with_status(TxnStatus::Aborted), vec![5]);
    }

    #[test]
    fn commit_sequences_monotonic() {
        let reg = TxnRegistry::default();
        reg.begin(1);
        reg.begin(2);
        let s1 = reg.commit(1);
        let s2 = reg.commit(2);
        assert!(s2 > s1);
        assert_eq!(reg.high_water(), s2);
        assert!(reg.is_finished(1) && reg.is_finished(2));
        reg.begin(3);
        assert!(!reg.is_finished(3));
    }
}
