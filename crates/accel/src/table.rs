//! Accelerator tables: hash-distributed data slices of versioned columns
//! with per-block zone maps.
//!
//! A table is split across `n` *data slices* (Netezza's S-Blades/dataslices;
//! here: independently lockable shards scanned in parallel). Within a
//! slice, rows live in columnar vectors plus two version vectors
//! (`created`/`deleted` transaction ids) implementing the MVCC rule from
//! [`crate::mvcc`]. Every 4096-row block keeps min/max *zone maps* per
//! numeric column, letting selective scans skip whole blocks — ablation
//! experiment E10 switches this off to measure its contribution.

use crate::column::Column;
use crate::mvcc::TxnId;
use idaa_common::{Error, ObjectName, Result, Row, Schema, Value};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per zone-map block.
pub const BLOCK_ROWS: usize = 4096;

/// Min/max summary of one block of one column.
#[derive(Debug, Clone, Copy)]
pub struct ZoneEntry {
    pub min: f64,
    pub max: f64,
    /// Any row in range (zone invalid/empty blocks never prune).
    pub valid: bool,
}

impl Default for ZoneEntry {
    fn default() -> Self {
        ZoneEntry { min: f64::INFINITY, max: f64::NEG_INFINITY, valid: false }
    }
}

impl ZoneEntry {
    fn extend(&mut self, v: Option<f64>) {
        // NULLs don't widen the range; blocks of pure NULLs stay invalid
        // (= unprunable, which is conservative and still sound).
        if let Some(x) = v {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
            self.valid = true;
        }
    }
}

/// One data slice: columnar row storage plus version vectors.
#[derive(Debug)]
pub struct Slice {
    pub columns: Vec<Column>,
    pub created: Vec<TxnId>,
    pub deleted: Vec<TxnId>,
    /// `zones[col][block]`.
    pub zones: Vec<Vec<ZoneEntry>>,
}

impl Slice {
    fn new(schema: &Schema) -> Slice {
        Slice {
            columns: schema.columns().iter().map(|c| Column::new(c.data_type)).collect(),
            created: Vec::new(),
            deleted: Vec::new(),
            zones: vec![Vec::new(); schema.len()],
        }
    }

    /// Number of row versions (live or not).
    pub fn version_count(&self) -> usize {
        self.created.len()
    }

    /// Number of [`BLOCK_ROWS`]-sized blocks this slice spans — the batch
    /// granularity of the vectorized scan (and of the zone maps).
    pub fn block_count(&self) -> usize {
        self.version_count().div_ceil(BLOCK_ROWS)
    }

    fn append(&mut self, row: &Row, txn: TxnId) -> Result<()> {
        let pos = self.created.len();
        let block = pos / BLOCK_ROWS;
        for (ci, (col, v)) in self.columns.iter_mut().zip(row).enumerate() {
            col.push(v)?;
            if self.zones[ci].len() <= block {
                self.zones[ci].push(ZoneEntry::default());
            }
            self.zones[ci][block].extend(col.numeric_at(pos));
        }
        self.created.push(txn);
        self.deleted.push(0);
        Ok(())
    }

    /// Materialize the full row at `pos`.
    pub fn row_at(&self, pos: usize) -> Row {
        self.columns.iter().map(|c| c.get(pos)).collect()
    }
}

/// A table stored on the accelerator (replicated copy of a DB2 table or an
/// accelerator-only table).
pub struct AccelTable {
    pub name: ObjectName,
    pub schema: Schema,
    /// Ordinals of the distribution key (empty = round robin).
    pub dist_cols: Vec<usize>,
    slices: Vec<RwLock<Slice>>,
    rr: AtomicUsize,
}

/// Position of one row version inside a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPos {
    pub slice: usize,
    pub pos: usize,
}

impl AccelTable {
    /// New table with `slices` data slices.
    pub fn new(
        name: ObjectName,
        schema: Schema,
        dist_cols: Vec<usize>,
        slices: usize,
    ) -> AccelTable {
        let slices = slices.max(1);
        AccelTable {
            dist_cols,
            slices: (0..slices).map(|_| RwLock::new(Slice::new(&schema))).collect(),
            rr: AtomicUsize::new(0),
            name,
            schema,
        }
    }

    /// The data slices (exec scans them, usually in parallel).
    pub fn slices(&self) -> &[RwLock<Slice>] {
        &self.slices
    }

    /// Round-robin insert cursor (checkpointed so crash-recovery replay
    /// routes re-applied inserts to the same slices as the original run).
    pub fn rr_cursor(&self) -> usize {
        self.rr.load(Ordering::Relaxed)
    }

    /// Restore the round-robin cursor from a checkpoint image.
    pub fn set_rr_cursor(&self, v: usize) {
        self.rr.store(v, Ordering::Relaxed);
    }

    /// Rebuild slice `si` verbatim from a checkpoint image: rows with
    /// their original creator/deleter transaction ids, in position order.
    /// Zone maps are rebuilt as a side effect of re-appending.
    pub fn restore_slice(
        &self,
        si: usize,
        rows: &[Row],
        created: &[TxnId],
        deleted: &[TxnId],
    ) -> Result<()> {
        let mut slice = self.slices[si].write();
        let mut fresh = Slice::new(&self.schema);
        for (pos, row) in rows.iter().enumerate() {
            fresh.append(row, created[pos])?;
            fresh.deleted[pos] = deleted[pos];
        }
        *slice = fresh;
        Ok(())
    }

    /// Recovery replay of a logged delete-mark: applied verbatim, with no
    /// conflict check — the original statement already won its conflicts
    /// before the mark was logged.
    pub fn replay_delete_mark(&self, at: RowPos, txn: TxnId) {
        self.slices[at.slice].write().deleted[at.pos] = txn;
    }

    /// Total stored versions across slices (live + dead).
    pub fn version_count(&self) -> usize {
        self.slices.iter().map(|s| s.read().version_count()).sum()
    }

    /// Fingerprint of every column dictionary's size across slices, in
    /// slice/column order. It changes whenever any dictionary admits a new
    /// code — exactly when compiled artifacts keyed on dictionary state
    /// (e.g. cached plans with memoized dictionary probes) must invalidate.
    pub fn dict_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for slice in &self.slices {
            let slice = slice.read();
            for c in &slice.columns {
                c.dictionary().map_or(0, <[String]>::len).hash(&mut h);
            }
        }
        h.finish()
    }

    fn target_slice(&self, row: &Row) -> usize {
        if self.dist_cols.is_empty() {
            return self.rr.fetch_add(1, Ordering::Relaxed) % self.slices.len();
        }
        let mut h = DefaultHasher::new();
        for &c in &self.dist_cols {
            row[c].hash(&mut h);
        }
        (h.finish() as usize) % self.slices.len()
    }

    /// Insert one row version created by `txn` (row must already satisfy
    /// the schema — callers run `check_row` first).
    pub fn insert(&self, row: &Row, txn: TxnId) -> Result<RowPos> {
        let si = self.target_slice(row);
        let mut slice = self.slices[si].write();
        slice.append(row, txn)?;
        Ok(RowPos { slice: si, pos: slice.version_count() - 1 })
    }

    /// Bulk append (replication batches / loader). Rows are routed to their
    /// slices in one pass per slice to amortize locking.
    pub fn insert_bulk(&self, rows: &[Row], txn: TxnId) -> Result<usize> {
        let mut buckets: Vec<Vec<&Row>> = vec![Vec::new(); self.slices.len()];
        for row in rows {
            buckets[self.target_slice(row)].push(row);
        }
        for (si, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut slice = self.slices[si].write();
            for row in bucket {
                slice.append(row, txn)?;
            }
        }
        Ok(rows.len())
    }

    /// Mark a row version deleted by `txn`. Enforces first-updater-wins:
    /// a version already deleted by a *live or committed* transaction
    /// cannot be deleted again (write-write conflict under SI).
    pub fn mark_deleted(
        &self,
        at: RowPos,
        txn: TxnId,
        is_dead: impl Fn(TxnId) -> bool,
    ) -> Result<()> {
        let mut slice = self.slices[at.slice].write();
        let cur = slice.deleted[at.pos];
        if cur != 0 && cur != txn && !is_dead(cur) {
            return Err(Error::LockTimeout(format!(
                "write-write conflict on {}: version already deleted by transaction {cur}",
                self.name
            )));
        }
        slice.deleted[at.pos] = txn;
        Ok(())
    }

    /// Undo a deletion mark set by `txn` (statement-level rollback).
    pub fn unmark_deleted(&self, at: RowPos, txn: TxnId) {
        let mut slice = self.slices[at.slice].write();
        if slice.deleted[at.pos] == txn {
            slice.deleted[at.pos] = 0;
        }
    }

    /// Reclaim dead versions: rows created by `aborted` transactions and
    /// rows whose deletion is visible to everyone. Returns versions removed.
    /// (Netezza's `GROOM TABLE`.)
    pub fn groom(
        &self,
        created_aborted: impl Fn(TxnId) -> bool,
        delete_final: impl Fn(TxnId) -> bool,
    ) -> usize {
        let mut removed = 0;
        for slice_lock in &self.slices {
            let mut slice = slice_lock.write();
            let keep: Vec<bool> = slice
                .created
                .iter()
                .zip(&slice.deleted)
                .map(|(&c, &d)| !(created_aborted(c) || (d != 0 && delete_final(d))))
                .collect();
            if keep.iter().all(|k| *k) {
                continue;
            }
            removed += keep.iter().filter(|k| !**k).count();
            let mut fresh = Slice::new(&self.schema);
            for (pos, k) in keep.iter().enumerate() {
                if *k {
                    let row = slice.row_at(pos);
                    fresh
                        .append(&row, slice.created[pos])
                        .expect("groom re-append cannot fail: types already validated");
                    let d = slice.deleted[pos];
                    let new_pos = fresh.version_count() - 1;
                    fresh.deleted[new_pos] = d;
                }
            }
            *slice = fresh;
        }
        removed
    }
}

/// Hash a full distribution key deterministically (exposed for tests).
pub fn hash_values(values: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("ID", DataType::Integer),
            ColumnDef::new("V", DataType::Double),
        ])
        .unwrap()
    }

    fn row(id: i32, v: f64) -> Row {
        vec![Value::Int(id), Value::Double(v)]
    }

    #[test]
    fn insert_routes_by_distribution_key() {
        let t = AccelTable::new(ObjectName::bare("T"), schema(), vec![0], 4);
        for i in 0..100 {
            t.insert(&row(i, i as f64), 1).unwrap();
        }
        assert_eq!(t.version_count(), 100);
        // Same key always lands on the same slice.
        let p1 = t.insert(&row(42, 0.0), 1).unwrap();
        let p2 = t.insert(&row(42, 1.0), 1).unwrap();
        assert_eq!(p1.slice, p2.slice);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let t = AccelTable::new(ObjectName::bare("T"), schema(), vec![], 4);
        for i in 0..40 {
            t.insert(&row(i, 0.0), 1).unwrap();
        }
        for s in t.slices() {
            assert_eq!(s.read().version_count(), 10);
        }
    }

    #[test]
    fn bulk_insert_equivalent() {
        let t = AccelTable::new(ObjectName::bare("T"), schema(), vec![0], 2);
        let rows: Vec<Row> = (0..50).map(|i| row(i, i as f64)).collect();
        assert_eq!(t.insert_bulk(&rows, 1).unwrap(), 50);
        assert_eq!(t.version_count(), 50);
    }

    #[test]
    fn zone_maps_track_min_max() {
        let t = AccelTable::new(ObjectName::bare("T"), schema(), vec![], 1);
        for i in 0..10 {
            t.insert(&row(i, (i * 10) as f64), 1).unwrap();
        }
        let slice = t.slices()[0].read();
        let z = slice.zones[1][0];
        assert!(z.valid);
        assert_eq!(z.min, 0.0);
        assert_eq!(z.max, 90.0);
    }

    #[test]
    fn write_write_conflict_detected() {
        let t = AccelTable::new(ObjectName::bare("T"), schema(), vec![], 1);
        let p = t.insert(&row(1, 1.0), 1).unwrap();
        t.mark_deleted(p, 2, |_| false).unwrap();
        let r = t.mark_deleted(p, 3, |_| false);
        assert!(matches!(r, Err(Error::LockTimeout(_))));
        // But if the first deleter aborted, the second may proceed.
        t.mark_deleted(p, 3, |txn| txn == 2).unwrap();
        // Re-delete by the same txn is idempotent.
        t.mark_deleted(p, 3, |_| false).unwrap();
    }

    #[test]
    fn unmark_restores_only_own_marks() {
        let t = AccelTable::new(ObjectName::bare("T"), schema(), vec![], 1);
        let p = t.insert(&row(1, 1.0), 1).unwrap();
        t.mark_deleted(p, 2, |_| false).unwrap();
        t.unmark_deleted(p, 3); // someone else's unmark is ignored
        assert!(t.mark_deleted(p, 3, |_| false).is_err());
        t.unmark_deleted(p, 2);
        t.mark_deleted(p, 3, |_| false).unwrap();
    }

    #[test]
    fn groom_reclaims_dead_versions() {
        let t = AccelTable::new(ObjectName::bare("T"), schema(), vec![], 2);
        for i in 0..20 {
            t.insert(&row(i, i as f64), 1).unwrap(); // txn 1: will commit
        }
        for i in 20..30 {
            t.insert(&row(i, i as f64), 2).unwrap(); // txn 2: will abort
        }
        // Delete five committed rows with txn 3 (committed).
        let mut marked = 0;
        for (si, slice_lock) in t.slices().iter().enumerate() {
            let count = slice_lock.read().version_count();
            for pos in 0..count {
                let (c, id) = {
                    let s = slice_lock.read();
                    (s.created[pos], s.row_at(pos)[0].as_i64().unwrap())
                };
                if c == 1 && id < 5 {
                    t.mark_deleted(RowPos { slice: si, pos }, 3, |_| false).unwrap();
                    marked += 1;
                }
            }
        }
        assert_eq!(marked, 5);
        let removed = t.groom(|c| c == 2, |d| d == 3);
        assert_eq!(removed, 15, "10 aborted inserts + 5 committed deletes");
        assert_eq!(t.version_count(), 15);
        // Zone maps were rebuilt and stay sound.
        for s in t.slices() {
            let s = s.read();
            for z in &s.zones[0] {
                if z.valid {
                    assert!(z.min >= 5.0);
                }
            }
        }
    }
}
