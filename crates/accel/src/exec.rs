//! Columnar, slice-parallel execution for the accelerator.
//!
//! The hot path is the scan: predicates of the shape `column <cmp> literal`
//! are compiled to typed kernels that run directly over the column vectors,
//! whole 4096-row blocks are skipped via zone maps, and data slices scan in
//! parallel threads. Rows are only materialized for positions that survive
//! visibility + kernel + residual filtering; the remaining operators
//! (join/aggregate/sort/…) then run over that much smaller set.

use crate::column::{Column, ColumnData};
use crate::engine::AccelEngine;
use crate::mvcc::Snapshot;
use crate::table::{AccelTable, Slice, ZoneEntry, BLOCK_ROWS};
use idaa_common::{ColumnDef, Result, Row, Rows, Schema, Value};
use idaa_sql::ast::{BinaryOp, Expr, JoinKind};
use idaa_sql::eval::{bind, eval, eval_predicate, AggState, BoundExpr, FlatResolver};
use idaa_sql::plan::{Plan, PlanCol, PlanProfile};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;

/// `Limit(Sort(…))` fuses into a bounded top-K selection when the limit is
/// at most this many rows (beyond that a full parallel sort wins).
const TOPK_MAX: u64 = 1024;

/// Run `f(0)..f(parts-1)` on scoped worker threads and return the results
/// in part order. The fixed partition order is what keeps every parallel
/// operator deterministic for a given configuration.
fn run_parts<T, F>(parts: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if parts <= 1 {
        return (0..parts).map(f).collect();
    }
    std::thread::scope(|scope| {
        let fr = &f;
        let handles: Vec<_> = (0..parts).map(|i| scope.spawn(move || fr(i))).collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    })
}

/// Execution context for one statement.
pub struct ExecCtx<'a> {
    pub engine: &'a AccelEngine,
    pub snap: Snapshot,
    /// When set, each executed plan node records its output cardinality
    /// (fused children stay unrecorded — fusion is visible in the profile).
    pub profile: Option<&'a PlanProfile>,
}

/// Execute a logical plan on the accelerator.
pub fn execute_plan(plan: &Plan, ctx: &ExecCtx) -> Result<Rows> {
    let rows = run(plan, ctx)?;
    let schema = Schema::new_unchecked(
        plan.cols()
            .into_iter()
            .map(|c| ColumnDef::new(c.name, c.data_type))
            .collect(),
    );
    Ok(Rows::new(schema, rows))
}

fn resolver_of(cols: &[PlanCol]) -> FlatResolver {
    FlatResolver::new(cols.iter().map(|c| (c.qualifier.clone(), c.name.clone())).collect())
}

pub(crate) fn run(plan: &Plan, ctx: &ExecCtx) -> Result<Vec<Row>> {
    run_masked(plan, ctx, None)
}

/// Dispatch one node and, when profiling, record its output cardinality on
/// the way out.
fn run_masked(plan: &Plan, ctx: &ExecCtx, needed: Option<Vec<bool>>) -> Result<Vec<Row>> {
    let rows = run_masked_inner(plan, ctx, needed)?;
    if let Some(prof) = ctx.profile {
        prof.record(plan, rows.len() as u64);
    }
    Ok(rows)
}

/// Union the column ordinals of `exprs` into a mask over `width` columns.
fn mask_of(width: usize, bound: &[&BoundExpr]) -> Vec<bool> {
    let mut set = std::collections::HashSet::new();
    for b in bound {
        b.collect_columns(&mut set);
    }
    (0..width).map(|i| set.contains(&i)).collect()
}

fn union_mask(a: Option<Vec<bool>>, b: Vec<bool>) -> Vec<bool> {
    match a {
        None => b,
        Some(a) => a.iter().zip(&b).map(|(x, y)| *x || *y).collect(),
    }
}

/// Execute with *projection pushdown*: `needed[i] == false` means the
/// caller never reads output column `i`, so scans may leave it NULL and
/// skip decoding the column vector — the columnar engine's signature
/// advantage.
fn run_masked_inner(plan: &Plan, ctx: &ExecCtx, needed: Option<Vec<bool>>) -> Result<Vec<Row>> {
    match plan {
        Plan::Scan { table, cols, .. } => {
            if cols.is_empty() && table.name == "SYSDUMMY1" {
                return Ok(vec![vec![]]);
            }
            let t = ctx.engine.table(table)?;
            scan_filtered_with(&t, None, ctx, needed)
        }
        Plan::Filter { input, predicate } => {
            if let Plan::Scan { table, .. } = input.as_ref() {
                let t = ctx.engine.table(table)?;
                let cols = input.cols();
                return scan_filtered_with(&t, Some((predicate, &cols)), ctx, needed);
            }
            let cols = input.cols();
            let bound = bind(predicate, &resolver_of(&cols))?;
            let child_mask = needed.map(|m| union_mask(Some(m), mask_of(cols.len(), &[&bound])));
            let rows = run_masked(input, ctx, child_mask)?;
            rows.into_iter()
                .filter_map(|row| match eval_predicate(&bound, &row) {
                    Ok(true) => Some(Ok(row)),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect()
        }
        Plan::Project { input, exprs, .. } => {
            let in_cols = input.cols();
            let resolver = resolver_of(&in_cols);
            let bound: Vec<BoundExpr> =
                exprs.iter().map(|(e, _)| bind(e, &resolver)).collect::<Result<_>>()?;
            let refs: Vec<&BoundExpr> = bound.iter().collect();
            let child_mask = mask_of(in_cols.len(), &refs);
            let rows = run_masked(input, ctx, Some(child_mask))?;
            rows.into_iter()
                .map(|row| bound.iter().map(|b| eval(b, &row)).collect())
                .collect()
        }
        Plan::Join { left, right, kind, on } => run_join(left, right, *kind, on, ctx),
        Plan::Aggregate { input, group_exprs, aggs, .. } => {
            if let Some(rows) = try_fused_aggregate(input, group_exprs, aggs, ctx)? {
                return Ok(rows);
            }
            run_aggregate(input, group_exprs, aggs, ctx)
        }
        Plan::Sort { input, keys } => {
            let in_width = input.cols().len();
            let child_mask = needed.map(|mut m| {
                m.resize(in_width, false);
                for (i, _) in keys {
                    if *i < in_width {
                        m[*i] = true;
                    }
                }
                m
            });
            let rows = run_masked(input, ctx, child_mask)?;
            Ok(sort_rows(rows, keys, ctx.engine.config.workers()))
        }
        Plan::Distinct { input } => {
            // Row-level dedup reads every column: no pushdown through here.
            let rows = run_masked(input, ctx, None)?;
            let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone(), ()).is_none() {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Limit { input, n } => {
            // `Limit(Sort(…))` fuses into a bounded top-K selection: keep the
            // `n` best rows by (sort key, input position) in one pass instead
            // of sorting everything. The position tiebreak makes the result
            // identical to a stable sort followed by truncation.
            if let Plan::Sort { input: sorted, keys } = input.as_ref() {
                if *n <= TOPK_MAX {
                    let in_width = sorted.cols().len();
                    let child_mask = needed.clone().map(|mut m| {
                        m.resize(in_width, false);
                        for (i, _) in keys {
                            if *i < in_width {
                                m[*i] = true;
                            }
                        }
                        m
                    });
                    let rows = run_masked(sorted, ctx, child_mask)?;
                    return Ok(top_k(rows, *n as usize, sort_cmp(keys)));
                }
            }
            let mut rows = run_masked(input, ctx, needed)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        Plan::KeepCols { input, n } => {
            let in_width = input.cols().len();
            let child_mask = needed.map(|mut m| {
                m.resize(in_width, false);
                m
            });
            let mut rows = run_masked(input, ctx, child_mask)?;
            for row in &mut rows {
                row.truncate(*n);
            }
            Ok(rows)
        }
        Plan::Union { left, right, all } => {
            // Plain UNION dedups on full rows, so branches must materialize
            // every column; UNION ALL can push the caller's mask through.
            let child_mask = if *all { needed } else { None };
            let mut rows = run_masked(left, ctx, child_mask.clone())?;
            rows.extend(run_masked(right, ctx, child_mask)?);
            if !*all {
                let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rows.len());
                rows.retain(|r| seen.insert(r.clone(), ()).is_none());
            }
            Ok(rows)
        }
    }
}

/// Scan with an optional predicate, materializing every column.
pub(crate) fn scan_filtered(
    table: &AccelTable,
    predicate: Option<&Expr>,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let cols: Vec<PlanCol> = table
        .schema
        .columns()
        .iter()
        .map(|c| PlanCol {
            qualifier: Some(table.name.name.clone()),
            name: c.name.clone(),
            data_type: c.data_type,
        })
        .collect();
    match predicate {
        Some(p) => scan_filtered_with(table, Some((p, cols.as_slice())), ctx, None),
        None => scan_filtered_with(table, None, ctx, None),
    }
}

/// A compiled single-column comparison kernel.
#[derive(Debug, Clone)]
enum Kernel {
    /// Numeric comparison against a constant.
    Num { col: usize, op: BinaryOp, val: f64 },
    /// String equality / inequality against a constant.
    Str { col: usize, val: String, negated: bool },
}

impl Kernel {
    /// Can the zone map of `z` prove no row in the block matches?
    fn prunes(&self, z: &ZoneEntry) -> bool {
        let Kernel::Num { op, val, .. } = self else { return false };
        if !z.valid {
            return false;
        }
        match op {
            BinaryOp::Eq => *val < z.min || *val > z.max,
            BinaryOp::Lt => z.min >= *val,
            BinaryOp::LtEq => z.min > *val,
            BinaryOp::Gt => z.max <= *val,
            BinaryOp::GtEq => z.max < *val,
            BinaryOp::Neq => z.min == z.max && z.min == *val,
            _ => false,
        }
    }

    /// Resolve this kernel against one slice. String kernels precompute a
    /// per-dictionary-code match table once, turning every row test into an
    /// integer lookup.
    fn specialize<'s>(&'s self, slice: &'s Slice) -> SpecKernel<'s> {
        match self {
            Kernel::Num { col, op, val } => SpecKernel::Num { col: *col, op: *op, val: *val },
            Kernel::Str { col, val, negated } => {
                let c: &Column = &slice.columns[*col];
                let (Some(dict), ColumnData::Str { codes, .. }) = (c.dictionary(), &c.data)
                else {
                    return SpecKernel::Never;
                };
                let want = val.trim_end_matches(' ');
                let matching: Vec<bool> = dict
                    .iter()
                    .map(|d| (d.trim_end_matches(' ') == want) != *negated)
                    .collect();
                SpecKernel::Str { col: *col, codes, matching }
            }
        }
    }
}

/// A [`Kernel`] resolved against one slice's physical data.
enum SpecKernel<'s> {
    Num { col: usize, op: BinaryOp, val: f64 },
    Str { col: usize, codes: &'s [u32], matching: Vec<bool> },
    /// Structurally impossible (e.g. non-dictionary column): matches nothing.
    Never,
}

impl SpecKernel<'_> {
    #[inline]
    fn matches(&self, slice: &Slice, pos: usize) -> bool {
        match self {
            SpecKernel::Num { col, op, val } => match slice.columns[*col].numeric_at(pos) {
                None => false,
                Some(x) => match op {
                    BinaryOp::Eq => x == *val,
                    BinaryOp::Neq => x != *val,
                    BinaryOp::Lt => x < *val,
                    BinaryOp::LtEq => x <= *val,
                    BinaryOp::Gt => x > *val,
                    BinaryOp::GtEq => x >= *val,
                    _ => false,
                },
            },
            SpecKernel::Str { col, codes, matching } => {
                !slice.columns[*col].nulls.is_null(pos) && matching[codes[pos] as usize]
            }
            SpecKernel::Never => false,
        }
    }
}

/// Try to compile one conjunct into a kernel over `table`'s columns.
fn compile_kernel(conj: &Expr, table: &AccelTable, scan_cols: &[PlanCol]) -> Option<Kernel> {
    let Expr::Binary { left, op, right } = conj else { return None };
    let (col_expr, lit, op) = match (left.as_ref(), right.as_ref()) {
        (Expr::Column { .. }, Expr::Literal(v)) => (left.as_ref(), v, *op),
        (Expr::Literal(v), Expr::Column { .. }) => (right.as_ref(), v, flip(*op)?),
        _ => return None,
    };
    let Expr::Column { qualifier, name } = col_expr else { return None };
    // The qualifier must refer to this scan.
    if let Some(q) = qualifier {
        if !scan_cols.iter().any(|c| c.qualifier.as_deref() == Some(q.as_str())) {
            return None;
        }
    }
    let ordinal = table.schema.index_of(name).ok()?;
    let col_type = table.schema.columns()[ordinal].data_type;
    if col_type.is_numeric() || matches!(col_type, idaa_common::DataType::Date | idaa_common::DataType::Timestamp | idaa_common::DataType::Boolean)
    {
        let val = match lit {
            Value::Null => return None,
            v => v.as_f64().ok()?,
        };
        // Kernels compare in f64. An integer literal beyond 2^53 is not
        // exactly representable, which would make equality kernels lie —
        // leave such predicates to the exact residual evaluator.
        if let Ok(i) = lit.as_i64() {
            if (val as i64) != i {
                return None;
            }
        }
        if matches!(op, BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq)
        {
            return Some(Kernel::Num { col: ordinal, op, val });
        }
        return None;
    }
    if col_type.is_character() {
        let Value::Varchar(s) = lit else { return None };
        match op {
            BinaryOp::Eq => return Some(Kernel::Str { col: ordinal, val: s.clone(), negated: false }),
            BinaryOp::Neq => return Some(Kernel::Str { col: ordinal, val: s.clone(), negated: true }),
            _ => return None,
        }
    }
    None
}

fn flip(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Eq => BinaryOp::Eq,
        BinaryOp::Neq => BinaryOp::Neq,
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        _ => return None,
    })
}

fn scan_filtered_with(
    table: &AccelTable,
    pred: Option<(&Expr, &[PlanCol])>,
    ctx: &ExecCtx,
    needed: Option<Vec<bool>>,
) -> Result<Vec<Row>> {
    // Compile conjuncts into kernels plus a residual predicate.
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut residual: Option<BoundExpr> = None;
    if let Some((predicate, scan_cols)) = pred {
        let mut leftover: Vec<&Expr> = Vec::new();
        for conj in idaa_host_conjuncts(predicate) {
            match compile_kernel(conj, table, scan_cols) {
                Some(k) => kernels.push(k),
                None => leftover.push(conj),
            }
        }
        if !leftover.is_empty() {
            let resolver = resolver_of(scan_cols);
            let combined = leftover
                .into_iter()
                .cloned()
                .reduce(|a, b| Expr::Binary {
                    left: Box::new(a),
                    op: BinaryOp::And,
                    right: Box::new(b),
                })
                .expect("non-empty");
            residual = Some(bind(&combined, &resolver)?);
        }
    }
    // Effective materialization mask: what the caller reads plus what the
    // residual predicate reads. Kernel columns are evaluated directly on
    // the typed vectors and need no materialization.
    let width = table.schema.len();
    let mask: Option<Vec<bool>> = match (&needed, &residual) {
        (None, _) => None,
        (Some(m), None) => Some(m.clone()),
        (Some(m), Some(res)) => {
            let mut set = std::collections::HashSet::new();
            res.collect_columns(&mut set);
            Some((0..width).map(|i| m.get(i).copied().unwrap_or(false) || set.contains(&i)).collect())
        }
    };

    let engine = ctx.engine;
    let use_zones = engine.config.zone_maps;
    let snap = ctx.snap;
    let slices = table.slices();

    let scan_one = |slice_lock: &parking_lot::RwLock<Slice>| -> Result<Vec<Row>> {
        let slice = slice_lock.read();
        let spec: Vec<SpecKernel> = kernels.iter().map(|k| k.specialize(&slice)).collect();
        let total = slice.version_count();
        let mut out = Vec::new();
        let blocks = total.div_ceil(BLOCK_ROWS);
        for b in 0..blocks {
            engine.stats.blocks_scanned.fetch_add(1, Ordering::Relaxed);
            if use_zones
                && kernels.iter().any(|k| {
                    let Kernel::Num { col, .. } = k else { return false };
                    slice.zones[*col].get(b).map(|z| k.prunes(z)).unwrap_or(false)
                })
            {
                engine.stats.blocks_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let start = b * BLOCK_ROWS;
            let end = (start + BLOCK_ROWS).min(total);
            'row: for pos in start..end {
                if !engine
                    .txns
                    .version_visible(slice.created[pos], slice.deleted[pos], &snap)
                {
                    continue;
                }
                for k in &spec {
                    if !k.matches(&slice, pos) {
                        continue 'row;
                    }
                }
                let row: Row = match &mask {
                    None => slice.row_at(pos),
                    Some(m) => slice
                        .columns
                        .iter()
                        .enumerate()
                        .map(|(i, c)| if m[i] { c.get(pos) } else { Value::Null })
                        .collect(),
                };
                if let Some(res) = &residual {
                    if !eval_predicate(res, &row)? {
                        continue;
                    }
                }
                out.push(row);
            }
            engine
                .stats
                .rows_scanned
                .fetch_add((end - start) as u64, Ordering::Relaxed);
        }
        Ok(out)
    };

    if engine.config.parallel && slices.len() > 1 {
        let results: Vec<Result<Vec<Row>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|s| scope.spawn(|| scan_one(s)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("scan thread panicked")).collect()
        });
        let mut out = Vec::new();
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    } else {
        let mut out = Vec::new();
        for s in slices {
            out.extend(scan_one(s)?);
        }
        Ok(out)
    }
}

/// Conjunct splitting (same shape as the host's — duplicated on purpose:
/// the engines are independent systems in the architecture).
fn idaa_host_conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut out = idaa_host_conjuncts(left);
            out.extend(idaa_host_conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// Comparator over `Plan::Sort` keys (shared by sort and top-K).
fn sort_cmp(keys: &[(usize, bool)]) -> impl Fn(&Row, &Row) -> std::cmp::Ordering + Sync + '_ {
    move |a, b| {
        for (i, desc) in keys {
            let o = a[*i].cmp_total(&b[*i]);
            let o = if *desc { o.reverse() } else { o };
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    }
}

/// Stable sort, parallelized as chunk-sorts plus a k-way merge that breaks
/// ties toward the earliest chunk — output is identical to a serial stable
/// sort regardless of worker count.
fn sort_rows(mut rows: Vec<Row>, keys: &[(usize, bool)], workers: usize) -> Vec<Row> {
    let cmp = sort_cmp(keys);
    if workers <= 1 || rows.len() <= 1 {
        rows.sort_by(&cmp);
        return rows;
    }
    let chunk = rows.len().div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        for part in rows.chunks_mut(chunk) {
            let c = &cmp;
            scope.spawn(move || part.sort_by(c));
        }
    });
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    while start < rows.len() {
        let end = (start + chunk).min(rows.len());
        bounds.push((start, end));
        start = end;
    }
    let mut cursors: Vec<usize> = bounds.iter().map(|(s, _)| *s).collect();
    let mut out = Vec::with_capacity(rows.len());
    loop {
        let mut best: Option<usize> = None;
        for ci in 0..bounds.len() {
            if cursors[ci] >= bounds[ci].1 {
                continue;
            }
            best = match best {
                None => Some(ci),
                Some(b)
                    if cmp(&rows[cursors[ci]], &rows[cursors[b]])
                        == std::cmp::Ordering::Less =>
                {
                    Some(ci)
                }
                keep => keep,
            };
        }
        match best {
            None => break,
            Some(b) => {
                out.push(std::mem::take(&mut rows[cursors[b]]));
                cursors[b] += 1;
            }
        }
    }
    out
}

/// Bounded top-K selection: the `k` smallest rows under `(cmp, input
/// position)`, in that order — exactly a stable sort followed by
/// `truncate(k)`, without sorting the rest.
fn top_k<F: Fn(&Row, &Row) -> std::cmp::Ordering>(rows: Vec<Row>, k: usize, cmp: F) -> Vec<Row> {
    if k == 0 {
        return Vec::new();
    }
    // Sorted buffer of the current best k, worst last. Entries carry their
    // input position so ties keep first-seen order (stable-sort semantics).
    let mut buf: Vec<(usize, Row)> = Vec::with_capacity(k + 1);
    for (seq, row) in rows.into_iter().enumerate() {
        if buf.len() == k {
            let (_, worst) = buf.last().expect("k > 0");
            // Existing entries always have earlier positions, so an Equal
            // comparison means the newcomer loses the tiebreak too.
            if cmp(&row, worst) != std::cmp::Ordering::Less {
                continue;
            }
        }
        let pos = buf.partition_point(|(_, b)| cmp(b, &row) != std::cmp::Ordering::Greater);
        buf.insert(pos, (seq, row));
        buf.truncate(k);
    }
    buf.into_iter().map(|(_, r)| r).collect()
}

/// Evaluate a key tuple for one row: `None` when any component is NULL (SQL
/// join keys never match on NULL), else the tuple plus its 64-bit hash so
/// the probe loop works with integers instead of re-hashing `Vec<Value>`s.
fn key_of(keys: &[BoundExpr], row: &Row) -> Result<Option<(u64, Vec<Value>)>> {
    let key: Vec<Value> = keys.iter().map(|k| eval(k, row)).collect::<Result<_>>()?;
    if key.iter().any(Value::is_null) {
        return Ok(None);
    }
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    Ok(Some((hasher.finish(), key)))
}

fn run_join(
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    on: &Expr,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let lcols = left.cols();
    let rcols = right.cols();
    let lres = resolver_of(&lcols);
    let rres = resolver_of(&rcols);
    let combined = lres.concat(&rres);
    let bound_on = bind(on, &combined)?;

    let lrows = run_masked(left, ctx, None)?;
    let rrows = run_masked(right, ctx, None)?;

    let conjs = idaa_host_conjuncts(on);
    let total_conjs = conjs.len();
    let mut lkeys: Vec<BoundExpr> = Vec::new();
    let mut rkeys: Vec<BoundExpr> = Vec::new();
    for conj in conjs {
        if let Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = conj {
            if let (Ok(la), Ok(rb)) = (bind(a, &lres), bind(b, &rres)) {
                lkeys.push(la);
                rkeys.push(rb);
                continue;
            }
            if let (Ok(lb), Ok(ra)) = (bind(b, &lres), bind(a, &rres)) {
                lkeys.push(lb);
                rkeys.push(ra);
            }
        }
    }
    // When every ON conjunct became an equi-key pair, key equality *is* the
    // whole predicate — matched candidates skip the per-row ON re-check.
    let on_covered = lkeys.len() == total_conjs;

    let rwidth = rcols.len();
    let workers = ctx.engine.config.workers();
    if lkeys.is_empty() {
        nested_loop_join(&lrows, &rrows, kind, &bound_on, rwidth, workers)
    } else {
        let residual_on = if on_covered { None } else { Some(&bound_on) };
        hash_join(&lrows, &rrows, kind, &lkeys, &rkeys, residual_on, rwidth, workers)
    }
}

/// Partitioned parallel hash join: both sides are split by key hash across
/// the worker pool, each partition builds and probes independently, and
/// partition outputs concatenate in partition order (deterministic for a
/// given configuration). LEFT-join padding stays correct because a probe
/// row's key maps it to exactly one partition; probe rows with NULL keys
/// ride along in partition 0 and can only null-extend.
#[allow(clippy::too_many_arguments)]
fn hash_join(
    lrows: &[Row],
    rrows: &[Row],
    kind: JoinKind,
    lkeys: &[BoundExpr],
    rkeys: &[BoundExpr],
    residual_on: Option<&BoundExpr>,
    rwidth: usize,
    workers: usize,
) -> Result<Vec<Row>> {
    let rkeyed: Vec<Option<(u64, Vec<Value>)>> =
        rrows.iter().map(|r| key_of(rkeys, r)).collect::<Result<_>>()?;
    let lkeyed: Vec<Option<(u64, Vec<Value>)>> =
        lrows.iter().map(|r| key_of(lkeys, r)).collect::<Result<_>>()?;

    let parts = workers.clamp(1, lrows.len().max(1));
    let mut build_parts: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (i, k) in rkeyed.iter().enumerate() {
        if let Some((h, _)) = k {
            build_parts[(h % parts as u64) as usize].push(i);
        }
    }
    let mut probe_parts: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (i, k) in lkeyed.iter().enumerate() {
        let h = k.as_ref().map(|(h, _)| *h).unwrap_or(0);
        probe_parts[(h % parts as u64) as usize].push(i);
    }

    let results = run_parts(parts, |p| -> Result<Vec<Row>> {
        let mut table: HashMap<u64, Vec<usize>> =
            HashMap::with_capacity(build_parts[p].len());
        for &ri in &build_parts[p] {
            let (h, _) = rkeyed[ri].as_ref().expect("build partitions hold keyed rows");
            table.entry(*h).or_default().push(ri);
        }
        let mut out = Vec::new();
        for &li in &probe_parts[p] {
            let mut matched = false;
            if let Some((h, key)) = &lkeyed[li] {
                if let Some(cands) = table.get(h) {
                    for &ri in cands {
                        let (_, rkey) = rkeyed[ri].as_ref().expect("keyed");
                        if rkey != key {
                            continue; // same hash bucket, different key
                        }
                        let mut j = lrows[li].clone();
                        j.extend(rrows[ri].iter().cloned());
                        if let Some(b) = residual_on {
                            if !eval_predicate(b, &j)? {
                                continue;
                            }
                        }
                        matched = true;
                        out.push(j);
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut j = lrows[li].clone();
                j.extend(std::iter::repeat_n(Value::Null, rwidth));
                out.push(j);
            }
        }
        Ok(out)
    });
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Nested-loop join for non-equi conditions, parallelized over contiguous
/// probe chunks — chunk order concatenation reproduces the serial output
/// exactly.
fn nested_loop_join(
    lrows: &[Row],
    rrows: &[Row],
    kind: JoinKind,
    bound_on: &BoundExpr,
    rwidth: usize,
    workers: usize,
) -> Result<Vec<Row>> {
    let chunk = lrows.len().div_ceil(workers.max(1)).max(1);
    let chunks: Vec<&[Row]> = lrows.chunks(chunk).collect();
    let results = run_parts(chunks.len(), |ci| -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for lrow in chunks[ci] {
            let mut matched = false;
            for rrow in rrows {
                let mut j = lrow.clone();
                j.extend(rrow.iter().cloned());
                if eval_predicate(bound_on, &j)? {
                    matched = true;
                    out.push(j);
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut j = lrow.clone();
                j.extend(std::iter::repeat_n(Value::Null, rwidth));
                out.push(j);
            }
        }
        Ok(out)
    });
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Fused vectorized aggregation: when the plan is `Aggregate(Filter(Scan))`
/// (or `Aggregate(Scan)`), every group key and aggregate argument is a bare
/// column, and the whole predicate compiles to kernels, aggregate states are
/// fed *directly from the column vectors* — no row materialization, no
/// per-row expression interpretation. This is the accelerator's bread and
/// butter for reporting queries.
fn try_fused_aggregate(
    input: &Plan,
    group_exprs: &[Expr],
    aggs: &[idaa_sql::plan::AggCall],
    ctx: &ExecCtx,
) -> Result<Option<Vec<Row>>> {
    let (table_name, predicate, scan_cols) = match input {
        Plan::Scan { table, cols, .. } if !cols.is_empty() => (table, None, cols.clone()),
        Plan::Filter { input: inner, predicate } => match inner.as_ref() {
            Plan::Scan { table, cols, .. } if !cols.is_empty() => {
                (table, Some(predicate), cols.clone())
            }
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let table = ctx.engine.table(table_name)?;
    // Group keys must be bare columns of the scan; aggregate arguments may
    // additionally be scalar expressions over scan columns (CAST, arithmetic
    // on a column, …) — those evaluate against a scratch row holding only
    // the columns the expression reads.
    let resolver = resolver_of(&scan_cols);
    let mut key_ords = Vec::with_capacity(group_exprs.len());
    for g in group_exprs {
        match bind(g, &resolver) {
            Ok(b) => match b.as_column() {
                Some(i) => key_ords.push(i),
                None => return Ok(None),
            },
            Err(_) => return Ok(None),
        }
    }
    enum FusedArg {
        Star,
        Col(usize),
        Expr(BoundExpr),
    }
    let mut fused_args: Vec<FusedArg> = Vec::with_capacity(aggs.len());
    let mut expr_cols: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for a in aggs {
        match &a.arg {
            None => fused_args.push(FusedArg::Star),
            Some(e) => match bind(e, &resolver) {
                Ok(b) => match b.as_column() {
                    Some(i) => fused_args.push(FusedArg::Col(i)),
                    None => {
                        b.collect_columns(&mut expr_cols);
                        fused_args.push(FusedArg::Expr(b));
                    }
                },
                Err(_) => return Ok(None),
            },
        }
    }
    let expr_cols: Vec<usize> = {
        let mut v: Vec<usize> = expr_cols.into_iter().collect();
        v.sort_unstable();
        v
    };
    // The whole predicate must compile to kernels.
    let mut kernels: Vec<Kernel> = Vec::new();
    if let Some(pred) = predicate {
        for conj in idaa_host_conjuncts(pred) {
            match compile_kernel(conj, &table, &scan_cols) {
                Some(k) => kernels.push(k),
                None => return Ok(None),
            }
        }
    }

    let engine = ctx.engine;
    let use_zones = engine.config.zone_maps;
    let snap = ctx.snap;
    let width = table.schema.len();
    let slices = table.slices();

    let fuse_slice = |slice_lock: &parking_lot::RwLock<crate::table::Slice>| -> Result<Groups> {
        let slice = slice_lock.read();
        let spec: Vec<SpecKernel> = kernels.iter().map(|k| k.specialize(&slice)).collect();
        let total = slice.version_count();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Groups = Vec::new();
        // Scratch row for expression arguments: only the ordinals an
        // expression reads are ever filled in.
        let mut scratch: Row = vec![Value::Null; width];
        let blocks = total.div_ceil(BLOCK_ROWS);
        for b in 0..blocks {
            engine.stats.blocks_scanned.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if use_zones
                && kernels.iter().any(|k| {
                    let Kernel::Num { col, .. } = k else { return false };
                    slice.zones[*col].get(b).map(|z| k.prunes(z)).unwrap_or(false)
                })
            {
                engine.stats.blocks_pruned.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                continue;
            }
            let start = b * BLOCK_ROWS;
            let end = (start + BLOCK_ROWS).min(total);
            'row: for pos in start..end {
                if !engine.txns.version_visible(slice.created[pos], slice.deleted[pos], &snap) {
                    continue;
                }
                for k in &spec {
                    if !k.matches(&slice, pos) {
                        continue 'row;
                    }
                }
                let key: Vec<Value> =
                    key_ords.iter().map(|&i| slice.columns[i].get(pos)).collect();
                let gi = match index.get(&key) {
                    Some(&i) => i,
                    None => {
                        groups.push((
                            key.clone(),
                            aggs.iter().map(|a| AggState::new(a.kind, a.distinct)).collect(),
                        ));
                        index.insert(key, groups.len() - 1);
                        groups.len() - 1
                    }
                };
                if !expr_cols.is_empty() {
                    for &c in &expr_cols {
                        scratch[c] = slice.columns[c].get(pos);
                    }
                }
                for (state, arg) in groups[gi].1.iter_mut().zip(&fused_args) {
                    let v = match arg {
                        FusedArg::Col(i) => slice.columns[*i].get(pos),
                        FusedArg::Expr(b) => eval(b, &scratch)?,
                        FusedArg::Star => Value::Null,
                    };
                    state.update(&v)?;
                }
            }
            engine
                .stats
                .rows_scanned
                .fetch_add((end - start) as u64, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(groups)
    };

    // One partial per slice, scanned in parallel like the base scan, merged
    // in slice order so group order matches the serial pass.
    let partials: Vec<Groups> = if engine.config.parallel && slices.len() > 1 {
        run_parts(slices.len(), |si| fuse_slice(&slices[si])).into_iter().collect::<Result<_>>()?
    } else {
        let mut v = Vec::with_capacity(slices.len());
        for s in slices {
            v.push(fuse_slice(s)?);
        }
        v
    };
    let groups = merge_groups(partials)?;
    Ok(Some(finish_groups(groups, group_exprs, aggs)?))
}

/// Grouped partial-aggregation state: insertion-ordered groups plus a key
/// index. Insertion order is what makes chunked aggregation deterministic —
/// merging chunk results in chunk order reproduces the serial
/// first-encounter group order exactly.
type Groups = Vec<(Vec<Value>, Vec<AggState>)>;

/// Aggregate one run of rows into insertion-ordered groups.
fn aggregate_rows(
    rows: &[Row],
    bound_keys: &[BoundExpr],
    bound_args: &[Option<BoundExpr>],
    aggs: &[idaa_sql::plan::AggCall],
) -> Result<Groups> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Groups = Vec::new();
    for row in rows {
        let key: Vec<Value> = bound_keys.iter().map(|k| eval(k, row)).collect::<Result<_>>()?;
        let gi = match index.get(&key) {
            Some(&i) => i,
            None => {
                groups.push((
                    key.clone(),
                    aggs.iter().map(|a| AggState::new(a.kind, a.distinct)).collect(),
                ));
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (state, arg) in groups[gi].1.iter_mut().zip(bound_args) {
            let v = match arg {
                Some(b) => eval(b, row)?,
                None => Value::Null,
            };
            state.update(&v)?;
        }
    }
    Ok(groups)
}

/// Fold per-worker partial groups together in worker order.
fn merge_groups(parts: Vec<Groups>) -> Result<Groups> {
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    let mut index: HashMap<Vec<Value>, usize> =
        acc.iter().enumerate().map(|(i, (k, _))| (k.clone(), i)).collect();
    for part in iter {
        for (key, states) in part {
            match index.get(&key) {
                Some(&i) => {
                    for (a, b) in acc[i].1.iter_mut().zip(&states) {
                        a.merge(b)?;
                    }
                }
                None => {
                    index.insert(key.clone(), acc.len());
                    acc.push((key, states));
                }
            }
        }
    }
    Ok(acc)
}

/// Turn finished groups into output rows (`key columns… then aggregates…`).
fn finish_groups(mut groups: Groups, group_exprs: &[Expr], aggs: &[idaa_sql::plan::AggCall]) -> Result<Vec<Row>> {
    if groups.is_empty() && group_exprs.is_empty() {
        groups.push((vec![], aggs.iter().map(|a| AggState::new(a.kind, a.distinct)).collect()));
    }
    groups
        .into_iter()
        .map(|(mut key, states)| {
            for s in states {
                key.push(s.finish()?);
            }
            Ok(key)
        })
        .collect()
}

fn run_aggregate(
    input: &Plan,
    group_exprs: &[Expr],
    aggs: &[idaa_sql::plan::AggCall],
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let cols = input.cols();
    let resolver = resolver_of(&cols);
    let bound_keys: Vec<BoundExpr> =
        group_exprs.iter().map(|e| bind(e, &resolver)).collect::<Result<_>>()?;
    let bound_args: Vec<Option<BoundExpr>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| bind(e, &resolver)).transpose())
        .collect::<Result<_>>()?;

    let refs: Vec<&BoundExpr> =
        bound_keys.iter().chain(bound_args.iter().flatten()).collect();
    let child_mask = mask_of(cols.len(), &refs);
    let rows = run_masked(input, ctx, Some(child_mask))?;

    let workers = ctx.engine.config.workers();
    let groups = if workers > 1 && rows.len() > 1 {
        let chunk = rows.len().div_ceil(workers).max(1);
        let chunks: Vec<&[Row]> = rows.chunks(chunk).collect();
        let parts: Vec<Groups> =
            run_parts(chunks.len(), |ci| aggregate_rows(chunks[ci], &bound_keys, &bound_args, aggs))
                .into_iter()
                .collect::<Result<_>>()?;
        merge_groups(parts)?
    } else {
        aggregate_rows(&rows, &bound_keys, &bound_args, aggs)?
    };
    finish_groups(groups, group_exprs, aggs)
}

// Kernel-level unit tests live here; engine-level behavior is tested in
// `engine.rs` and the integration suite.
#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{DataType, ObjectName};

    #[test]
    fn zone_pruning_rules() {
        let z = ZoneEntry { min: 10.0, max: 20.0, valid: true };
        let k = |op, val| Kernel::Num { col: 0, op, val };
        assert!(k(BinaryOp::Eq, 5.0).prunes(&z));
        assert!(k(BinaryOp::Eq, 25.0).prunes(&z));
        assert!(!k(BinaryOp::Eq, 15.0).prunes(&z));
        assert!(k(BinaryOp::Lt, 10.0).prunes(&z));
        assert!(!k(BinaryOp::Lt, 11.0).prunes(&z));
        assert!(k(BinaryOp::Gt, 20.0).prunes(&z));
        assert!(!k(BinaryOp::Gt, 19.0).prunes(&z));
        assert!(k(BinaryOp::LtEq, 9.0).prunes(&z));
        assert!(k(BinaryOp::GtEq, 21.0).prunes(&z));
        let point = ZoneEntry { min: 7.0, max: 7.0, valid: true };
        assert!(k(BinaryOp::Neq, 7.0).prunes(&point));
        assert!(!k(BinaryOp::Neq, 8.0).prunes(&point));
        // Invalid zones never prune.
        let inv = ZoneEntry::default();
        assert!(!k(BinaryOp::Eq, 5.0).prunes(&inv));
    }

    #[test]
    fn kernel_compilation() {
        let table = AccelTable::new(
            ObjectName::bare("T"),
            Schema::new(vec![
                ColumnDef::new("A", DataType::Integer),
                ColumnDef::new("S", DataType::Varchar(8)),
            ])
            .unwrap(),
            vec![],
            1,
        );
        let cols: Vec<PlanCol> = table
            .schema
            .columns()
            .iter()
            .map(|c| PlanCol {
                qualifier: Some("T".into()),
                name: c.name.clone(),
                data_type: c.data_type,
            })
            .collect();
        // col < lit compiles.
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE a < 5").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        let k = compile_kernel(q.filter.as_ref().unwrap(), &table, &cols);
        assert!(matches!(k, Some(Kernel::Num { op: BinaryOp::Lt, .. })));
        // lit > col flips.
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE 5 > a").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        let k = compile_kernel(q.filter.as_ref().unwrap(), &table, &cols);
        assert!(matches!(k, Some(Kernel::Num { op: BinaryOp::Lt, .. })));
        // string equality compiles to the string kernel.
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE s = 'x'").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        let k = compile_kernel(q.filter.as_ref().unwrap(), &table, &cols);
        assert!(matches!(k, Some(Kernel::Str { negated: false, .. })));
        // LIKE does not compile (stays residual).
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE s LIKE 'x%'").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        assert!(compile_kernel(q.filter.as_ref().unwrap(), &table, &cols).is_none());
    }

    /// Deterministic pseudo-random rows: (key, payload) pairs with heavy
    /// key duplication so joins and sorts exercise ties.
    fn synth_rows(n: usize, seed: u64, key_mod: i64) -> Vec<Row> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                // splitmix64 step — fixed, no external RNG.
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                vec![Value::BigInt((z % key_mod as u64) as i64), Value::BigInt(i as i64)]
            })
            .collect()
    }

    fn canon(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.cmp_total(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    #[test]
    fn parallel_sort_matches_serial() {
        let rows = synth_rows(501, 7, 13);
        let keys = [(0usize, false), (1usize, true)];
        let serial = sort_rows(rows.clone(), &keys, 1);
        for workers in [2, 3, 4, 8] {
            assert_eq!(sort_rows(rows.clone(), &keys, workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn parallel_sort_is_stable_like_serial() {
        // Many ties on the single sort key: the k-way merge must preserve
        // the original relative order of equal rows, like the serial
        // stable sort does.
        let rows = synth_rows(200, 3, 4);
        let keys = [(0usize, false)];
        let serial = sort_rows(rows.clone(), &keys, 1);
        assert_eq!(sort_rows(rows, &keys, 4), serial);
    }

    #[test]
    fn top_k_matches_stable_sort_truncate() {
        let rows = synth_rows(300, 11, 9);
        let keys = [(0usize, true)];
        for k in [0usize, 1, 5, 50, 299, 300, 400] {
            let mut expect = sort_rows(rows.clone(), &keys, 1);
            expect.truncate(k);
            let got = top_k(rows.clone(), k, sort_cmp(&keys));
            assert_eq!(got, expect, "k={k}");
        }
    }

    #[test]
    fn hash_join_parallel_matches_serial() {
        let mut lrows = synth_rows(400, 1, 37);
        let mut rrows = synth_rows(350, 2, 37);
        // Sprinkle NULL keys on both sides: they must never match, and
        // LEFT joins must null-extend the probe-side ones exactly once.
        for i in (0..rrows.len()).step_by(41) {
            rrows[i][0] = Value::Null;
        }
        for i in (0..lrows.len()).step_by(53) {
            lrows[i][0] = Value::Null;
        }
        let lkeys = [BoundExpr::Column(0)];
        let rkeys = [BoundExpr::Column(0)];
        for kind in [JoinKind::Inner, JoinKind::Left] {
            let serial =
                hash_join(&lrows, &rrows, kind, &lkeys, &rkeys, None, 2, 1).unwrap();
            for workers in [2, 4, 8] {
                let par =
                    hash_join(&lrows, &rrows, kind, &lkeys, &rkeys, None, 2, workers)
                        .unwrap();
                // Partition concatenation order differs from serial row
                // order, but the multiset of joined rows is identical.
                assert_eq!(canon(par), canon(serial.clone()), "{kind:?} workers={workers}");
            }
            if kind == JoinKind::Left {
                let padded = serial
                    .iter()
                    .filter(|r| r[2] == Value::Null && r[3] == Value::Null)
                    .count();
                assert!(padded > 0, "expected null-extended probe rows");
            }
        }
    }

    #[test]
    fn nested_loop_parallel_matches_serial_order_exactly() {
        let lrows = synth_rows(120, 5, 11);
        let rrows = synth_rows(90, 6, 11);
        // Non-equi ON: left.key < right.key.
        let on = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinaryOp::Lt,
            right: Box::new(BoundExpr::Column(2)),
        };
        for kind in [JoinKind::Inner, JoinKind::Left] {
            let serial = nested_loop_join(&lrows, &rrows, kind, &on, 2, 1).unwrap();
            for workers in [2, 4, 7] {
                // Chunk-order concatenation reproduces the serial output
                // byte for byte — not just as a multiset.
                let par = nested_loop_join(&lrows, &rrows, kind, &on, 2, workers).unwrap();
                assert_eq!(par, serial, "{kind:?} workers={workers}");
            }
        }
    }
}
