//! Columnar, slice-parallel execution for the accelerator.
//!
//! The hot path is the vectorized scan: predicate conjuncts are compiled to
//! a kernel IR (numeric comparisons, BETWEEN ranges, dictionary-code string
//! equality, IS \[NOT\] NULL over bitmap words) and each 4096-row block is
//! processed as a batch — a selection vector of visible positions that
//! every kernel compacts in place over the typed column vectors, with no
//! intermediate row materialization. Whole blocks are skipped via zone
//! maps, and data slices scan in parallel threads. Rows are materialized
//! only for positions that survive visibility + kernel + residual
//! filtering; the remaining operators (join/aggregate/sort/…) run over that
//! much smaller set, and filter→aggregate chains feed aggregate states
//! directly from the surviving selection. Any conjunct the compiler cannot
//! prove exact (see `guarded_lit`) stays with the row-at-a-time
//! interpreter as a residual — results are always exact, never
//! approximate.

use crate::column::{Column, NullMap};
use crate::engine::AccelEngine;
use crate::mvcc::Snapshot;
use crate::table::{AccelTable, Slice, ZoneEntry, BLOCK_ROWS};
use idaa_common::wire::{key_hash_i64, key_hash_str, KeySummary};
use idaa_common::{ColumnDef, Result, Row, Rows, Schema, Value};
use idaa_sql::ast::{BinaryOp, Expr, JoinKind};
use idaa_sql::eval::{bind, eval, eval_predicate, AggState, BoundExpr, FlatResolver};
use idaa_sql::plan::{Plan, PlanCol, PlanProfile};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;

/// `Limit(Sort(…))` fuses into a bounded top-K selection when the limit is
/// at most this many rows (beyond that a full parallel sort wins).
const TOPK_MAX: u64 = 1024;

/// Run `f(0)..f(parts-1)` on scoped worker threads and return the results
/// in part order. The fixed partition order is what keeps every parallel
/// operator deterministic for a given configuration.
fn run_parts<T, F>(parts: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if parts <= 1 {
        return (0..parts).map(f).collect();
    }
    std::thread::scope(|scope| {
        let fr = &f;
        let handles: Vec<_> = (0..parts).map(|i| scope.spawn(move || fr(i))).collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    })
}

/// Which execution pipeline the accelerator uses for scans and fused
/// aggregation. `Vectorized` (the default) compiles predicate conjuncts to
/// batch kernels that filter block-sized selection vectors directly over
/// the column vectors; `Interpreted` forces the row-at-a-time expression
/// interpreter — kept as the exactness oracle and the fallback for any
/// expression the compiler cannot prove exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    #[default]
    Vectorized,
    Interpreted,
}

/// Execution context for one statement.
pub struct ExecCtx<'a> {
    pub engine: &'a AccelEngine,
    pub snap: Snapshot,
    pub mode: ExecMode,
    /// When set, each executed plan node records its output cardinality
    /// (fused children stay unrecorded — fusion is visible in the profile).
    pub profile: Option<&'a PlanProfile>,
}

/// Execute a logical plan on the accelerator.
pub fn execute_plan(plan: &Plan, ctx: &ExecCtx) -> Result<Rows> {
    let rows = run(plan, ctx)?;
    let schema = Schema::new_unchecked(
        plan.cols()
            .into_iter()
            .map(|c| ColumnDef::new(c.name, c.data_type))
            .collect(),
    );
    Ok(Rows::new(schema, rows))
}

fn resolver_of(cols: &[PlanCol]) -> FlatResolver {
    FlatResolver::new(cols.iter().map(|c| (c.qualifier.clone(), c.name.clone())).collect())
}

pub(crate) fn run(plan: &Plan, ctx: &ExecCtx) -> Result<Vec<Row>> {
    run_masked(plan, ctx, None)
}

/// Dispatch one node and, when profiling, record its output cardinality on
/// the way out.
fn run_masked(plan: &Plan, ctx: &ExecCtx, needed: Option<Vec<bool>>) -> Result<Vec<Row>> {
    let rows = run_masked_inner(plan, ctx, needed)?;
    if let Some(prof) = ctx.profile {
        prof.record(plan, rows.len() as u64);
    }
    Ok(rows)
}

/// Union the column ordinals of `exprs` into a mask over `width` columns.
fn mask_of(width: usize, bound: &[&BoundExpr]) -> Vec<bool> {
    let mut set = std::collections::HashSet::new();
    for b in bound {
        b.collect_columns(&mut set);
    }
    (0..width).map(|i| set.contains(&i)).collect()
}

fn union_mask(a: Option<Vec<bool>>, b: Vec<bool>) -> Vec<bool> {
    match a {
        None => b,
        Some(a) => a.iter().zip(&b).map(|(x, y)| *x || *y).collect(),
    }
}

/// Execute with *projection pushdown*: `needed[i] == false` means the
/// caller never reads output column `i`, so scans may leave it NULL and
/// skip decoding the column vector — the columnar engine's signature
/// advantage.
fn run_masked_inner(plan: &Plan, ctx: &ExecCtx, needed: Option<Vec<bool>>) -> Result<Vec<Row>> {
    match plan {
        Plan::Scan { table, cols, .. } => {
            if cols.is_empty() && table.name == "SYSDUMMY1" {
                return Ok(vec![vec![]]);
            }
            let t = ctx.engine.table(table)?;
            scan_filtered_with(&t, None, ctx, needed, Some(plan), None)
        }
        Plan::Filter { input, predicate } => {
            if let Plan::Scan { table, .. } = input.as_ref() {
                let t = ctx.engine.table(table)?;
                let cols = input.cols();
                return scan_filtered_with(
                    &t,
                    Some((predicate, &cols)),
                    ctx,
                    needed,
                    Some(plan),
                    None,
                );
            }
            let cols = input.cols();
            let bound = bind(predicate, &resolver_of(&cols))?;
            let child_mask = needed.map(|m| union_mask(Some(m), mask_of(cols.len(), &[&bound])));
            let rows = run_masked(input, ctx, child_mask)?;
            rows.into_iter()
                .filter_map(|row| match eval_predicate(&bound, &row) {
                    Ok(true) => Some(Ok(row)),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect()
        }
        Plan::Project { input, exprs, .. } => {
            let in_cols = input.cols();
            let resolver = resolver_of(&in_cols);
            let bound: Vec<BoundExpr> =
                exprs.iter().map(|(e, _)| bind(e, &resolver)).collect::<Result<_>>()?;
            let refs: Vec<&BoundExpr> = bound.iter().collect();
            let child_mask = mask_of(in_cols.len(), &refs);
            let rows = run_masked(input, ctx, Some(child_mask))?;
            rows.into_iter()
                .map(|row| bound.iter().map(|b| eval(b, &row)).collect())
                .collect()
        }
        Plan::Join { left, right, kind, on } => run_join(plan, left, right, *kind, on, ctx),
        Plan::Aggregate { input, group_exprs, aggs, .. } => {
            if let Some(rows) = try_fused_aggregate(plan, input, group_exprs, aggs, ctx)? {
                return Ok(rows);
            }
            run_aggregate(input, group_exprs, aggs, ctx)
        }
        Plan::Sort { input, keys } => {
            let in_width = input.cols().len();
            let child_mask = needed.map(|mut m| {
                m.resize(in_width, false);
                for (i, _) in keys {
                    if *i < in_width {
                        m[*i] = true;
                    }
                }
                m
            });
            let rows = run_masked(input, ctx, child_mask)?;
            Ok(sort_rows(rows, keys, ctx.engine.config.workers()))
        }
        Plan::Distinct { input } => {
            // Row-level dedup reads every column: no pushdown through here.
            let rows = run_masked(input, ctx, None)?;
            let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone(), ()).is_none() {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Limit { input, n } => {
            // `Limit(Sort(…))` fuses into a bounded top-K selection: keep the
            // `n` best rows by (sort key, input position) in one pass instead
            // of sorting everything. The position tiebreak makes the result
            // identical to a stable sort followed by truncation.
            if let Plan::Sort { input: sorted, keys } = input.as_ref() {
                if *n <= TOPK_MAX {
                    let in_width = sorted.cols().len();
                    let child_mask = needed.clone().map(|mut m| {
                        m.resize(in_width, false);
                        for (i, _) in keys {
                            if *i < in_width {
                                m[*i] = true;
                            }
                        }
                        m
                    });
                    let rows = run_masked(sorted, ctx, child_mask)?;
                    return Ok(top_k(rows, *n as usize, sort_cmp(keys)));
                }
            }
            let mut rows = run_masked(input, ctx, needed)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        Plan::KeepCols { input, n } => {
            let in_width = input.cols().len();
            let child_mask = needed.map(|mut m| {
                m.resize(in_width, false);
                m
            });
            let mut rows = run_masked(input, ctx, child_mask)?;
            for row in &mut rows {
                row.truncate(*n);
            }
            Ok(rows)
        }
        Plan::Union { left, right, all } => {
            // Plain UNION dedups on full rows, so branches must materialize
            // every column; UNION ALL can push the caller's mask through.
            let child_mask = if *all { needed } else { None };
            let mut rows = run_masked(left, ctx, child_mask.clone())?;
            rows.extend(run_masked(right, ctx, child_mask)?);
            if !*all {
                let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rows.len());
                rows.retain(|r| seen.insert(r.clone(), ()).is_none());
            }
            Ok(rows)
        }
    }
}

/// Scan with an optional predicate, materializing every column.
pub(crate) fn scan_filtered(
    table: &AccelTable,
    predicate: Option<&Expr>,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let cols: Vec<PlanCol> = table
        .schema
        .columns()
        .iter()
        .map(|c| PlanCol {
            qualifier: Some(table.name.name.clone()),
            name: c.name.clone(),
            data_type: c.data_type,
        })
        .collect();
    match predicate {
        Some(p) => scan_filtered_with(table, Some((p, cols.as_slice())), ctx, None, None, None),
        None => scan_filtered_with(table, None, ctx, None, None, None),
    }
}

/// The kernel IR: one compiled single-column predicate. A conjunction
/// compiles into a list of kernels that each filter the block's selection
/// vector in turn; anything the compiler can't prove exact stays in the
/// interpreted residual.
#[derive(Debug, Clone)]
enum Kernel {
    /// Numeric comparison against a constant.
    Num { col: usize, op: BinaryOp, val: f64 },
    /// `col [NOT] BETWEEN lo AND hi` over a numeric column.
    Range { col: usize, lo: f64, hi: f64, negated: bool },
    /// String equality / inequality against a constant.
    Str { col: usize, val: String, negated: bool },
    /// `col IS [NOT] NULL` over the packed null bitmap.
    IsNull { col: usize, negated: bool },
}

impl Kernel {
    /// The column whose zone map can prune blocks for this kernel, if any.
    /// String and NULL-ness kernels never prune: zone maps track numeric
    /// min/max only, and staying a superset is the correctness rule.
    fn zone_col(&self) -> Option<usize> {
        match self {
            Kernel::Num { col, .. } | Kernel::Range { col, .. } => Some(*col),
            Kernel::Str { .. } | Kernel::IsNull { .. } => None,
        }
    }

    /// Can the zone map of `z` prove no row in the block matches?
    fn prunes(&self, z: &ZoneEntry) -> bool {
        if !z.valid {
            return false;
        }
        match self {
            Kernel::Num { op, val, .. } => match op {
                BinaryOp::Eq => *val < z.min || *val > z.max,
                BinaryOp::Lt => z.min >= *val,
                BinaryOp::LtEq => z.min > *val,
                BinaryOp::Gt => z.max <= *val,
                BinaryOp::GtEq => z.max < *val,
                BinaryOp::Neq => z.min == z.max && z.min == *val,
                _ => false,
            },
            Kernel::Range { lo, hi, negated: false, .. } => z.max < *lo || z.min > *hi,
            // Every non-NULL row inside [lo, hi] ⇒ NOT BETWEEN matches none
            // (NULL rows never match either way, and zones ignore NULLs).
            Kernel::Range { lo, hi, negated: true, .. } => z.min >= *lo && z.max <= *hi,
            Kernel::Str { .. } | Kernel::IsNull { .. } => false,
        }
    }

    /// Resolve this kernel against one slice's physical column vectors,
    /// picking the tightest typed loop the storage admits. String kernels
    /// reuse the column's memoized dictionary probe, so repeated slices
    /// (and repeated queries) don't re-scan the dictionary.
    fn specialize<'s>(&'s self, slice: &'s Slice) -> SpecKernel<'s> {
        match self {
            Kernel::Num { col, op, val } => {
                let c: &Column = &slice.columns[*col];
                if let (Some(vals), Some(i)) = (c.i64_data(), exact_i64(*val)) {
                    SpecKernel::I64Cmp { vals, nulls: &c.nulls, op: *op, val: i }
                } else if let Some(vals) = c.f64_data() {
                    SpecKernel::F64Cmp { vals, nulls: &c.nulls, op: *op, val: *val }
                } else {
                    SpecKernel::NumCmp { col: c, op: *op, val: *val }
                }
            }
            Kernel::Range { col, lo, hi, negated } => {
                let c: &Column = &slice.columns[*col];
                if let (Some(vals), Some(l), Some(h)) =
                    (c.i64_data(), exact_i64(*lo), exact_i64(*hi))
                {
                    SpecKernel::I64Range { vals, nulls: &c.nulls, lo: l, hi: h, negated: *negated }
                } else if let Some(vals) = c.f64_data() {
                    SpecKernel::F64Range {
                        vals,
                        nulls: &c.nulls,
                        lo: *lo,
                        hi: *hi,
                        negated: *negated,
                    }
                } else {
                    SpecKernel::NumRange { col: c, lo: *lo, hi: *hi, negated: *negated }
                }
            }
            Kernel::Str { col, val, negated } => {
                let c: &Column = &slice.columns[*col];
                let Some(codes) = c.str_codes() else { return SpecKernel::Never };
                SpecKernel::Str {
                    codes,
                    nulls: &c.nulls,
                    matches: c.codes_matching(val),
                    negated: *negated,
                }
            }
            Kernel::IsNull { col, negated } => {
                SpecKernel::IsNull { nulls: &slice.columns[*col].nulls, negated: *negated }
            }
        }
    }
}

/// The f64 image of an i64 column value compares exactly against `v` (in
/// the i64 domain) only when `v` is integral with magnitude strictly below
/// 2^53 — above that, distinct integers share an f64 image and Eq/Neq
/// would lie. Within the limit the typed i64 loop is provably identical to
/// the f64-image comparison the interpreter performs.
fn exact_i64(v: f64) -> Option<i64> {
    const LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53
    if v.fract() == 0.0 && v.abs() < LIMIT {
        Some(v as i64)
    } else {
        None
    }
}

/// A [`Kernel`] resolved against one slice's physical data. Each variant
/// filters a selection vector of candidate positions in place — the batch
/// replacement for the old per-row `matches` test.
enum SpecKernel<'s> {
    I64Cmp { vals: &'s [i64], nulls: &'s NullMap, op: BinaryOp, val: i64 },
    F64Cmp { vals: &'s [f64], nulls: &'s NullMap, op: BinaryOp, val: f64 },
    /// Generic numeric compare through `numeric_at` (DECIMAL storage, or an
    /// i64 column against a fractional / out-of-range literal).
    NumCmp { col: &'s Column, op: BinaryOp, val: f64 },
    I64Range { vals: &'s [i64], nulls: &'s NullMap, lo: i64, hi: i64, negated: bool },
    F64Range { vals: &'s [f64], nulls: &'s NullMap, lo: f64, hi: f64, negated: bool },
    NumRange { col: &'s Column, lo: f64, hi: f64, negated: bool },
    Str { codes: &'s [u32], nulls: &'s NullMap, matches: &'s [u32], negated: bool },
    IsNull { nulls: &'s NullMap, negated: bool },
    /// Structurally impossible (e.g. non-dictionary column): matches nothing.
    Never,
}

/// Compact `sel` in place, keeping positions where `keep` holds. Survivor
/// order stays ascending, which is what keeps vectorized output order
/// identical to the row-at-a-time scan.
#[inline]
fn compact(sel: &mut Vec<u32>, mut keep: impl FnMut(usize) -> bool) {
    let mut w = 0;
    for r in 0..sel.len() {
        if keep(sel[r] as usize) {
            sel[w] = sel[r];
            w += 1;
        }
    }
    sel.truncate(w);
}

/// Typed comparison loop shared by the i64 and f64 kernels.
fn cmp_filter<T: PartialOrd + Copy>(
    sel: &mut Vec<u32>,
    vals: &[T],
    nulls: &NullMap,
    op: BinaryOp,
    val: T,
) {
    match op {
        BinaryOp::Eq => compact(sel, |p| !nulls.is_null(p) && vals[p] == val),
        BinaryOp::Neq => compact(sel, |p| !nulls.is_null(p) && vals[p] != val),
        BinaryOp::Lt => compact(sel, |p| !nulls.is_null(p) && vals[p] < val),
        BinaryOp::LtEq => compact(sel, |p| !nulls.is_null(p) && vals[p] <= val),
        BinaryOp::Gt => compact(sel, |p| !nulls.is_null(p) && vals[p] > val),
        BinaryOp::GtEq => compact(sel, |p| !nulls.is_null(p) && vals[p] >= val),
        _ => sel.clear(),
    }
}

fn range_filter<T: PartialOrd + Copy>(
    sel: &mut Vec<u32>,
    vals: &[T],
    nulls: &NullMap,
    lo: T,
    hi: T,
    negated: bool,
) {
    if negated {
        compact(sel, |p| !(nulls.is_null(p) || vals[p] >= lo && vals[p] <= hi));
    } else {
        compact(sel, |p| !nulls.is_null(p) && vals[p] >= lo && vals[p] <= hi);
    }
}

fn cmp_f64(op: BinaryOp, x: f64, val: f64) -> bool {
    match op {
        BinaryOp::Eq => x == val,
        BinaryOp::Neq => x != val,
        BinaryOp::Lt => x < val,
        BinaryOp::LtEq => x <= val,
        BinaryOp::Gt => x > val,
        BinaryOp::GtEq => x >= val,
        _ => false,
    }
}

impl SpecKernel<'_> {
    /// Filter the selection vector in place, keeping only positions this
    /// kernel accepts. NULL never matches a comparison, matching SQL.
    fn filter(&self, sel: &mut Vec<u32>) {
        match self {
            SpecKernel::I64Cmp { vals, nulls, op, val } => {
                cmp_filter(sel, vals, nulls, *op, *val)
            }
            SpecKernel::F64Cmp { vals, nulls, op, val } => {
                cmp_filter(sel, vals, nulls, *op, *val)
            }
            SpecKernel::NumCmp { col, op, val } => compact(sel, |p| match col.numeric_at(p) {
                None => false,
                Some(x) => cmp_f64(*op, x, *val),
            }),
            SpecKernel::I64Range { vals, nulls, lo, hi, negated } => {
                range_filter(sel, vals, nulls, *lo, *hi, *negated)
            }
            SpecKernel::F64Range { vals, nulls, lo, hi, negated } => {
                range_filter(sel, vals, nulls, *lo, *hi, *negated)
            }
            SpecKernel::NumRange { col, lo, hi, negated } => {
                compact(sel, |p| match col.numeric_at(p) {
                    None => false,
                    Some(x) => (x >= *lo && x <= *hi) != *negated,
                })
            }
            SpecKernel::Str { codes, nulls, matches, negated } => {
                let neg = *negated;
                match matches.len() {
                    0 if !neg => sel.clear(),
                    0 => compact(sel, |p| !nulls.is_null(p)),
                    1 => {
                        let c = matches[0];
                        if neg {
                            compact(sel, |p| !nulls.is_null(p) && codes[p] != c)
                        } else {
                            compact(sel, |p| !nulls.is_null(p) && codes[p] == c)
                        }
                    }
                    _ => compact(sel, |p| {
                        !nulls.is_null(p) && (matches.binary_search(&codes[p]).is_ok() != neg)
                    }),
                }
            }
            SpecKernel::IsNull { nulls, negated } => {
                // Word-at-a-time over the packed bitmap: the 64-bit null
                // word is reloaded only when the selection crosses into
                // the next word.
                let words = nulls.words();
                let neg = *negated;
                let mut cur = usize::MAX;
                let mut word = 0u64;
                compact(sel, |p| {
                    let wi = p / 64;
                    if wi != cur {
                        cur = wi;
                        word = words.get(wi).copied().unwrap_or(0);
                    }
                    ((word >> (p % 64)) & 1 == 1) != neg
                })
            }
            SpecKernel::Never => sel.clear(),
        }
    }
}

/// Resolve a bare column reference against this scan's schema.
fn scan_ordinal(col_expr: &Expr, table: &AccelTable, scan_cols: &[PlanCol]) -> Option<usize> {
    let Expr::Column { qualifier, name } = col_expr else { return None };
    // The qualifier must refer to this scan.
    if let Some(q) = qualifier {
        if !scan_cols.iter().any(|c| c.qualifier.as_deref() == Some(q.as_str())) {
            return None;
        }
    }
    table.schema.index_of(name).ok()
}

/// Literal → f64 under the exactness guard. Kernels compare in f64; an
/// integer literal beyond 2^53 is not exactly representable, which would
/// make equality kernels lie — such predicates stay with the exact
/// residual evaluator.
fn guarded_lit(lit: &Value) -> Option<f64> {
    let val = match lit {
        Value::Null => return None,
        v => v.as_f64().ok()?,
    };
    if let Ok(i) = lit.as_i64() {
        if (val as i64) != i {
            return None;
        }
    }
    Some(val)
}

fn numeric_family(t: idaa_common::DataType) -> bool {
    t.is_numeric()
        || matches!(
            t,
            idaa_common::DataType::Date | idaa_common::DataType::Timestamp | idaa_common::DataType::Boolean
        )
}

/// Try to compile one conjunct into a kernel over `table`'s columns.
fn compile_kernel(conj: &Expr, table: &AccelTable, scan_cols: &[PlanCol]) -> Option<Kernel> {
    match conj {
        Expr::Binary { left, op, right } => {
            let (col_expr, lit, op) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column { .. }, Expr::Literal(v)) => (left.as_ref(), v, *op),
                (Expr::Literal(v), Expr::Column { .. }) => (right.as_ref(), v, flip(*op)?),
                _ => return None,
            };
            let ordinal = scan_ordinal(col_expr, table, scan_cols)?;
            let col_type = table.schema.columns()[ordinal].data_type;
            if numeric_family(col_type) {
                let val = guarded_lit(lit)?;
                if matches!(
                    op,
                    BinaryOp::Eq
                        | BinaryOp::Neq
                        | BinaryOp::Lt
                        | BinaryOp::LtEq
                        | BinaryOp::Gt
                        | BinaryOp::GtEq
                ) {
                    return Some(Kernel::Num { col: ordinal, op, val });
                }
                return None;
            }
            if col_type.is_character() {
                let Value::Varchar(s) = lit else { return None };
                return match op {
                    BinaryOp::Eq => {
                        Some(Kernel::Str { col: ordinal, val: s.clone(), negated: false })
                    }
                    BinaryOp::Neq => {
                        Some(Kernel::Str { col: ordinal, val: s.clone(), negated: true })
                    }
                    _ => None,
                };
            }
            None
        }
        Expr::Between { expr, low, high, negated } => {
            let ordinal = scan_ordinal(expr, table, scan_cols)?;
            if !numeric_family(table.schema.columns()[ordinal].data_type) {
                return None;
            }
            let (Expr::Literal(lo), Expr::Literal(hi)) = (low.as_ref(), high.as_ref()) else {
                return None;
            };
            let lo = guarded_lit(lo)?;
            let hi = guarded_lit(hi)?;
            Some(Kernel::Range { col: ordinal, lo, hi, negated: *negated })
        }
        Expr::IsNull { expr, negated } => {
            let ordinal = scan_ordinal(expr, table, scan_cols)?;
            Some(Kernel::IsNull { col: ordinal, negated: *negated })
        }
        _ => None,
    }
}

fn flip(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Eq => BinaryOp::Eq,
        BinaryOp::Neq => BinaryOp::Neq,
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        _ => return None,
    })
}

/// Any-kernel zone test for one block: a block is skipped when any kernel's
/// zone map proves it empty (superset rule: pruning is only ever a subset
/// of what the kernels would reject row by row).
fn zone_prunes(kernels: &[Kernel], slice: &Slice, b: usize) -> bool {
    kernels.iter().any(|k| {
        k.zone_col()
            .and_then(|c| slice.zones[c].get(b))
            .map(|z| k.prunes(z))
            .unwrap_or(false)
    })
}

/// Fill `sel` with the visible positions of block `b`, ascending. Returns
/// the block's `(start, end)` row range.
fn select_block(
    sel: &mut Vec<u32>,
    slice: &Slice,
    b: usize,
    total: usize,
    engine: &AccelEngine,
    snap: &Snapshot,
) -> (usize, usize) {
    let start = b * BLOCK_ROWS;
    let end = (start + BLOCK_ROWS).min(total);
    sel.clear();
    for pos in start..end {
        if engine.txns.version_visible(slice.created[pos], slice.deleted[pos], snap) {
            sel.push(pos as u32);
        }
    }
    (start, end)
}

fn scan_filtered_with(
    table: &AccelTable,
    pred: Option<(&Expr, &[PlanCol])>,
    ctx: &ExecCtx,
    needed: Option<Vec<bool>>,
    prof_node: Option<&Plan>,
    prefilter: Option<&ProbeFilter>,
) -> Result<Vec<Row>> {
    // Compile conjuncts into kernels plus a residual predicate. Forced
    // interpreter mode compiles nothing: the whole predicate is residual.
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut residual: Option<BoundExpr> = None;
    if let Some((predicate, scan_cols)) = pred {
        let mut leftover: Vec<&Expr> = Vec::new();
        for conj in idaa_host_conjuncts(predicate) {
            let compiled = match ctx.mode {
                ExecMode::Vectorized => compile_kernel(conj, table, scan_cols),
                ExecMode::Interpreted => None,
            };
            match compiled {
                Some(k) => kernels.push(k),
                None => leftover.push(conj),
            }
        }
        if !leftover.is_empty() {
            let resolver = resolver_of(scan_cols);
            let combined = leftover
                .into_iter()
                .cloned()
                .reduce(|a, b| Expr::Binary {
                    left: Box::new(a),
                    op: BinaryOp::And,
                    right: Box::new(b),
                })
                .expect("non-empty");
            residual = Some(bind(&combined, &resolver)?);
        }
    }
    // Effective materialization mask: what the caller reads plus what the
    // residual predicate reads. Kernel columns are evaluated directly on
    // the typed vectors and need no materialization.
    let width = table.schema.len();
    let mask: Option<Vec<bool>> = match (&needed, &residual) {
        (None, _) => None,
        (Some(m), None) => Some(m.clone()),
        (Some(m), Some(res)) => {
            let mut set = std::collections::HashSet::new();
            res.collect_columns(&mut set);
            Some((0..width).map(|i| m.get(i).copied().unwrap_or(false) || set.contains(&i)).collect())
        }
    };

    let engine = ctx.engine;
    let use_zones = engine.config.zone_maps;
    let snap = ctx.snap;
    let slices = table.slices();
    // Late materialization: with no interpreted residual left, survivors
    // are assembled column-at-a-time by projection kernels instead of the
    // per-row loop. Interpreted mode keeps the row loop as the oracle.
    let late_mat = ctx.mode == ExecMode::Vectorized && residual.is_none();

    // Per slice: build a block-sized selection vector of visible positions,
    // let each kernel compact it in turn, then materialize (and residual-
    // check) only the survivors, in ascending position order — the same
    // output order as the old per-row loop, without its per-row dispatch.
    let scan_one = |slice_lock: &parking_lot::RwLock<Slice>| -> Result<(Vec<Row>, u64)> {
        let slice = slice_lock.read();
        let spec: Vec<SpecKernel> = kernels.iter().map(|k| k.specialize(&slice)).collect();
        let probe: Option<SpecProbe> = prefilter.map(|pf| pf.specialize(&slice));
        let total = slice.version_count();
        let mut out = Vec::new();
        let mut sel: Vec<u32> = Vec::with_capacity(BLOCK_ROWS.min(total));
        let mut batches = 0u64;
        let blocks = slice.block_count();
        for b in 0..blocks {
            engine.stats.blocks_scanned.fetch_add(1, Ordering::Relaxed);
            if use_zones && zone_prunes(&kernels, &slice, b) {
                engine.stats.blocks_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            batches += 1;
            let (start, end) = select_block(&mut sel, &slice, b, total, engine, &snap);
            for k in &spec {
                if sel.is_empty() {
                    break;
                }
                k.filter(&mut sel);
            }
            // The derived join-filter runs after the scan's own kernels: it
            // only shrinks the selection, never prunes blocks, so every
            // stats counter stays identical with and without it.
            if let Some(p) = &probe {
                if !sel.is_empty() {
                    p.filter(&mut sel);
                }
            }
            if late_mat {
                materialize_block(&slice, &sel, mask.as_deref(), &mut out);
            } else {
                for &p in &sel {
                    let pos = p as usize;
                    let row: Row = match &mask {
                        None => slice.row_at(pos),
                        Some(m) => slice
                            .columns
                            .iter()
                            .enumerate()
                            .map(|(i, c)| if m[i] { c.get(pos) } else { Value::Null })
                            .collect(),
                    };
                    if let Some(res) = &residual {
                        if !eval_predicate(res, &row)? {
                            continue;
                        }
                    }
                    out.push(row);
                }
            }
            engine
                .stats
                .rows_scanned
                .fetch_add((end - start) as u64, Ordering::Relaxed);
        }
        Ok((out, batches))
    };

    let results: Vec<Result<(Vec<Row>, u64)>> = if engine.config.parallel && slices.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|s| scope.spawn(|| scan_one(s)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("scan thread panicked")).collect()
        })
    } else {
        slices.iter().map(&scan_one).collect()
    };
    let mut out = Vec::new();
    let mut batches = 0u64;
    for r in results {
        let (rows, b) = r?;
        out.extend(rows);
        batches += b;
    }
    // A scan counts as vectorized only when at least one kernel compiled
    // (or a derived join-filter ran as one) — with zero kernels every row
    // goes through the interpreted residual.
    if let (Some(prof), Some(node)) = (ctx.profile, prof_node) {
        if !kernels.is_empty() || prefilter.is_some() {
            prof.record_vectorized(node, batches);
        }
    }
    Ok(out)
}

/// Assemble output rows for one block's surviving selection with projection
/// kernels: one typed pass per column (masked-out columns append NULL), so
/// the per-position storage dispatch is paid once per column instead of
/// once per value. Output is byte-identical to the per-row loop.
fn materialize_block(slice: &Slice, sel: &[u32], mask: Option<&[bool]>, out: &mut Vec<Row>) {
    if sel.is_empty() {
        return;
    }
    let width = slice.columns.len();
    let base = out.len();
    out.extend(std::iter::repeat_with(|| Row::with_capacity(width)).take(sel.len()));
    for (i, c) in slice.columns.iter().enumerate() {
        if mask.is_none_or(|m| m[i]) {
            c.gather_into(sel, &mut out[base..]);
        } else {
            for row in &mut out[base..] {
                row.push(Value::Null);
            }
        }
    }
}

/// Conjunct splitting (same shape as the host's — duplicated on purpose:
/// the engines are independent systems in the architecture).
fn idaa_host_conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut out = idaa_host_conjuncts(left);
            out.extend(idaa_host_conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// Comparator over `Plan::Sort` keys (shared by sort and top-K).
fn sort_cmp(keys: &[(usize, bool)]) -> impl Fn(&Row, &Row) -> std::cmp::Ordering + Sync + '_ {
    move |a, b| {
        for (i, desc) in keys {
            let o = a[*i].cmp_total(&b[*i]);
            let o = if *desc { o.reverse() } else { o };
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    }
}

/// Stable sort, parallelized as chunk-sorts plus a k-way merge that breaks
/// ties toward the earliest chunk — output is identical to a serial stable
/// sort regardless of worker count.
fn sort_rows(mut rows: Vec<Row>, keys: &[(usize, bool)], workers: usize) -> Vec<Row> {
    let cmp = sort_cmp(keys);
    if workers <= 1 || rows.len() <= 1 {
        rows.sort_by(&cmp);
        return rows;
    }
    let chunk = rows.len().div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        for part in rows.chunks_mut(chunk) {
            let c = &cmp;
            scope.spawn(move || part.sort_by(c));
        }
    });
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    while start < rows.len() {
        let end = (start + chunk).min(rows.len());
        bounds.push((start, end));
        start = end;
    }
    let mut cursors: Vec<usize> = bounds.iter().map(|(s, _)| *s).collect();
    let mut out = Vec::with_capacity(rows.len());
    loop {
        let mut best: Option<usize> = None;
        for ci in 0..bounds.len() {
            if cursors[ci] >= bounds[ci].1 {
                continue;
            }
            best = match best {
                None => Some(ci),
                Some(b)
                    if cmp(&rows[cursors[ci]], &rows[cursors[b]])
                        == std::cmp::Ordering::Less =>
                {
                    Some(ci)
                }
                keep => keep,
            };
        }
        match best {
            None => break,
            Some(b) => {
                out.push(std::mem::take(&mut rows[cursors[b]]));
                cursors[b] += 1;
            }
        }
    }
    out
}

/// Bounded top-K selection: the `k` smallest rows under `(cmp, input
/// position)`, in that order — exactly a stable sort followed by
/// `truncate(k)`, without sorting the rest.
fn top_k<F: Fn(&Row, &Row) -> std::cmp::Ordering>(rows: Vec<Row>, k: usize, cmp: F) -> Vec<Row> {
    if k == 0 {
        return Vec::new();
    }
    // Sorted buffer of the current best k, worst last. Entries carry their
    // input position so ties keep first-seen order (stable-sort semantics).
    let mut buf: Vec<(usize, Row)> = Vec::with_capacity(k + 1);
    for (seq, row) in rows.into_iter().enumerate() {
        if buf.len() == k {
            let (_, worst) = buf.last().expect("k > 0");
            // Existing entries always have earlier positions, so an Equal
            // comparison means the newcomer loses the tiebreak too.
            if cmp(&row, worst) != std::cmp::Ordering::Less {
                continue;
            }
        }
        let pos = buf.partition_point(|(_, b)| cmp(b, &row) != std::cmp::Ordering::Greater);
        buf.insert(pos, (seq, row));
        buf.truncate(k);
    }
    buf.into_iter().map(|(_, r)| r).collect()
}

/// How a join's equi-key tuple is represented during build and probe.
/// The layout is decided *statically* from the declared column types of the
/// key expressions — integer↔integer keys compare exactly as raw `i64` and
/// character↔character keys as trimmed strings, matching [`Value`] equality
/// for those type pairs — and *verified* during extraction: any value
/// outside the layout's class falls the whole join back to the generic
/// `Vec<Value>` representation. Exact-or-fallback, like every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyLayout {
    I64,
    Str,
    Generic,
}

/// One row's join key under a [`KeyLayout`]. Both sides of a join always
/// share a layout, so equality never compares across variants.
#[derive(Debug, Clone, PartialEq)]
enum JoinKey {
    I64(i64),
    /// Trailing blanks already trimmed (DB2 padded CHAR comparison).
    Str(String),
    Row(Vec<Value>),
}

impl JoinKey {
    /// Hash in the layout's shared domain: typed keys use the wire-level
    /// key hashes (the same domain fleet gather summaries are built in),
    /// generic keys keep the `Vec<Value>` hasher.
    fn key_hash(&self) -> u64 {
        match self {
            JoinKey::I64(v) => key_hash_i64(*v),
            JoinKey::Str(s) => key_hash_str(s),
            JoinKey::Row(key) => {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut hasher);
                hasher.finish()
            }
        }
    }
}

/// One side's keys, extracted once: `None` marks a NULL key (SQL join keys
/// never match on NULL), else the key plus its 64-bit hash.
type Keyed = Vec<Option<(u64, JoinKey)>>;

/// Declared types whose values compare exactly as raw `i64` among
/// themselves under [`Value`] integer-family equality.
fn int_key_type(t: idaa_common::DataType) -> bool {
    matches!(
        t,
        idaa_common::DataType::SmallInt
            | idaa_common::DataType::Integer
            | idaa_common::DataType::BigInt
    )
}

/// Pick the key layout a join's equi-keys admit. Only single-key joins on
/// bare columns qualify for a typed layout: mixed-type pairs (e.g. INT vs
/// DOUBLE) must keep full [`Value`] equality semantics, and multi-key
/// tuples keep the generic path.
fn key_layout(
    lkeys: &[BoundExpr],
    lcols: &[PlanCol],
    rkeys: &[BoundExpr],
    rcols: &[PlanCol],
) -> KeyLayout {
    if lkeys.len() != 1 {
        return KeyLayout::Generic;
    }
    let (Some(li), Some(ri)) = (lkeys[0].as_column(), rkeys[0].as_column()) else {
        return KeyLayout::Generic;
    };
    let lt = lcols[li].data_type;
    let rt = rcols[ri].data_type;
    if int_key_type(lt) && int_key_type(rt) {
        KeyLayout::I64
    } else if lt.is_character() && rt.is_character() {
        KeyLayout::Str
    } else {
        KeyLayout::Generic
    }
}

/// Evaluate one side's keys once, into the shared layout. Returns
/// `Ok(None)` when a value falls outside the layout's class (the declared
/// type lied — e.g. an expression rewrote the column) — the caller then
/// re-extracts *both* sides generically.
fn try_extract_keys(keys: &[BoundExpr], rows: &[Row], layout: KeyLayout) -> Result<Option<Keyed>> {
    if layout == KeyLayout::Generic {
        return extract_generic(keys, rows).map(Some);
    }
    let key_expr = &keys[0];
    let mut out: Keyed = Vec::with_capacity(rows.len());
    for row in rows {
        let k = match (layout, eval(key_expr, row)?) {
            (_, Value::Null) => None,
            (KeyLayout::I64, Value::SmallInt(x)) => Some(JoinKey::I64(x as i64)),
            (KeyLayout::I64, Value::Int(x)) => Some(JoinKey::I64(x as i64)),
            (KeyLayout::I64, Value::BigInt(x)) => Some(JoinKey::I64(x)),
            (KeyLayout::Str, Value::Varchar(mut s)) => {
                s.truncate(s.trim_end_matches(' ').len());
                Some(JoinKey::Str(s))
            }
            _ => return Ok(None),
        };
        out.push(k.map(|k| (k.key_hash(), k)));
    }
    Ok(Some(out))
}

/// Generic key extraction: the full `Vec<Value>` tuple per row, evaluated
/// once per side (never re-hashed per probe).
fn extract_generic(keys: &[BoundExpr], rows: &[Row]) -> Result<Keyed> {
    rows.iter()
        .map(|row| {
            let key: Vec<Value> = keys.iter().map(|k| eval(k, row)).collect::<Result<_>>()?;
            if key.iter().any(Value::is_null) {
                return Ok(None);
            }
            let k = JoinKey::Row(key);
            Ok(Some((k.key_hash(), k)))
        })
        .collect()
}

/// A derived join-filter pushed into the probe-side scan: the build side's
/// key digest applied to the probe key column as one more selection-vector
/// filter. It runs after the scan's compiled kernels and never prunes
/// blocks, so `blocks_scanned`/`blocks_pruned`/`rows_scanned` stay
/// byte-identical with and without it; the digest only ever false-positives
/// (an inserted key always tests present), so on an INNER join it can only
/// drop probe rows that could never match.
struct ProbeFilter {
    /// Probe key ordinal in the scan's schema.
    col: usize,
    summary: KeySummary,
}

/// A [`ProbeFilter`] resolved against one slice's physical column vectors.
enum SpecProbe<'s> {
    I64 { vals: &'s [i64], nulls: &'s NullMap, summary: &'s KeySummary },
    /// Dictionary columns test each distinct value once, then filter rows
    /// by code through the precomputed keep table.
    Dict { codes: &'s [u32], nulls: &'s NullMap, keep: Vec<bool> },
    Generic { col: &'s Column, summary: &'s KeySummary },
}

impl ProbeFilter {
    fn specialize<'s>(&'s self, slice: &'s Slice) -> SpecProbe<'s> {
        let c = &slice.columns[self.col];
        if let Some(vals) = c.i64_data() {
            if int_key_type(c.data_type) {
                return SpecProbe::I64 { vals, nulls: &c.nulls, summary: &self.summary };
            }
        }
        if let (Some(codes), Some(dict)) = (c.str_codes(), c.dictionary()) {
            let keep = dict.iter().map(|v| self.summary.contains_str(v)).collect();
            return SpecProbe::Dict { codes, nulls: &c.nulls, keep };
        }
        SpecProbe::Generic { col: c, summary: &self.summary }
    }
}

impl SpecProbe<'_> {
    /// Drop selected positions whose key provably matches no build key.
    /// NULL probe keys never join, so they drop too (INNER-only pushdown).
    fn filter(&self, sel: &mut Vec<u32>) {
        match self {
            SpecProbe::I64 { vals, nulls, summary } => {
                compact(sel, |p| !nulls.is_null(p) && summary.contains_i64(vals[p]))
            }
            SpecProbe::Dict { codes, nulls, keep } => {
                compact(sel, |p| !nulls.is_null(p) && keep[codes[p] as usize])
            }
            SpecProbe::Generic { col, summary } => {
                compact(sel, |p| summary.matches_value(&col.get(p)))
            }
        }
    }
}

/// Is this plan a bare (possibly filtered) scan the derived join-filter can
/// push into?
fn probe_is_scan(plan: &Plan) -> bool {
    match plan {
        Plan::Scan { .. } => true,
        Plan::Filter { input, .. } => matches!(input.as_ref(), Plan::Scan { .. }),
        _ => false,
    }
}

/// Split an ON predicate into equi-key pairs bindable against the two
/// sides. Returns the key expression lists plus the total conjunct count
/// (equal lengths mean key equality covers the whole predicate).
fn equi_keys(
    on: &Expr,
    lres: &FlatResolver,
    rres: &FlatResolver,
) -> (Vec<BoundExpr>, Vec<BoundExpr>, usize) {
    let conjs = idaa_host_conjuncts(on);
    let total = conjs.len();
    let mut lkeys: Vec<BoundExpr> = Vec::new();
    let mut rkeys: Vec<BoundExpr> = Vec::new();
    for conj in conjs {
        if let Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = conj {
            if let (Ok(la), Ok(rb)) = (bind(a, lres), bind(b, rres)) {
                lkeys.push(la);
                rkeys.push(rb);
                continue;
            }
            if let (Ok(lb), Ok(ra)) = (bind(b, lres), bind(a, rres)) {
                lkeys.push(lb);
                rkeys.push(ra);
            }
        }
    }
    (lkeys, rkeys, total)
}

/// Digest the build side's keys for probe-side pushdown. Only INNER joins
/// with a typed layout over a plain (possibly filtered) probe-side scan
/// qualify: LEFT joins must see every probe row to null-extend, and the
/// interpreted oracle pushes nothing.
fn derive_probe_filter(
    left: &Plan,
    lkeys: &[BoundExpr],
    layout: KeyLayout,
    kind: JoinKind,
    mode: ExecMode,
    rkeyed: &Keyed,
) -> Option<ProbeFilter> {
    if kind != JoinKind::Inner
        || mode != ExecMode::Vectorized
        || layout == KeyLayout::Generic
        || !probe_is_scan(left)
    {
        return None;
    }
    let col = lkeys[0].as_column()?;
    let mut summary = KeySummary::with_capacity(rkeyed.len());
    for (_, key) in rkeyed.iter().flatten() {
        match key {
            JoinKey::I64(v) => summary.insert_i64(*v),
            JoinKey::Str(s) => summary.insert_str(s),
            JoinKey::Row(_) => return None,
        }
    }
    Some(ProbeFilter { col, summary })
}

/// Execute the probe side of a join with a derived join-filter pushed into
/// its scan (shapes pre-checked by [`derive_probe_filter`]; anything else
/// falls back to the plain path).
fn run_probe_scan(left: &Plan, ctx: &ExecCtx, pf: &ProbeFilter) -> Result<Vec<Row>> {
    let rows = match left {
        Plan::Scan { table, .. } => {
            let t = ctx.engine.table(table)?;
            scan_filtered_with(&t, None, ctx, None, Some(left), Some(pf))?
        }
        Plan::Filter { input, predicate }
            if matches!(input.as_ref(), Plan::Scan { .. }) =>
        {
            let Plan::Scan { table, .. } = input.as_ref() else { unreachable!() };
            let t = ctx.engine.table(table)?;
            let cols = input.cols();
            scan_filtered_with(&t, Some((predicate, &cols)), ctx, None, Some(left), Some(pf))?
        }
        _ => return run_masked(left, ctx, None),
    };
    if let Some(prof) = ctx.profile {
        prof.record(left, rows.len() as u64);
    }
    Ok(rows)
}

fn run_join(
    plan: &Plan,
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    on: &Expr,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let lcols = left.cols();
    let rcols = right.cols();
    let lres = resolver_of(&lcols);
    let rres = resolver_of(&rcols);
    let combined = lres.concat(&rres);
    let bound_on = bind(on, &combined)?;

    let (lkeys, rkeys, total_conjs) = equi_keys(on, &lres, &rres);
    // When every ON conjunct became an equi-key pair, key equality *is* the
    // whole predicate — matched candidates skip the per-row ON re-check.
    let on_covered = lkeys.len() == total_conjs;

    let rwidth = rcols.len();
    let workers = ctx.engine.config.workers();

    // Build side (right) first: its finished key digest can pre-filter the
    // probe-side scan before any probe row materializes.
    let rrows = run_masked(right, ctx, None)?;

    if lkeys.is_empty() {
        let lrows = run_masked(left, ctx, None)?;
        return nested_loop_join(&lrows, &rrows, kind, &bound_on, rwidth, workers);
    }

    let mut layout = key_layout(&lkeys, &lcols, &rkeys, &rcols);
    let mut rkeyed = match try_extract_keys(&rkeys, &rrows, layout)? {
        Some(k) => k,
        None => {
            layout = KeyLayout::Generic;
            extract_generic(&rkeys, &rrows)?
        }
    };

    let prefilter = derive_probe_filter(left, &lkeys, layout, kind, ctx.mode, &rkeyed);
    let lrows = match &prefilter {
        Some(pf) => run_probe_scan(left, ctx, pf)?,
        None => run_masked(left, ctx, None)?,
    };

    let lkeyed = match try_extract_keys(&lkeys, &lrows, layout)? {
        Some(k) => k,
        None => {
            // A probe value fell outside the layout class. This can only
            // happen when no filter was pushed (a typed layout over a bare
            // scan column always yields in-class values), so re-extracting
            // both sides generically is safe and exact.
            rkeyed = extract_generic(&rkeys, &rrows)?;
            extract_generic(&lkeys, &lrows)?
        }
    };

    let residual_on = if on_covered { None } else { Some(&bound_on) };
    let (out, bloom_skipped) =
        hash_join(&lrows, &rrows, kind, &lkeyed, &rkeyed, residual_on, rwidth, workers)?;
    if let Some(prof) = ctx.profile {
        prof.record_bloom(plan, bloom_skipped);
    }
    Ok(out)
}

/// Partitioned parallel hash join over pre-extracted keys: both sides are
/// split by key hash across the worker pool, each partition builds a hash
/// table *and a Bloom filter* over its build keys and probes independently,
/// and partition outputs concatenate in partition order (deterministic for
/// a given configuration). The Bloom filter is consulted before any hash
/// table lookup; it only ever false-positives, so skipped probes are
/// exactly the hash-table misses (the second returned value counts them).
/// LEFT-join padding stays correct because a probe row's key maps it to
/// exactly one partition — a Bloom skip leaves `matched` false and the row
/// null-extends in place; probe rows with NULL keys ride along in
/// partition 0 and can only null-extend.
#[allow(clippy::too_many_arguments)]
fn hash_join(
    lrows: &[Row],
    rrows: &[Row],
    kind: JoinKind,
    lkeyed: &Keyed,
    rkeyed: &Keyed,
    residual_on: Option<&BoundExpr>,
    rwidth: usize,
    workers: usize,
) -> Result<(Vec<Row>, u64)> {
    let parts = workers.clamp(1, lrows.len().max(1));
    let mut build_parts: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (i, k) in rkeyed.iter().enumerate() {
        if let Some((h, _)) = k {
            build_parts[(h % parts as u64) as usize].push(i);
        }
    }
    let mut probe_parts: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (i, k) in lkeyed.iter().enumerate() {
        let h = k.as_ref().map(|(h, _)| *h).unwrap_or(0);
        probe_parts[(h % parts as u64) as usize].push(i);
    }

    let results = run_parts(parts, |p| -> Result<(Vec<Row>, u64)> {
        let mut table: HashMap<u64, Vec<usize>> =
            HashMap::with_capacity(build_parts[p].len());
        let mut bloom = KeySummary::with_capacity(build_parts[p].len());
        for &ri in &build_parts[p] {
            let (h, _) = rkeyed[ri].as_ref().expect("build partitions hold keyed rows");
            bloom.insert_hash(*h);
            table.entry(*h).or_default().push(ri);
        }
        let mut out = Vec::new();
        let mut skipped = 0u64;
        for &li in &probe_parts[p] {
            let mut matched = false;
            if let Some((h, key)) = &lkeyed[li] {
                if !bloom.might_contain(*h) {
                    skipped += 1;
                } else if let Some(cands) = table.get(h) {
                    for &ri in cands {
                        let (_, rkey) = rkeyed[ri].as_ref().expect("keyed");
                        if rkey != key {
                            continue; // same hash bucket, different key
                        }
                        let mut j = lrows[li].clone();
                        j.extend(rrows[ri].iter().cloned());
                        if let Some(b) = residual_on {
                            if !eval_predicate(b, &j)? {
                                continue;
                            }
                        }
                        matched = true;
                        out.push(j);
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut j = lrows[li].clone();
                j.extend(std::iter::repeat_n(Value::Null, rwidth));
                out.push(j);
            }
        }
        Ok((out, skipped))
    });
    let mut out = Vec::new();
    let mut skipped = 0u64;
    for r in results {
        let (rows, s) = r?;
        out.extend(rows);
        skipped += s;
    }
    Ok((out, skipped))
}

/// Nested-loop join for non-equi conditions, parallelized over contiguous
/// probe chunks — chunk order concatenation reproduces the serial output
/// exactly.
fn nested_loop_join(
    lrows: &[Row],
    rrows: &[Row],
    kind: JoinKind,
    bound_on: &BoundExpr,
    rwidth: usize,
    workers: usize,
) -> Result<Vec<Row>> {
    let chunk = lrows.len().div_ceil(workers.max(1)).max(1);
    let chunks: Vec<&[Row]> = lrows.chunks(chunk).collect();
    let results = run_parts(chunks.len(), |ci| -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for lrow in chunks[ci] {
            let mut matched = false;
            for rrow in rrows {
                let mut j = lrow.clone();
                j.extend(rrow.iter().cloned());
                if eval_predicate(bound_on, &j)? {
                    matched = true;
                    out.push(j);
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut j = lrow.clone();
                j.extend(std::iter::repeat_n(Value::Null, rwidth));
                out.push(j);
            }
        }
        Ok(out)
    });
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// One aggregate argument in a fused pipeline.
enum FusedArg {
    Star,
    Col(usize),
    Expr(BoundExpr),
}

/// A [`FusedArg`] specialized against one slice's column vectors. Integer
/// and double columns feed accumulators through the typed
/// [`AggState::update_i64`]/[`AggState::update_f64`] entry points — no
/// per-row [`Value`] construction; every other shape keeps the generic
/// per-value path.
enum ArgSlot<'a> {
    Star,
    I64 { vals: &'a [i64], nulls: &'a NullMap, native: fn(i64) -> Value },
    F64 { vals: &'a [f64], nulls: &'a NullMap },
    Generic(usize),
    Expr(&'a BoundExpr),
}

impl<'a> ArgSlot<'a> {
    fn specialize(arg: &'a FusedArg, slice: &'a Slice) -> ArgSlot<'a> {
        match arg {
            FusedArg::Star => ArgSlot::Star,
            FusedArg::Expr(b) => ArgSlot::Expr(b),
            FusedArg::Col(i) => {
                let c = &slice.columns[*i];
                // `native` must rebuild exactly what `Column::get` renders
                // for the declared type, or typed accumulation drifts from
                // the interpreter (e.g. a single-row SUM keeps the native
                // type; only the second value promotes to BigInt).
                let native: Option<fn(i64) -> Value> = match c.data_type {
                    idaa_common::DataType::SmallInt => Some(|v| Value::SmallInt(v as i16)),
                    idaa_common::DataType::Integer => Some(|v| Value::Int(v as i32)),
                    idaa_common::DataType::BigInt => Some(Value::BigInt),
                    _ => None,
                };
                match (c.i64_data(), c.f64_data(), native) {
                    (Some(vals), _, Some(native)) => {
                        ArgSlot::I64 { vals, nulls: &c.nulls, native }
                    }
                    (_, Some(vals), _) if c.data_type == idaa_common::DataType::Double => {
                        ArgSlot::F64 { vals, nulls: &c.nulls }
                    }
                    _ => ArgSlot::Generic(*i),
                }
            }
        }
    }
}

/// A fully compiled fused scan→filter→aggregate pipeline. Produced by
/// [`compile_fused`]; `None` from there means the plan takes the
/// interpreted [`run_aggregate`] path instead.
struct FusedPipeline {
    table: std::sync::Arc<AccelTable>,
    key_ords: Vec<usize>,
    args: Vec<FusedArg>,
    /// Ordinals any expression argument reads (scratch-row fill list).
    expr_cols: Vec<usize>,
    kernels: Vec<Kernel>,
}

/// Check whether `Aggregate(input)` can run fused, and compile it if so:
/// the input must be `Scan` or `Filter(Scan)`, every group key a bare
/// column, every aggregate argument bindable against the scan, and the
/// whole predicate must compile to kernels.
fn compile_fused(
    input: &Plan,
    group_exprs: &[Expr],
    aggs: &[idaa_sql::plan::AggCall],
    engine: &AccelEngine,
) -> Result<Option<FusedPipeline>> {
    let (table_name, predicate, scan_cols) = match input {
        Plan::Scan { table, cols, .. } if !cols.is_empty() => (table, None, cols.clone()),
        Plan::Filter { input: inner, predicate } => match inner.as_ref() {
            Plan::Scan { table, cols, .. } if !cols.is_empty() => {
                (table, Some(predicate), cols.clone())
            }
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let table = engine.table(table_name)?;
    // Group keys must be bare columns of the scan; aggregate arguments may
    // additionally be scalar expressions over scan columns (CAST, arithmetic
    // on a column, …) — those evaluate against a scratch row holding only
    // the columns the expression reads.
    let resolver = resolver_of(&scan_cols);
    let mut key_ords = Vec::with_capacity(group_exprs.len());
    for g in group_exprs {
        match bind(g, &resolver) {
            Ok(b) => match b.as_column() {
                Some(i) => key_ords.push(i),
                None => return Ok(None),
            },
            Err(_) => return Ok(None),
        }
    }
    let mut args: Vec<FusedArg> = Vec::with_capacity(aggs.len());
    let mut expr_cols: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for a in aggs {
        match &a.arg {
            None => args.push(FusedArg::Star),
            Some(e) => match bind(e, &resolver) {
                Ok(b) => match b.as_column() {
                    Some(i) => args.push(FusedArg::Col(i)),
                    None => {
                        b.collect_columns(&mut expr_cols);
                        args.push(FusedArg::Expr(b));
                    }
                },
                Err(_) => return Ok(None),
            },
        }
    }
    let expr_cols: Vec<usize> = {
        let mut v: Vec<usize> = expr_cols.into_iter().collect();
        v.sort_unstable();
        v
    };
    // The whole predicate must compile to kernels.
    let mut kernels: Vec<Kernel> = Vec::new();
    if let Some(pred) = predicate {
        for conj in idaa_host_conjuncts(pred) {
            match compile_kernel(conj, &table, &scan_cols) {
                Some(k) => kernels.push(k),
                None => return Ok(None),
            }
        }
    }
    Ok(Some(FusedPipeline { table, key_ords, args, expr_cols, kernels }))
}

/// Fused vectorized aggregation: when the plan is `Aggregate(Filter(Scan))`
/// (or `Aggregate(Scan)`), every group key and aggregate argument is a bare
/// column, and the whole predicate compiles to kernels, aggregate states are
/// fed *directly from the column vectors* over the surviving selection
/// vector — no row materialization, no per-row expression interpretation.
/// This is the accelerator's bread and butter for reporting queries.
fn try_fused_aggregate(
    agg_node: &Plan,
    input: &Plan,
    group_exprs: &[Expr],
    aggs: &[idaa_sql::plan::AggCall],
    ctx: &ExecCtx,
) -> Result<Option<Vec<Row>>> {
    if ctx.mode == ExecMode::Interpreted {
        return Ok(None);
    }
    let Some(fused) = compile_fused(input, group_exprs, aggs, ctx.engine)? else {
        return Ok(None);
    };
    let FusedPipeline { table, key_ords, args, expr_cols, kernels } = &fused;

    let engine = ctx.engine;
    let use_zones = engine.config.zone_maps;
    let snap = ctx.snap;
    let width = table.schema.len();
    let slices = table.slices();

    let fuse_slice =
        |slice_lock: &parking_lot::RwLock<Slice>| -> Result<(Groups, u64)> {
            let slice = slice_lock.read();
            let spec: Vec<SpecKernel> = kernels.iter().map(|k| k.specialize(&slice)).collect();
            let total = slice.version_count();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut groups: Groups = Vec::new();
            // Typed accumulation slots: column arguments whose slice vector
            // is numeric feed `AggState` through the monomorphic
            // `update_i64`/`update_f64` entry points; everything else goes
            // through the generic per-value path.
            let slots: Vec<ArgSlot<'_>> = args
                .iter()
                .map(|a| ArgSlot::specialize(a, &slice))
                .collect();
            // Single dictionary-string group key: map dictionary codes to
            // group indices through a dense table (slot 0 = NULL) instead
            // of hashing a materialized `Vec<Value>` key per row. Group
            // creation stays in first-occurrence order, so merge order is
            // unchanged.
            let mut dict_key: Option<(&[u32], &NullMap, Vec<usize>)> = match key_ords.as_slice() {
                [k] => {
                    let col = &slice.columns[*k];
                    col.str_codes().map(|codes| {
                        let dict_len = col.dictionary().map_or(0, <[String]>::len);
                        (codes, &col.nulls, vec![usize::MAX; dict_len + 1])
                    })
                }
                _ => None,
            };
            // Scratch row for expression arguments: only the ordinals an
            // expression reads are ever filled in.
            let mut scratch: Row = vec![Value::Null; width];
            let mut sel: Vec<u32> = Vec::with_capacity(BLOCK_ROWS.min(total));
            let mut batches = 0u64;
            let blocks = slice.block_count();
            for b in 0..blocks {
                engine.stats.blocks_scanned.fetch_add(1, Ordering::Relaxed);
                if use_zones && zone_prunes(kernels, &slice, b) {
                    engine.stats.blocks_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                batches += 1;
                let (start, end) = select_block(&mut sel, &slice, b, total, engine, &snap);
                for k in &spec {
                    if sel.is_empty() {
                        break;
                    }
                    k.filter(&mut sel);
                }
                for &p in &sel {
                    let pos = p as usize;
                    let gi = if key_ords.is_empty() {
                        if groups.is_empty() {
                            groups.push((
                                Vec::new(),
                                aggs.iter().map(|a| AggState::new(a.kind, a.distinct)).collect(),
                            ));
                        }
                        0
                    } else if let Some((codes, knulls, map)) = &mut dict_key {
                        // NULL rows carry the empty-string code, so the
                        // null bit must decide the slot before the code.
                        let slot =
                            if knulls.is_null(pos) { 0 } else { codes[pos] as usize + 1 };
                        match map[slot] {
                            usize::MAX => {
                                groups.push((
                                    vec![slice.columns[key_ords[0]].get(pos)],
                                    aggs.iter()
                                        .map(|a| AggState::new(a.kind, a.distinct))
                                        .collect(),
                                ));
                                map[slot] = groups.len() - 1;
                                groups.len() - 1
                            }
                            i => i,
                        }
                    } else {
                        let key: Vec<Value> =
                            key_ords.iter().map(|&i| slice.columns[i].get(pos)).collect();
                        match index.get(&key) {
                            Some(&i) => i,
                            None => {
                                groups.push((
                                    key.clone(),
                                    aggs.iter()
                                        .map(|a| AggState::new(a.kind, a.distinct))
                                        .collect(),
                                ));
                                index.insert(key, groups.len() - 1);
                                groups.len() - 1
                            }
                        }
                    };
                    if !expr_cols.is_empty() {
                        for &c in expr_cols {
                            scratch[c] = slice.columns[c].get(pos);
                        }
                    }
                    for (state, slot) in groups[gi].1.iter_mut().zip(&slots) {
                        match slot {
                            ArgSlot::Star => state.update(&Value::Null)?,
                            ArgSlot::I64 { vals, nulls, native } => {
                                if !nulls.is_null(pos) {
                                    state.update_i64(vals[pos], native)?;
                                }
                            }
                            ArgSlot::F64 { vals, nulls } => {
                                if !nulls.is_null(pos) {
                                    state.update_f64(vals[pos])?;
                                }
                            }
                            ArgSlot::Generic(i) => state.update(&slice.columns[*i].get(pos))?,
                            ArgSlot::Expr(b) => state.update(&eval(b, &scratch)?)?,
                        }
                    }
                }
                engine
                    .stats
                    .rows_scanned
                    .fetch_add((end - start) as u64, Ordering::Relaxed);
            }
            Ok((groups, batches))
        };

    // One partial per slice, scanned in parallel like the base scan, merged
    // in slice order so group order matches the serial pass.
    let partials: Vec<(Groups, u64)> = if engine.config.parallel && slices.len() > 1 {
        run_parts(slices.len(), |si| fuse_slice(&slices[si])).into_iter().collect::<Result<_>>()?
    } else {
        let mut v = Vec::with_capacity(slices.len());
        for s in slices {
            v.push(fuse_slice(s)?);
        }
        v
    };
    let mut batches = 0u64;
    let mut groups_parts = Vec::with_capacity(partials.len());
    for (g, b) in partials {
        groups_parts.push(g);
        batches += b;
    }
    if let Some(prof) = ctx.profile {
        prof.record_vectorized(agg_node, batches);
    }
    let groups = merge_groups(groups_parts)?;
    Ok(Some(finish_groups(groups, group_exprs, aggs)?))
}

/// Classify which pipeline the accelerator would use for `plan` — surfaced
/// through plain `EXPLAIN` without executing anything.
pub fn describe_pipeline(plan: &Plan, engine: &AccelEngine) -> String {
    if let Some(desc) = find_fused(plan, engine) {
        return desc;
    }
    if let Some(desc) = find_join(plan) {
        return desc;
    }
    describe_scan(plan, engine)
        .unwrap_or_else(|| "interpreted (no batch-eligible scan)".to_string())
}

/// Report on the first join in the tree, mirroring `run_join`'s static
/// decisions: equi-key extraction, declared-type key layout, Bloom-guarded
/// probe, and whether the build digest pushes into the probe scan as a
/// derived join-filter.
fn find_join(plan: &Plan) -> Option<String> {
    if let Plan::Join { left, right, kind, on } = plan {
        let lcols = left.cols();
        let rcols = right.cols();
        let lres = resolver_of(&lcols);
        let rres = resolver_of(&rcols);
        let (lkeys, rkeys, _) = equi_keys(on, &lres, &rres);
        if lkeys.is_empty() {
            return Some("interpreted (nested-loop join)".to_string());
        }
        let layout = key_layout(&lkeys, &lcols, &rkeys, &rcols);
        let keys = match layout {
            KeyLayout::I64 => "typed i64 keys",
            KeyLayout::Str => "typed string keys",
            KeyLayout::Generic => "generic keys",
        };
        let pushdown =
            layout != KeyLayout::Generic && *kind == JoinKind::Inner && probe_is_scan(left);
        return Some(match (layout, pushdown) {
            (KeyLayout::Generic, _) => {
                format!("interpreted (hash join: {keys}, bloom-guarded probe)")
            }
            (_, true) => format!(
                "vectorized (hash join: {keys}, bloom-guarded probe, derived probe filter)"
            ),
            (_, false) => format!("vectorized (hash join: {keys}, bloom-guarded probe)"),
        });
    }
    plan.children().into_iter().find_map(find_join)
}

/// Find the first aggregate in the tree that would take the fused path
/// (aggregates usually sit under a `Project`, so the root alone is not
/// enough).
fn find_fused(plan: &Plan, engine: &AccelEngine) -> Option<String> {
    if let Plan::Aggregate { input, group_exprs, aggs, .. } = plan {
        if matches!(compile_fused(input, group_exprs, aggs, engine), Ok(Some(_))) {
            return Some("vectorized (fused scan-filter-aggregate)".to_string());
        }
    }
    plan.children().into_iter().find_map(|c| find_fused(c, engine))
}

/// Report on the first filtered scan in the tree: how many conjuncts
/// compile to kernels and whether an interpreted residual remains.
fn describe_scan(plan: &Plan, engine: &AccelEngine) -> Option<String> {
    match plan {
        Plan::Filter { input, predicate } => {
            if let Plan::Scan { table, .. } = input.as_ref() {
                let t = engine.table(table).ok()?;
                let cols = input.cols();
                let conjs = idaa_host_conjuncts(predicate);
                let total = conjs.len();
                let compiled =
                    conjs.iter().filter(|c| compile_kernel(c, &t, &cols).is_some()).count();
                return Some(if compiled == 0 {
                    format!("interpreted (0/{total} conjuncts compile to kernels)")
                } else if compiled == total {
                    format!("vectorized ({compiled}/{total} conjuncts as kernels)")
                } else {
                    format!(
                        "vectorized ({compiled}/{total} conjuncts as kernels + interpreted residual)"
                    )
                });
            }
            describe_scan(input, engine)
        }
        Plan::Scan { .. } => Some("vectorized (columnar scan, no kernels)".to_string()),
        _ => plan.children().into_iter().find_map(|c| describe_scan(c, engine)),
    }
}

/// Grouped partial-aggregation state: insertion-ordered groups plus a key
/// index. Insertion order is what makes chunked aggregation deterministic —
/// merging chunk results in chunk order reproduces the serial
/// first-encounter group order exactly.
type Groups = Vec<(Vec<Value>, Vec<AggState>)>;

/// Aggregate one run of rows into insertion-ordered groups.
fn aggregate_rows(
    rows: &[Row],
    bound_keys: &[BoundExpr],
    bound_args: &[Option<BoundExpr>],
    aggs: &[idaa_sql::plan::AggCall],
) -> Result<Groups> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Groups = Vec::new();
    for row in rows {
        let key: Vec<Value> = bound_keys.iter().map(|k| eval(k, row)).collect::<Result<_>>()?;
        let gi = match index.get(&key) {
            Some(&i) => i,
            None => {
                groups.push((
                    key.clone(),
                    aggs.iter().map(|a| AggState::new(a.kind, a.distinct)).collect(),
                ));
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (state, arg) in groups[gi].1.iter_mut().zip(bound_args) {
            let v = match arg {
                Some(b) => eval(b, row)?,
                None => Value::Null,
            };
            state.update(&v)?;
        }
    }
    Ok(groups)
}

/// Fold per-worker partial groups together in worker order.
fn merge_groups(parts: Vec<Groups>) -> Result<Groups> {
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    let mut index: HashMap<Vec<Value>, usize> =
        acc.iter().enumerate().map(|(i, (k, _))| (k.clone(), i)).collect();
    for part in iter {
        for (key, states) in part {
            match index.get(&key) {
                Some(&i) => {
                    for (a, b) in acc[i].1.iter_mut().zip(&states) {
                        a.merge(b)?;
                    }
                }
                None => {
                    index.insert(key.clone(), acc.len());
                    acc.push((key, states));
                }
            }
        }
    }
    Ok(acc)
}

/// Turn finished groups into output rows (`key columns… then aggregates…`).
fn finish_groups(mut groups: Groups, group_exprs: &[Expr], aggs: &[idaa_sql::plan::AggCall]) -> Result<Vec<Row>> {
    if groups.is_empty() && group_exprs.is_empty() {
        groups.push((vec![], aggs.iter().map(|a| AggState::new(a.kind, a.distinct)).collect()));
    }
    groups
        .into_iter()
        .map(|(mut key, states)| {
            for s in states {
                key.push(s.finish()?);
            }
            Ok(key)
        })
        .collect()
}

fn run_aggregate(
    input: &Plan,
    group_exprs: &[Expr],
    aggs: &[idaa_sql::plan::AggCall],
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let cols = input.cols();
    let resolver = resolver_of(&cols);
    let bound_keys: Vec<BoundExpr> =
        group_exprs.iter().map(|e| bind(e, &resolver)).collect::<Result<_>>()?;
    let bound_args: Vec<Option<BoundExpr>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| bind(e, &resolver)).transpose())
        .collect::<Result<_>>()?;

    let refs: Vec<&BoundExpr> =
        bound_keys.iter().chain(bound_args.iter().flatten()).collect();
    let child_mask = mask_of(cols.len(), &refs);
    let rows = run_masked(input, ctx, Some(child_mask))?;

    let workers = ctx.engine.config.workers();
    let groups = if workers > 1 && rows.len() > 1 {
        let chunk = rows.len().div_ceil(workers).max(1);
        let chunks: Vec<&[Row]> = rows.chunks(chunk).collect();
        let parts: Vec<Groups> =
            run_parts(chunks.len(), |ci| aggregate_rows(chunks[ci], &bound_keys, &bound_args, aggs))
                .into_iter()
                .collect::<Result<_>>()?;
        merge_groups(parts)?
    } else {
        aggregate_rows(&rows, &bound_keys, &bound_args, aggs)?
    };
    finish_groups(groups, group_exprs, aggs)
}

// Kernel-level unit tests live here; engine-level behavior is tested in
// `engine.rs` and the integration suite.
#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{DataType, ObjectName};

    #[test]
    fn zone_pruning_rules() {
        let z = ZoneEntry { min: 10.0, max: 20.0, valid: true };
        let k = |op, val| Kernel::Num { col: 0, op, val };
        assert!(k(BinaryOp::Eq, 5.0).prunes(&z));
        assert!(k(BinaryOp::Eq, 25.0).prunes(&z));
        assert!(!k(BinaryOp::Eq, 15.0).prunes(&z));
        assert!(k(BinaryOp::Lt, 10.0).prunes(&z));
        assert!(!k(BinaryOp::Lt, 11.0).prunes(&z));
        assert!(k(BinaryOp::Gt, 20.0).prunes(&z));
        assert!(!k(BinaryOp::Gt, 19.0).prunes(&z));
        assert!(k(BinaryOp::LtEq, 9.0).prunes(&z));
        assert!(k(BinaryOp::GtEq, 21.0).prunes(&z));
        let point = ZoneEntry { min: 7.0, max: 7.0, valid: true };
        assert!(k(BinaryOp::Neq, 7.0).prunes(&point));
        assert!(!k(BinaryOp::Neq, 8.0).prunes(&point));
        // Invalid zones never prune.
        let inv = ZoneEntry::default();
        assert!(!k(BinaryOp::Eq, 5.0).prunes(&inv));
    }

    #[test]
    fn range_and_null_zone_pruning_rules() {
        let z = ZoneEntry { min: 10.0, max: 20.0, valid: true };
        let range = |lo, hi, negated| Kernel::Range { col: 0, lo, hi, negated };
        // BETWEEN prunes blocks entirely outside [lo, hi]…
        assert!(range(1.0, 9.0, false).prunes(&z));
        assert!(range(21.0, 30.0, false).prunes(&z));
        // …but never blocks that touch the range.
        assert!(!range(1.0, 10.0, false).prunes(&z));
        assert!(!range(20.0, 30.0, false).prunes(&z));
        assert!(!range(12.0, 14.0, false).prunes(&z));
        // NOT BETWEEN prunes only blocks entirely inside [lo, hi].
        assert!(range(10.0, 20.0, true).prunes(&z));
        assert!(range(5.0, 25.0, true).prunes(&z));
        assert!(!range(11.0, 20.0, true).prunes(&z));
        assert!(!range(10.0, 19.0, true).prunes(&z));
        // Invalid zones never prune.
        assert!(!range(1.0, 9.0, false).prunes(&ZoneEntry::default()));
        // NULL-ness kernels never prune (zones don't track NULLs), and
        // neither do string kernels.
        let isnull = Kernel::IsNull { col: 0, negated: false };
        assert!(!isnull.prunes(&z));
        assert!(isnull.zone_col().is_none());
        let s = Kernel::Str { col: 0, val: "x".into(), negated: false };
        assert!(s.zone_col().is_none());
    }

    #[test]
    fn kernel_compilation() {
        let table = AccelTable::new(
            ObjectName::bare("T"),
            Schema::new(vec![
                ColumnDef::new("A", DataType::Integer),
                ColumnDef::new("S", DataType::Varchar(8)),
            ])
            .unwrap(),
            vec![],
            1,
        );
        let cols: Vec<PlanCol> = table
            .schema
            .columns()
            .iter()
            .map(|c| PlanCol {
                qualifier: Some("T".into()),
                name: c.name.clone(),
                data_type: c.data_type,
            })
            .collect();
        // col < lit compiles.
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE a < 5").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        let k = compile_kernel(q.filter.as_ref().unwrap(), &table, &cols);
        assert!(matches!(k, Some(Kernel::Num { op: BinaryOp::Lt, .. })));
        // lit > col flips.
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE 5 > a").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        let k = compile_kernel(q.filter.as_ref().unwrap(), &table, &cols);
        assert!(matches!(k, Some(Kernel::Num { op: BinaryOp::Lt, .. })));
        // string equality compiles to the string kernel.
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE s = 'x'").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        let k = compile_kernel(q.filter.as_ref().unwrap(), &table, &cols);
        assert!(matches!(k, Some(Kernel::Str { negated: false, .. })));
        // LIKE does not compile (stays residual).
        let e = idaa_sql::parse_statement("SELECT 1 FROM t WHERE s LIKE 'x%'").unwrap();
        let idaa_sql::Statement::Query(q) = e else { panic!() };
        assert!(compile_kernel(q.filter.as_ref().unwrap(), &table, &cols).is_none());

        let compile = |sql: &str| {
            let e = idaa_sql::parse_statement(sql).unwrap();
            let idaa_sql::Statement::Query(q) = e else { panic!() };
            compile_kernel(q.filter.as_ref().unwrap(), &table, &cols)
        };
        // BETWEEN over a numeric column compiles to a range kernel.
        let k = compile("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5");
        assert!(
            matches!(k, Some(Kernel::Range { lo, hi, negated: false, .. }) if lo == 1.0 && hi == 5.0)
        );
        let k = compile("SELECT 1 FROM t WHERE a NOT BETWEEN 1 AND 5");
        assert!(matches!(k, Some(Kernel::Range { negated: true, .. })));
        // String BETWEEN stays residual (kernels only range over numerics).
        assert!(compile("SELECT 1 FROM t WHERE s BETWEEN 'a' AND 'b'").is_none());
        // A bound beyond 2^53 is not exactly representable in f64: bail to
        // the exact residual evaluator (same guard as plain comparisons).
        assert!(compile("SELECT 1 FROM t WHERE a BETWEEN 1 AND 9007199254740993").is_none());
        assert!(compile("SELECT 1 FROM t WHERE a = 9007199254740993").is_none());
        // IS [NOT] NULL compiles for any column type.
        assert!(matches!(
            compile("SELECT 1 FROM t WHERE a IS NULL"),
            Some(Kernel::IsNull { negated: false, .. })
        ));
        assert!(matches!(
            compile("SELECT 1 FROM t WHERE s IS NOT NULL"),
            Some(Kernel::IsNull { negated: true, .. })
        ));
    }

    /// Run `kernel` over all positions of the first slice of `table`,
    /// returning the surviving positions.
    fn filter_positions(table: &AccelTable, n: usize, kernel: &Kernel) -> Vec<u32> {
        let slice = table.slices()[0].read();
        let spec = kernel.specialize(&slice);
        let mut sel: Vec<u32> = (0..n as u32).collect();
        spec.filter(&mut sel);
        sel
    }

    #[test]
    fn str_kernel_negated_matches_values_absent_from_dictionary() {
        let table = AccelTable::new(
            ObjectName::bare("T"),
            Schema::new(vec![ColumnDef::new("S", DataType::Varchar(8))]).unwrap(),
            vec![],
            1,
        );
        let rows: Vec<Row> = vec![
            vec![Value::Varchar("a".into())],
            vec![Value::Null],
            vec![Value::Varchar("b".into())],
            vec![Value::Varchar("a".into())],
        ];
        let checked: Vec<Row> =
            rows.iter().map(|r| table.schema.check_row(r).unwrap()).collect();
        table.insert_bulk(&checked, 1).unwrap();
        let run = |negated: bool, val: &str| {
            filter_positions(&table, rows.len(), &Kernel::Str {
                col: 0,
                val: val.into(),
                negated,
            })
        };
        // "zzz" is absent from the dictionary: equality matches nothing,
        // while the negated kernel matches every non-NULL row.
        assert_eq!(run(false, "zzz"), Vec::<u32>::new());
        assert_eq!(run(true, "zzz"), vec![0, 2, 3]);
        // Present value: Eq picks the matching rows, Neq the other non-NULLs.
        assert_eq!(run(false, "a"), vec![0, 3]);
        assert_eq!(run(true, "a"), vec![2]);
        // The dictionary probe is memoized: repeated lookups return the
        // same slice, not a rebuilt one.
        let slice = table.slices()[0].read();
        let first = slice.columns[0].codes_matching("a").as_ptr();
        let second = slice.columns[0].codes_matching("a").as_ptr();
        assert_eq!(first, second);
    }

    #[test]
    fn batch_kernels_match_row_oracle() {
        let table = AccelTable::new(
            ObjectName::bare("T"),
            Schema::new(vec![
                ColumnDef::new("A", DataType::BigInt),
                ColumnDef::new("D", DataType::Double),
            ])
            .unwrap(),
            vec![],
            1,
        );
        let mut rows: Vec<Row> = Vec::new();
        for i in 0..300i64 {
            let a = if i % 7 == 0 { Value::Null } else { Value::BigInt(i % 50 - 10) };
            let d = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Double((i % 40) as f64 * 0.25)
            };
            rows.push(vec![a, d]);
        }
        let checked: Vec<Row> =
            rows.iter().map(|r| table.schema.check_row(r).unwrap()).collect();
        table.insert_bulk(&checked, 1).unwrap();
        let kernels = [
            Kernel::Num { col: 0, op: BinaryOp::Lt, val: 7.0 },
            Kernel::Num { col: 0, op: BinaryOp::Eq, val: -3.0 },
            Kernel::Num { col: 1, op: BinaryOp::GtEq, val: 4.5 },
            Kernel::Range { col: 0, lo: -5.0, hi: 12.0, negated: false },
            Kernel::Range { col: 0, lo: -5.0, hi: 12.0, negated: true },
            Kernel::Range { col: 1, lo: 1.25, hi: 6.75, negated: false },
            Kernel::Range { col: 1, lo: 1.25, hi: 6.75, negated: true },
            // Fractional bounds against the i64 column exercise the
            // generic `numeric_at` fallback loop.
            Kernel::Range { col: 0, lo: -4.5, hi: 11.5, negated: false },
            Kernel::Num { col: 0, op: BinaryOp::Gt, val: 2.5 },
            Kernel::IsNull { col: 0, negated: false },
            Kernel::IsNull { col: 0, negated: true },
            Kernel::IsNull { col: 1, negated: false },
        ];
        let slice = table.slices()[0].read();
        for kernel in &kernels {
            // Per-row oracle straight from the kernel's defining semantics:
            // NULL never matches a comparison or range, and IS [NOT] NULL
            // reads only the null bitmap.
            let oracle: Vec<u32> = (0..rows.len())
                .filter(|&p| {
                    let null = slice.columns[match kernel {
                        Kernel::Num { col, .. }
                        | Kernel::Range { col, .. }
                        | Kernel::Str { col, .. }
                        | Kernel::IsNull { col, .. } => *col,
                    }]
                    .nulls
                    .is_null(p);
                    match kernel {
                        Kernel::Num { col, op, val } => match slice.columns[*col].numeric_at(p)
                        {
                            None => false,
                            Some(x) => cmp_f64(*op, x, *val),
                        },
                        Kernel::Range { col, lo, hi, negated } => {
                            match slice.columns[*col].numeric_at(p) {
                                None => false,
                                Some(x) => (x >= *lo && x <= *hi) != *negated,
                            }
                        }
                        Kernel::IsNull { negated, .. } => null != *negated,
                        Kernel::Str { .. } => unreachable!(),
                    }
                })
                .map(|p| p as u32)
                .collect();
            let spec = kernel.specialize(&slice);
            let mut sel: Vec<u32> = (0..rows.len() as u32).collect();
            spec.filter(&mut sel);
            assert_eq!(sel, oracle, "kernel {kernel:?}");
        }
    }

    /// Deterministic pseudo-random rows: (key, payload) pairs with heavy
    /// key duplication so joins and sorts exercise ties.
    fn synth_rows(n: usize, seed: u64, key_mod: i64) -> Vec<Row> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                // splitmix64 step — fixed, no external RNG.
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                vec![Value::BigInt((z % key_mod as u64) as i64), Value::BigInt(i as i64)]
            })
            .collect()
    }

    fn canon(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.cmp_total(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    #[test]
    fn parallel_sort_matches_serial() {
        let rows = synth_rows(501, 7, 13);
        let keys = [(0usize, false), (1usize, true)];
        let serial = sort_rows(rows.clone(), &keys, 1);
        for workers in [2, 3, 4, 8] {
            assert_eq!(sort_rows(rows.clone(), &keys, workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn parallel_sort_is_stable_like_serial() {
        // Many ties on the single sort key: the k-way merge must preserve
        // the original relative order of equal rows, like the serial
        // stable sort does.
        let rows = synth_rows(200, 3, 4);
        let keys = [(0usize, false)];
        let serial = sort_rows(rows.clone(), &keys, 1);
        assert_eq!(sort_rows(rows, &keys, 4), serial);
    }

    #[test]
    fn top_k_matches_stable_sort_truncate() {
        let rows = synth_rows(300, 11, 9);
        let keys = [(0usize, true)];
        for k in [0usize, 1, 5, 50, 299, 300, 400] {
            let mut expect = sort_rows(rows.clone(), &keys, 1);
            expect.truncate(k);
            let got = top_k(rows.clone(), k, sort_cmp(&keys));
            assert_eq!(got, expect, "k={k}");
        }
    }

    /// Extract both sides under `layout`, with the whole-join generic
    /// fallback `run_join` applies when a value falls outside the class.
    fn extract_both(
        lkeys: &[BoundExpr],
        lrows: &[Row],
        rkeys: &[BoundExpr],
        rrows: &[Row],
        layout: KeyLayout,
    ) -> (Keyed, Keyed) {
        match (
            try_extract_keys(lkeys, lrows, layout).unwrap(),
            try_extract_keys(rkeys, rrows, layout).unwrap(),
        ) {
            (Some(l), Some(r)) => (l, r),
            _ => (
                extract_generic(lkeys, lrows).unwrap(),
                extract_generic(rkeys, rrows).unwrap(),
            ),
        }
    }

    #[test]
    fn hash_join_parallel_matches_serial() {
        let mut lrows = synth_rows(400, 1, 37);
        let mut rrows = synth_rows(350, 2, 37);
        // Sprinkle NULL keys on both sides: they must never match, and
        // LEFT joins must null-extend the probe-side ones exactly once.
        for i in (0..rrows.len()).step_by(41) {
            rrows[i][0] = Value::Null;
        }
        for i in (0..lrows.len()).step_by(53) {
            lrows[i][0] = Value::Null;
        }
        let lkeys = [BoundExpr::Column(0)];
        let rkeys = [BoundExpr::Column(0)];
        for layout in [KeyLayout::I64, KeyLayout::Generic] {
            let (lkeyed, rkeyed) = extract_both(&lkeys, &lrows, &rkeys, &rrows, layout);
            for kind in [JoinKind::Inner, JoinKind::Left] {
                let (serial, _) =
                    hash_join(&lrows, &rrows, kind, &lkeyed, &rkeyed, None, 2, 1).unwrap();
                for workers in [2, 4, 8] {
                    let (par, _) =
                        hash_join(&lrows, &rrows, kind, &lkeyed, &rkeyed, None, 2, workers)
                            .unwrap();
                    // Partition concatenation order differs from serial row
                    // order, but the multiset of joined rows is identical.
                    assert_eq!(
                        canon(par),
                        canon(serial.clone()),
                        "{layout:?} {kind:?} workers={workers}"
                    );
                }
                if kind == JoinKind::Left {
                    let padded = serial
                        .iter()
                        .filter(|r| r[2] == Value::Null && r[3] == Value::Null)
                        .count();
                    assert!(padded > 0, "expected null-extended probe rows");
                }
            }
        }
    }

    /// Row-at-a-time oracle from the join's defining semantics: probe rows
    /// in input order, each matched against build rows in input order, NULL
    /// keys never matching, LEFT padding in place.
    fn oracle_join(lrows: &[Row], rrows: &[Row], kind: JoinKind) -> Vec<Row> {
        let mut out = Vec::new();
        for lrow in lrows {
            let mut matched = false;
            for rrow in rrows {
                if lrow[0] == Value::Null || rrow[0] == Value::Null || lrow[0] != rrow[0] {
                    continue;
                }
                let mut j = lrow.clone();
                j.extend(rrow.iter().cloned());
                matched = true;
                out.push(j);
            }
            if !matched && kind == JoinKind::Left {
                let mut j = lrow.clone();
                j.extend(std::iter::repeat_n(Value::Null, 2));
                out.push(j);
            }
        }
        out
    }

    #[test]
    fn hash_join_serial_output_order_is_pinned() {
        let mut lrows = synth_rows(150, 9, 13);
        let mut rrows = synth_rows(120, 10, 13);
        for i in (0..rrows.len()).step_by(17) {
            rrows[i][0] = Value::Null;
        }
        for i in (0..lrows.len()).step_by(19) {
            lrows[i][0] = Value::Null;
        }
        let keys = [BoundExpr::Column(0)];
        for layout in [KeyLayout::I64, KeyLayout::Generic] {
            let (lkeyed, rkeyed) = extract_both(&keys, &lrows, &keys, &rrows, layout);
            for kind in [JoinKind::Inner, JoinKind::Left] {
                // One partition ⇒ byte-identical to the nested oracle, not
                // just the same multiset: probe order, then build order.
                let (got, _) =
                    hash_join(&lrows, &rrows, kind, &lkeyed, &rkeyed, None, 2, 1).unwrap();
                assert_eq!(got, oracle_join(&lrows, &rrows, kind), "{layout:?} {kind:?}");
            }
        }
    }

    #[test]
    fn typed_key_extraction_falls_back_on_layout_violation() {
        let keys = [BoundExpr::Column(0)];
        // A Double value under the I64 layout: the whole side refuses.
        let rows = vec![vec![Value::BigInt(1)], vec![Value::Double(2.5)]];
        assert!(try_extract_keys(&keys, &rows, KeyLayout::I64).unwrap().is_none());
        // A number under the Str layout likewise.
        let rows = vec![vec![Value::Varchar("a".into())], vec![Value::Int(3)]];
        assert!(try_extract_keys(&keys, &rows, KeyLayout::Str).unwrap().is_none());
        // The generic layout accepts anything.
        let rows = vec![vec![Value::BigInt(1)], vec![Value::Double(2.5)], vec![Value::Null]];
        let keyed = try_extract_keys(&keys, &rows, KeyLayout::Generic).unwrap().unwrap();
        assert!(keyed[0].is_some() && keyed[1].is_some() && keyed[2].is_none());
    }

    #[test]
    fn string_keys_join_with_db2_padded_semantics() {
        // 'EU' must join 'EU  ' under both the typed and generic layouts,
        // exactly like Value equality for CHAR-family pairs.
        let lrows: Vec<Row> =
            vec![vec![Value::Varchar("EU".into())], vec![Value::Varchar("US ".into())]];
        let rrows: Vec<Row> =
            vec![vec![Value::Varchar("EU  ".into())], vec![Value::Varchar("ASIA".into())]];
        let keys = [BoundExpr::Column(0)];
        let mut outs = Vec::new();
        for layout in [KeyLayout::Str, KeyLayout::Generic] {
            let (lkeyed, rkeyed) = extract_both(&keys, &lrows, &keys, &rrows, layout);
            let (out, _) =
                hash_join(&lrows, &rrows, JoinKind::Inner, &lkeyed, &rkeyed, None, 1, 1)
                    .unwrap();
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0].len(), 1);
        assert_eq!(outs[0][0][0], Value::Varchar("EU".into()));
    }

    #[test]
    fn probe_filter_drops_only_never_matching_rows() {
        let table = AccelTable::new(
            ObjectName::bare("T"),
            Schema::new(vec![
                ColumnDef::new("K", DataType::BigInt),
                ColumnDef::new("S", DataType::Varchar(8)),
            ])
            .unwrap(),
            vec![],
            1,
        );
        let mut rows: Vec<Row> = Vec::new();
        for i in 0..500i64 {
            let k = if i % 23 == 0 { Value::Null } else { Value::BigInt(i % 90) };
            let s = if i % 31 == 0 {
                Value::Null
            } else {
                Value::Varchar(format!("V{}", i % 60))
            };
            rows.push(vec![k, s]);
        }
        let checked: Vec<Row> =
            rows.iter().map(|r| table.schema.check_row(r).unwrap()).collect();
        table.insert_bulk(&checked, 1).unwrap();

        // Build-side keys 0..40 on the i64 column, V0..V25 on the dict one.
        let mut int_summary = KeySummary::with_capacity(40);
        for v in 0..40i64 {
            int_summary.insert_i64(v);
        }
        let mut str_summary = KeySummary::with_capacity(25);
        for v in 0..25 {
            str_summary.insert_str(&format!("V{v}"));
        }
        let slice = table.slices()[0].read();
        for (pf, matches) in [
            (
                ProbeFilter { col: 0, summary: int_summary },
                (0..rows.len())
                    .filter(|&p| matches!(rows[p][0], Value::BigInt(v) if v < 40))
                    .collect::<Vec<usize>>(),
            ),
            (
                ProbeFilter { col: 1, summary: str_summary },
                (0..rows.len())
                    .filter(|&p| match &rows[p][1] {
                        Value::Varchar(s) => {
                            s[1..].parse::<i64>().expect("V<number>") < 25
                        }
                        _ => false,
                    })
                    .collect::<Vec<usize>>(),
            ),
        ] {
            let spec = pf.specialize(&slice);
            let mut sel: Vec<u32> = (0..rows.len() as u32).collect();
            spec.filter(&mut sel);
            // No false negatives: every truly matching position survives,
            // in ascending order; NULLs always drop.
            for &p in &matches {
                assert!(sel.binary_search(&(p as u32)).is_ok(), "dropped true match {p}");
            }
            for &p in &sel {
                assert!(rows[p as usize][pf.col] != Value::Null, "kept a NULL key");
            }
            assert!(sel.windows(2).all(|w| w[0] < w[1]), "selection not ascending");
        }
    }

    #[test]
    fn materialize_block_matches_per_row_get() {
        let table = AccelTable::new(
            ObjectName::bare("T"),
            Schema::new(vec![
                ColumnDef::new("I", DataType::Integer),
                ColumnDef::new("D", DataType::Double),
                ColumnDef::new("N", DataType::Decimal(7, 2)),
                ColumnDef::new("S", DataType::Varchar(8)),
            ])
            .unwrap(),
            vec![],
            1,
        );
        let mut rows: Vec<Row> = Vec::new();
        for i in 0..40i64 {
            rows.push(vec![
                if i % 5 == 0 { Value::Null } else { Value::Int(i as i32 - 7) },
                if i % 7 == 0 { Value::Null } else { Value::Double(i as f64 * 0.5) },
                if i % 9 == 0 {
                    Value::Null
                } else {
                    Value::Decimal(idaa_common::Decimal::new((i * 125) as i128, 2))
                },
                if i % 4 == 0 { Value::Null } else { Value::Varchar(format!("s{}", i % 6)) },
            ]);
        }
        let checked: Vec<Row> =
            rows.iter().map(|r| table.schema.check_row(r).unwrap()).collect();
        table.insert_bulk(&checked, 1).unwrap();
        let slice = table.slices()[0].read();
        let sel: Vec<u32> = (0..rows.len() as u32).step_by(3).collect();
        for mask in [None, Some(vec![true, false, true, false])] {
            let mut got: Vec<Row> = Vec::new();
            materialize_block(&slice, &sel, mask.as_deref(), &mut got);
            let expect: Vec<Row> = sel
                .iter()
                .map(|&p| {
                    slice
                        .columns
                        .iter()
                        .enumerate()
                        .map(|(i, c)| {
                            if mask.as_ref().is_none_or(|m| m[i]) {
                                c.get(p as usize)
                            } else {
                                Value::Null
                            }
                        })
                        .collect()
                })
                .collect();
            assert_eq!(got, expect, "mask={mask:?}");
        }
    }

    #[test]
    fn nested_loop_parallel_matches_serial_order_exactly() {
        let lrows = synth_rows(120, 5, 11);
        let rrows = synth_rows(90, 6, 11);
        // Non-equi ON: left.key < right.key.
        let on = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinaryOp::Lt,
            right: Box::new(BoundExpr::Column(2)),
        };
        for kind in [JoinKind::Inner, JoinKind::Left] {
            let serial = nested_loop_join(&lrows, &rrows, kind, &on, 2, 1).unwrap();
            for workers in [2, 4, 7] {
                // Chunk-order concatenation reproduces the serial output
                // byte for byte — not just as a multiset.
                let par = nested_loop_join(&lrows, &rrows, kind, &on, 2, workers).unwrap();
                assert_eq!(par, serial, "{kind:?} workers={workers}");
            }
        }
    }
}
