//! Typed column vectors with null bitmaps — the accelerator's storage
//! primitive.
//!
//! Unlike the host's slotted pages, a column here is a dense `Vec` of a
//! primitive representation chosen from the declared SQL type, plus a
//! bitmap for NULLs. Scans touch only the columns a query references and
//! run as tight loops over primitives — the source of the accelerator's
//! OLAP advantage in every experiment.

use idaa_common::{DataType, Decimal, Error, Result, Value};
use std::sync::OnceLock;

/// A compact null bitmap.
#[derive(Debug, Clone, Default)]
pub struct NullMap {
    words: Vec<u64>,
    len: usize,
}

impl NullMap {
    /// Append one validity flag (`true` = NULL).
    pub fn push(&mut self, is_null: bool) {
        let bit = self.len;
        self.len += 1;
        if bit / 64 >= self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// Is position `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// Number of flags stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no flags stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Count of NULL positions.
    pub fn null_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed 64-bit words (bit set = NULL). Vectorized `IS [NOT] NULL`
    /// kernels test whole words at a time: an all-zero word means 64
    /// consecutive non-NULL positions with a single load.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word `w` of the bitmap (0 when beyond the stored words — trailing
    /// positions are non-NULL by construction).
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words.get(w).copied().unwrap_or(0)
    }
}

/// The physical representation of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer family, BOOLEAN, DATE and TIMESTAMP widened to `i64`.
    I64(Vec<i64>),
    /// DOUBLE.
    F64(Vec<f64>),
    /// DECIMAL units at the column's declared scale.
    Dec(Vec<i128>),
    /// Character data, dictionary encoded: `codes[i]` indexes `values`.
    /// Typical OLAP string columns (regions, product codes, topics) have
    /// tiny dictionaries, so this both compresses the column and turns
    /// string-equality kernels into integer comparisons.
    Str { codes: Vec<u32>, values: Vec<String>, index: FxLikeMap },
}

/// Dictionary lookup map (String → code).
pub type FxLikeMap = std::collections::HashMap<String, u32>;

/// One stored column: declared type, physical vector, null bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    pub data_type: DataType,
    pub data: ColumnData,
    pub nulls: NullMap,
    /// Lazily built trimmed-value → dictionary-codes probe for string
    /// kernels, invalidated whenever the dictionary grows. Building it once
    /// per column means repeated kernel specializations (more slices, more
    /// queries) cost an O(1) hash probe instead of re-scanning the
    /// dictionary.
    dict_probe: OnceLock<FxLikeMap2>,
}

/// Trimmed dictionary probe map (trimmed string → codes carrying it).
type FxLikeMap2 = std::collections::HashMap<String, Vec<u32>>;

impl Column {
    /// Empty column for `data_type`.
    pub fn new(data_type: DataType) -> Column {
        let data = match data_type {
            DataType::Double => ColumnData::F64(Vec::new()),
            DataType::Decimal(_, _) => ColumnData::Dec(Vec::new()),
            DataType::Varchar(_) | DataType::Char(_) => ColumnData::Str {
                codes: Vec::new(),
                values: Vec::new(),
                index: FxLikeMap::default(),
            },
            _ => ColumnData::I64(Vec::new()),
        };
        Column { data_type, data, nulls: NullMap::default(), dict_probe: OnceLock::new() }
    }

    /// Number of stored positions (including NULL slots).
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Dec(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value (must already be coerced to the column type by
    /// `Schema::check_row`).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            self.nulls.push(true);
            match &mut self.data {
                ColumnData::I64(vec) => vec.push(0),
                ColumnData::F64(vec) => vec.push(0.0),
                ColumnData::Dec(vec) => vec.push(0),
                ColumnData::Str { codes, values, index } => {
                    let before = values.len();
                    let code = *index.entry(String::new()).or_insert_with(|| {
                        values.push(String::new());
                        (values.len() - 1) as u32
                    });
                    codes.push(code);
                    if values.len() != before {
                        self.dict_probe.take();
                    }
                }
            }
            return Ok(());
        }
        self.nulls.push(false);
        match (&mut self.data, v) {
            (ColumnData::I64(vec), _) => vec.push(v.as_i64()?),
            (ColumnData::F64(vec), _) => vec.push(v.as_f64()?),
            (ColumnData::Dec(vec), Value::Decimal(d)) => {
                let scale = match self.data_type {
                    DataType::Decimal(_, s) => s,
                    _ => d.scale(),
                };
                vec.push(d.rescale(scale)?.units());
            }
            (ColumnData::Dec(vec), _) => {
                let scale = match self.data_type {
                    DataType::Decimal(_, s) => s,
                    _ => 0,
                };
                vec.push(Decimal::from_int(v.as_i64()?).rescale(scale)?.units());
            }
            (ColumnData::Str { codes, values, index }, Value::Varchar(s)) => {
                let code = match index.get(s) {
                    Some(&c) => c,
                    None => {
                        values.push(s.clone());
                        let c = (values.len() - 1) as u32;
                        index.insert(s.clone(), c);
                        self.dict_probe.take();
                        c
                    }
                };
                codes.push(code);
            }
            (ColumnData::Str { .. }, other) => {
                return Err(Error::TypeMismatch(format!(
                    "cannot store {other} in a character column"
                )))
            }
        }
        Ok(())
    }

    /// Read position `i` back as a [`Value`] of the declared type.
    pub fn get(&self, i: usize) -> Value {
        if self.nulls.is_null(i) {
            return Value::Null;
        }
        match (&self.data, self.data_type) {
            (ColumnData::I64(v), DataType::SmallInt) => Value::SmallInt(v[i] as i16),
            (ColumnData::I64(v), DataType::Integer) => Value::Int(v[i] as i32),
            (ColumnData::I64(v), DataType::BigInt) => Value::BigInt(v[i]),
            (ColumnData::I64(v), DataType::Boolean) => Value::Boolean(v[i] != 0),
            (ColumnData::I64(v), DataType::Date) => Value::Date(v[i] as i32),
            (ColumnData::I64(v), DataType::Timestamp) => Value::Timestamp(v[i]),
            (ColumnData::I64(v), _) => Value::BigInt(v[i]),
            (ColumnData::F64(v), _) => Value::Double(v[i]),
            (ColumnData::Dec(v), DataType::Decimal(_, s)) => Value::Decimal(Decimal::new(v[i], s)),
            (ColumnData::Dec(v), _) => Value::Decimal(Decimal::new(v[i], 0)),
            (ColumnData::Str { codes, values, .. }, _) => Value::Varchar(values[codes[i] as usize].clone()),
        }
    }

    /// Dictionary of a string column (None for non-string columns).
    pub fn dictionary(&self) -> Option<&[String]> {
        match &self.data {
            ColumnData::Str { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Dictionary code at position `i` (None for NULL or non-string).
    #[inline]
    pub fn code_at(&self, i: usize) -> Option<u32> {
        if self.nulls.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Str { codes, .. } => Some(codes[i]),
            _ => None,
        }
    }

    /// Numeric image of position `i` for vectorized comparison kernels
    /// (`None` for NULL or non-numeric columns).
    #[inline]
    pub fn numeric_at(&self, i: usize) -> Option<f64> {
        if self.nulls.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::I64(v) => Some(v[i] as f64),
            ColumnData::F64(v) => Some(v[i]),
            ColumnData::Dec(v) => {
                let scale = match self.data_type {
                    DataType::Decimal(_, s) => s,
                    _ => 0,
                };
                Some(Decimal::new(v[i], scale).to_f64())
            }
            ColumnData::Str { .. } => None,
        }
    }

    /// Dictionary codes whose value equals `want` under trailing-space-
    /// insensitive comparison (CHAR padding semantics). Empty for values
    /// absent from the dictionary and for non-string columns. The probe map
    /// is built once per column and memoized until the dictionary grows, so
    /// kernel specialization never re-scans an unchanged dictionary.
    pub fn codes_matching(&self, want: &str) -> &[u32] {
        static EMPTY: [u32; 0] = [];
        let ColumnData::Str { values, .. } = &self.data else { return &EMPTY };
        let probe = self.dict_probe.get_or_init(|| {
            let mut map = FxLikeMap2::with_capacity(values.len());
            for (code, v) in values.iter().enumerate() {
                map.entry(v.trim_end_matches(' ').to_string())
                    .or_default()
                    .push(code as u32);
            }
            map
        });
        probe.get(want.trim_end_matches(' ')).map(|v| v.as_slice()).unwrap_or(&EMPTY)
    }

    /// The raw `i64` vector behind integer/BOOLEAN/DATE/TIMESTAMP columns
    /// (batch kernels iterate this directly; NULL slots hold 0 and must be
    /// masked via [`Self::nulls`]).
    #[inline]
    pub fn i64_data(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw `f64` vector behind DOUBLE columns.
    #[inline]
    pub fn f64_data(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The dictionary-code vector behind string columns.
    #[inline]
    pub fn str_codes(&self) -> Option<&[u32]> {
        match &self.data {
            ColumnData::Str { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// Projection kernel: append this column's value at each selected
    /// position to the corresponding output row (`rows[k]` receives
    /// position `sel[k]`). The storage dispatch is hoisted out of the loop,
    /// but every appended [`Value`] is exactly what per-position
    /// [`Self::get`] renders — late materialization must be invisible in
    /// the output.
    pub fn gather_into(&self, sel: &[u32], rows: &mut [Vec<Value>]) {
        debug_assert_eq!(sel.len(), rows.len());
        match (&self.data, self.data_type) {
            (ColumnData::I64(v), t) => {
                let native: fn(i64) -> Value = match t {
                    DataType::SmallInt => |x| Value::SmallInt(x as i16),
                    DataType::Integer => |x| Value::Int(x as i32),
                    DataType::Boolean => |x| Value::Boolean(x != 0),
                    DataType::Date => |x| Value::Date(x as i32),
                    DataType::Timestamp => Value::Timestamp,
                    _ => Value::BigInt,
                };
                for (row, &p) in rows.iter_mut().zip(sel) {
                    let p = p as usize;
                    row.push(if self.nulls.is_null(p) { Value::Null } else { native(v[p]) });
                }
            }
            (ColumnData::F64(v), _) => {
                for (row, &p) in rows.iter_mut().zip(sel) {
                    let p = p as usize;
                    row.push(if self.nulls.is_null(p) {
                        Value::Null
                    } else {
                        Value::Double(v[p])
                    });
                }
            }
            (ColumnData::Dec(v), t) => {
                let scale = match t {
                    DataType::Decimal(_, s) => s,
                    _ => 0,
                };
                for (row, &p) in rows.iter_mut().zip(sel) {
                    let p = p as usize;
                    row.push(if self.nulls.is_null(p) {
                        Value::Null
                    } else {
                        Value::Decimal(Decimal::new(v[p], scale))
                    });
                }
            }
            (ColumnData::Str { codes, values, .. }, _) => {
                for (row, &p) in rows.iter_mut().zip(sel) {
                    let p = p as usize;
                    row.push(if self.nulls.is_null(p) {
                        Value::Null
                    } else {
                        Value::Varchar(values[codes[p] as usize].clone())
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nullmap_tracks_positions() {
        let mut m = NullMap::default();
        for i in 0..130 {
            m.push(i % 3 == 0);
        }
        assert_eq!(m.len(), 130);
        assert!(m.is_null(0));
        assert!(!m.is_null(1));
        assert!(m.is_null(129));
        assert_eq!(m.null_count(), 44);
    }

    #[test]
    fn int_column_roundtrip() {
        let mut c = Column::new(DataType::Integer);
        c.push(&Value::Int(5)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int(-7)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(5));
        assert!(c.get(1).is_null());
        assert_eq!(c.get(2), Value::Int(-7));
    }

    #[test]
    fn decimal_column_preserves_scale() {
        let mut c = Column::new(DataType::Decimal(10, 2));
        c.push(&Value::Decimal(Decimal::parse("12.34").unwrap())).unwrap();
        c.push(&Value::Decimal(Decimal::parse("5.1").unwrap())).unwrap();
        assert_eq!(c.get(0).render(), "12.34");
        assert_eq!(c.get(1).render(), "5.10");
    }

    #[test]
    fn string_column_and_type_errors() {
        let mut c = Column::new(DataType::Varchar(10));
        c.push(&Value::Varchar("abc".into())).unwrap();
        assert_eq!(c.get(0), Value::Varchar("abc".into()));
        assert!(c.push(&Value::Int(1)).is_err());
    }

    #[test]
    fn date_and_bool_roundtrip() {
        let mut d = Column::new(DataType::Date);
        d.push(&Value::Date(42)).unwrap();
        assert_eq!(d.get(0), Value::Date(42));
        let mut b = Column::new(DataType::Boolean);
        b.push(&Value::Boolean(true)).unwrap();
        assert_eq!(b.get(0), Value::Boolean(true));
    }

    #[test]
    fn string_dictionary_encoding() {
        let mut c = Column::new(DataType::Varchar(8));
        for s in ["EU", "US", "EU", "EU", "APAC", "US"] {
            c.push(&Value::Varchar(s.into())).unwrap();
        }
        c.push(&Value::Null).unwrap();
        assert_eq!(c.len(), 7);
        assert_eq!(c.dictionary().unwrap().len(), 4, "3 distinct values + the NULL placeholder slot is not created: EU/US/APAC");
        assert_eq!(c.get(0), Value::Varchar("EU".into()));
        assert_eq!(c.get(4), Value::Varchar("APAC".into()));
        assert!(c.get(6).is_null());
        assert_eq!(c.code_at(0), c.code_at(2), "same string, same code");
        assert_ne!(c.code_at(0), c.code_at(1));
        assert_eq!(c.code_at(6), None, "NULL has no code");
        // Non-string columns expose no dictionary.
        let ic = Column::new(DataType::Integer);
        assert!(ic.dictionary().is_none());
    }

    #[test]
    fn numeric_view() {
        let mut c = Column::new(DataType::Decimal(6, 2));
        c.push(&Value::Decimal(Decimal::parse("2.50").unwrap())).unwrap();
        c.push(&Value::Null).unwrap();
        assert_eq!(c.numeric_at(0), Some(2.5));
        assert_eq!(c.numeric_at(1), None);
        let mut s = Column::new(DataType::Varchar(4));
        s.push(&Value::Varchar("x".into())).unwrap();
        assert_eq!(s.numeric_at(0), None);
    }
}
