//! The accelerator engine facade — the "IDAA server + Netezza backend"
//! stand-in that the federation layer talks to.
//!
//! Holds the accelerator-side catalog (replicated tables *and*
//! accelerator-only tables look identical here), the transaction registry
//! (enrolled in host transactions), and entry points for queries, AOT DML,
//! bulk load, and grooming.

use crate::durable::{Checkpoint, DurableStore, LogRecord, ScrubReport, SliceImage, TableImage};
use crate::exec::{describe_pipeline, execute_plan, scan_filtered, ExecCtx, ExecMode};
use crate::mvcc::{CommitSeq, Snapshot, TxnId, TxnRegistry, TxnStatus};
use crate::table::{AccelTable, RowPos};
use idaa_common::{wire, Error, ObjectName, Result, Row, Rows, Schema};
use idaa_netsim::{sites, FaultRegistry};
use idaa_sql::ast::{Expr, Query};
use idaa_sql::eval::{bind, eval, FlatResolver};
use idaa_sql::plan::{plan_query, Plan, PlanProfile, SchemaProvider};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for the accelerator (ablation experiments flip these).
#[derive(Debug, Clone)]
pub struct AccelConfig {
    /// Data slices per table (worker parallelism).
    pub slices: usize,
    /// Use zone maps for block pruning.
    pub zone_maps: bool,
    /// Scan slices in parallel threads.
    pub parallel: bool,
    /// Worker threads for post-scan operators (joins, aggregation, sort).
    /// `0` means "auto": `available_parallelism()` capped at `slices`.
    pub parallelism: usize,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig { slices: 4, zone_maps: true, parallel: true, parallelism: 0 }
    }
}

impl AccelConfig {
    /// Effective worker count for parallel operators: 1 when `parallel` is
    /// off, else the explicit `parallelism`, else `available_parallelism()`
    /// capped at the slice count.
    pub fn workers(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.parallelism > 0 {
            return self.parallelism;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.slices.max(1))
    }
}

/// Operation counters exposed to the bench harness.
#[derive(Debug, Default)]
pub struct AccelStats {
    pub rows_scanned: AtomicU64,
    pub blocks_scanned: AtomicU64,
    pub blocks_pruned: AtomicU64,
    pub queries: AtomicU64,
    pub rows_inserted: AtomicU64,
    pub rows_deleted: AtomicU64,
    pub versions_groomed: AtomicU64,
    /// Compiled-plan cache hits (statement planned before, deps unchanged).
    pub plan_cache_hits: AtomicU64,
    /// Compiled-plan cache misses (first sight, or invalidated deps).
    pub plan_cache_misses: AtomicU64,
    /// Storage corruptions detected (torn tails, rotted records or
    /// checkpoints), by recovery scans and the background scrub.
    pub disk_corruptions_detected: AtomicU64,
    /// Torn log records truncated (and durably re-logged) by recovery.
    pub disk_records_truncated: AtomicU64,
    /// Invalid checkpoints durably discarded in favor of an older valid
    /// one (the fallback replays the longer log tail).
    pub disk_checkpoint_fallbacks: AtomicU64,
    /// Background-scrub passes that repaired latent damage (fresh
    /// checkpoint + excision of the rotted media).
    pub disk_scrub_repairs: AtomicU64,
    /// Transient recovery-time disk read failures (`DISK_READ_FAIL`);
    /// the restart attempt errors and is retried.
    pub disk_read_failures: AtomicU64,
}

/// One cached compiled plan plus the catalog state it was compiled
/// against. Entries validate lazily at lookup: any referenced table whose
/// schema or dictionary fingerprint moved (DDL, dictionary growth, groom)
/// invalidates the entry and the statement replans.
struct CachedPlan {
    plan: Arc<Plan>,
    /// `(table, schema fingerprint, dictionary fingerprint)` per
    /// referenced table, in [`Plan::tables`] order.
    deps: Vec<(ObjectName, u64, u64)>,
}

/// What one [`AccelEngine::restart`] did: sizes feed the recovery-time
/// cost model (virtual time charged by the coordinator) and E16's table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartStats {
    /// Recovery epoch (incarnation number) after this restart.
    pub epoch: u64,
    /// Bytes of the checkpoint image restored (0 if none existed).
    pub checkpoint_bytes: u64,
    /// Log records replayed past the checkpoint.
    pub log_records_replayed: u64,
    /// Durable bytes of the replayed log tail.
    pub log_bytes_replayed: u64,
    /// In-flight (unprepared) transactions aborted by recovery.
    pub aborted_in_flight: u64,
    /// Prepared (in-doubt) transactions re-materialized for the
    /// coordinator's resolution.
    pub rematerialized_in_doubt: u64,
    /// Torn log records this restart truncated (and durably re-logged).
    pub torn_truncated: u64,
    /// Invalid checkpoints this restart discarded before finding a valid
    /// one (each fallback lengthens the replayed tail).
    pub checkpoint_fallbacks: u64,
    /// Storage corruptions this restart detected in total.
    pub corruptions_detected: u64,
}

/// The accelerator.
pub struct AccelEngine {
    tables: RwLock<HashMap<ObjectName, Arc<AccelTable>>>,
    pub txns: TxnRegistry,
    pub config: AccelConfig,
    pub stats: AccelStats,
    /// Per-transaction snapshot sequence captured at enrollment, giving
    /// transaction-level snapshot isolation (Netezza semantics).
    snapshots: RwLock<HashMap<TxnId, CommitSeq>>,
    default_schema: String,
    /// The in-memory "disk": checkpoints + commit log. Survives `crash`.
    durable: DurableStore,
    /// Unified failure-injection registry (shared with the coordinator).
    faults: RwLock<Arc<FaultRegistry>>,
    /// True between a crash and the end of the next `restart`.
    crashed: AtomicBool,
    /// True while `restart` replays the log (suppresses re-logging).
    replaying: AtomicBool,
    /// Recovery epoch: bumped by every completed restart. Exchanges carry
    /// it so pre-crash sequence state can be fenced off.
    epoch: AtomicU64,
    /// Stable appliance identity ("ACCEL1" by default; a fleet names its
    /// members ACCEL1..ACCELK). Carried on trace spans and error messages
    /// so failover paths can say *which* accelerator acted.
    identity: RwLock<String>,
    /// Compiled-plan cache, keyed by statement fingerprint. Volatile: a
    /// crash clears it along with the rest of in-memory state.
    plan_cache: RwLock<HashMap<u64, CachedPlan>>,
    /// Tables whose contents were lost to unrepairable storage corruption
    /// (durably logged as [`LogRecord::Quarantine`]): statements against
    /// them fail with -904 until a TRUNCATE + reload — never a silently
    /// empty answer. Volatile mirror of the durable records; replay
    /// rebuilds it.
    quarantined: RwLock<HashSet<ObjectName>>,
    /// Virtual time of the last background-scrub step (drives
    /// [`maybe_scrub`](Self::maybe_scrub)).
    last_scrub_at: Mutex<Option<Duration>>,
}

impl Default for AccelEngine {
    fn default() -> Self {
        AccelEngine::new("APP", AccelConfig::default())
    }
}

impl AccelEngine {
    /// Engine with the given default schema (must match the host's) and
    /// configuration.
    pub fn new(default_schema: &str, config: AccelConfig) -> AccelEngine {
        AccelEngine {
            tables: RwLock::new(HashMap::new()),
            txns: TxnRegistry::default(),
            config,
            stats: AccelStats::default(),
            snapshots: RwLock::new(HashMap::new()),
            default_schema: default_schema.to_string(),
            durable: DurableStore::default(),
            faults: RwLock::new(Arc::new(FaultRegistry::default())),
            crashed: AtomicBool::new(false),
            replaying: AtomicBool::new(false),
            epoch: AtomicU64::new(1),
            identity: RwLock::new("ACCEL1".to_string()),
            plan_cache: RwLock::new(HashMap::new()),
            quarantined: RwLock::new(HashSet::new()),
            last_scrub_at: Mutex::new(None),
        }
    }

    /// Name this appliance (fleet members are ACCEL1..ACCELK). Identity is
    /// operator-assigned at attach time and survives crashes — a restart
    /// changes the recovery [`epoch`](Self::epoch), never the identity.
    pub fn set_identity(&self, name: &str) {
        *self.identity.write() = name.to_string();
    }

    /// Stable appliance identity (default "ACCEL1").
    pub fn identity(&self) -> String {
        self.identity.read().clone()
    }

    fn resolve(&self, name: &ObjectName) -> ObjectName {
        name.resolve(&self.default_schema)
    }

    // -- crash / recovery --------------------------------------------------------

    /// Share a failure-injection registry (the coordinator installs its
    /// own so one `CrashPlan` drives accelerator and protocol sites).
    pub fn set_fault_registry(&self, registry: Arc<FaultRegistry>) {
        *self.faults.write() = registry;
    }

    /// The engine's current failure-injection registry.
    pub fn fault_registry(&self) -> Arc<FaultRegistry> {
        self.faults.read().clone()
    }

    /// The durable store (observability: log length/bytes, checkpoints).
    pub fn durable(&self) -> &DurableStore {
        &self.durable
    }

    /// Has the engine crashed and not yet been restarted?
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Recovery epoch (incarnation number): 1 at first boot, +1 per
    /// completed [`restart`](Self::restart).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Prepared (in-doubt) transactions awaiting the coordinator's 2PC
    /// decision — the set a restart re-materializes from the log.
    pub fn in_doubt(&self) -> Vec<TxnId> {
        self.txns.with_status(TxnStatus::Prepared)
    }

    /// Statements must not reach a crashed engine; the coordinator maps
    /// this to SQLCODE -904 (resource unavailable) while recovery runs.
    fn ensure_up(&self) -> Result<()> {
        if self.crashed.load(Ordering::Relaxed) && !self.replaying.load(Ordering::Relaxed) {
            return Err(Error::ResourceUnavailable(
                "accelerator crashed; restart and log replay required".into(),
            ));
        }
        Ok(())
    }

    /// Append to the commit log — unless recovery is replaying it. Used
    /// for small lifecycle records (begin/prepare/commit/abort and the
    /// quarantine marker), which the fault model treats as sector-atomic:
    /// they never tear. Already-written media can still rot afterwards
    /// (the `BITROT_LOG_SEGMENT` consult).
    fn log(&self, record: LogRecord) {
        if !self.replaying.load(Ordering::Relaxed) {
            self.durable.append(record);
            self.rot_point();
        }
    }

    /// Append a data-bearing record (inserts, delete-marks, DDL). These
    /// can tear mid-write (`TORN_LOG_APPEND`): the torn record occupies
    /// its LSN but was never acknowledged, the engine crashes on the
    /// spot, and recovery truncates the tear.
    fn log_data(&self, record: LogRecord) -> Result<()> {
        if self.replaying.load(Ordering::Relaxed) {
            return Ok(());
        }
        if self.faults.read().fire_disk(sites::TORN_LOG_APPEND).is_some() {
            self.durable.append_torn(record);
            self.crash();
            return Err(Error::ResourceUnavailable(format!(
                "accelerator crashed at fault site {}: commit-log append torn",
                sites::TORN_LOG_APPEND
            )));
        }
        self.durable.append(record);
        self.rot_point();
        Ok(())
    }

    /// Consult the bit-rot site after a successful append: a firing
    /// silently damages one already-written log record (chosen by the
    /// seeded parameter draw). Nothing is detected here — that is the
    /// scrub's and recovery's job.
    fn rot_point(&self) {
        if let Some(draw) = self.faults.read().fire_disk(sites::BITROT_LOG_SEGMENT) {
            self.durable.rot_log(draw);
        }
    }

    /// Consult the failure registry at a named crash site; a firing site
    /// crashes the engine (volatile state is lost) and surfaces as -904.
    pub fn crash_point(&self, site: &str) -> Result<()> {
        if self.replaying.load(Ordering::Relaxed) {
            return Ok(());
        }
        if self.faults.read().fire(site) {
            self.crash();
            return Err(Error::ResourceUnavailable(format!(
                "accelerator crashed at fault site {site}"
            )));
        }
        Ok(())
    }

    /// Crash now: all volatile state (tables, snapshots, transaction
    /// registry) is lost; only the durable store survives. The engine
    /// refuses work until [`restart`](Self::restart).
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::Relaxed);
        self.tables.write().clear();
        self.snapshots.write().clear();
        self.plan_cache.write().clear();
        self.quarantined.write().clear();
        self.txns.reset();
    }

    /// Rebuild state as checkpoint + log replay, durably abort in-flight
    /// (unprepared) transactions, and re-materialize prepared (in-doubt)
    /// transactions for the coordinator's 2PC resolver. Replaying the same
    /// durable state again (a second restart) reproduces the same engine
    /// state byte for byte.
    pub fn restart(&self) -> Result<RestartStats> {
        // A transient disk read failure aborts this restart attempt
        // before anything is touched; the engine stays crashed and the
        // coordinator's health machinery retries later.
        if self.faults.read().fire_disk(sites::DISK_READ_FAIL).is_some() {
            self.stats.disk_read_failures.fetch_add(1, Ordering::Relaxed);
            return Err(Error::ResourceUnavailable(format!(
                "disk read failed at fault site {} during recovery; retry",
                sites::DISK_READ_FAIL
            )));
        }
        self.replaying.store(true, Ordering::Relaxed);
        // Whatever volatile state remains is discarded: recovery starts
        // from the disk image alone.
        self.tables.write().clear();
        self.snapshots.write().clear();
        self.plan_cache.write().clear();
        self.quarantined.write().clear();
        self.txns.reset();

        // Validating read: torn tails truncated (durably re-logged),
        // invalid checkpoints discarded in favor of older valid ones.
        // Corruption beyond local repair leaves the engine crashed and
        // surfaces distinctly, so the coordinator can rebuild the node
        // from a replica or the host instead of serving damaged state.
        let set = match self.durable.recover_scan() {
            Ok(scan) => scan,
            Err(c) => {
                self.stats
                    .disk_corruptions_detected
                    .fetch_add(c.corruptions_detected.max(1), Ordering::Relaxed);
                self.replaying.store(false, Ordering::Relaxed);
                return Err(Error::StorageCorrupt(format!(
                    "durable state beyond local repair: {}",
                    c.detail
                )));
            }
        };
        self.stats
            .disk_corruptions_detected
            .fetch_add(set.corruptions_detected, Ordering::Relaxed);
        self.stats.disk_records_truncated.fetch_add(set.torn_truncated, Ordering::Relaxed);
        self.stats
            .disk_checkpoint_fallbacks
            .fetch_add(set.checkpoint_fallbacks, Ordering::Relaxed);
        let mut checkpoint_bytes = 0;
        if let Some(cp) = &set.checkpoint {
            checkpoint_bytes = cp.bytes();
            self.txns.restore(&cp.txn_states, cp.next_seq);
            let mut tables = self.tables.write();
            for img in &cp.tables {
                let t = AccelTable::new(
                    img.name.clone(),
                    img.schema.clone(),
                    img.dist_cols.clone(),
                    img.slices.len(),
                );
                for (si, s) in img.slices.iter().enumerate() {
                    let rows = wire::decode_rows(&s.frame, &img.schema)?;
                    t.restore_slice(si, &rows, &s.created, &s.deleted)?;
                }
                t.set_rr_cursor(img.rr);
                tables.insert(img.name.clone(), Arc::new(t));
            }
        }
        let log_records_replayed = set.tail.len() as u64;
        let mut log_bytes_replayed = 0;
        for (_, record) in &set.tail {
            log_bytes_replayed += record.bytes();
            self.apply_log_record(record)?;
        }
        self.crashed.store(false, Ordering::Relaxed);
        self.replaying.store(false, Ordering::Relaxed);
        // Unprepared transactions lost their session with the crash:
        // abort them durably (so a second crash replays the aborts too).
        let in_flight = self.txns.with_status(TxnStatus::Active);
        let aborted_in_flight = in_flight.len() as u64;
        for txn in in_flight {
            self.abort(txn);
        }
        let rematerialized_in_doubt = self.txns.with_status(TxnStatus::Prepared).len() as u64;
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(RestartStats {
            epoch,
            checkpoint_bytes,
            log_records_replayed,
            log_bytes_replayed,
            aborted_in_flight,
            rematerialized_in_doubt,
            torn_truncated: set.torn_truncated,
            checkpoint_fallbacks: set.checkpoint_fallbacks,
            corruptions_detected: set.corruptions_detected,
        })
    }

    fn apply_log_record(&self, record: &LogRecord) -> Result<()> {
        match record {
            LogRecord::Begin { txn } => self.txns.begin(*txn),
            LogRecord::Prepare { txn } => self.txns.prepare(*txn),
            LogRecord::Commit { txn, seq } => self.txns.commit_at(*txn, *seq),
            LogRecord::Abort { txn } => self.txns.abort(*txn),
            LogRecord::Insert { txn, table, frame } => {
                let t = self.table(table)?;
                let rows = wire::decode_rows(frame, &t.schema)?;
                t.insert_bulk(&rows, *txn)?;
            }
            LogRecord::Marks { txn, table, positions } => {
                let t = self.table(table)?;
                for &(slice, pos) in positions {
                    t.replay_delete_mark(RowPos { slice, pos }, *txn);
                }
            }
            LogRecord::CreateTable { name, schema, dist_cols, slices } => {
                self.tables.write().insert(
                    name.clone(),
                    Arc::new(AccelTable::new(
                        name.clone(),
                        schema.clone(),
                        dist_cols.clone(),
                        *slices,
                    )),
                );
            }
            LogRecord::DropTable { name } => {
                self.tables.write().remove(name);
                self.quarantined.write().remove(name);
            }
            LogRecord::Truncate { table } => {
                self.table(table)?.groom(|_| true, |_| true);
                self.quarantined.write().remove(table);
            }
            LogRecord::Groom { table } => {
                // The replayed registry is in the same state the original
                // was at this point in the log, so the same versions go.
                let t = self.table(table)?;
                t.groom(
                    |c| matches!(self.txns.status(c), TxnStatus::Aborted),
                    |d| matches!(self.txns.status(d), TxnStatus::Committed(_)),
                );
            }
            LogRecord::TornTail { .. } => {
                // Recovery's durably re-logged truncation decision: the
                // torn record it replaced was never acknowledged, so
                // there is nothing to apply.
            }
            LogRecord::Quarantine { table } => {
                self.quarantined.write().insert(table.clone());
            }
        }
        Ok(())
    }

    /// Take a checkpoint stamped with virtual time `now`: a consistent cut
    /// of every table heap, the MVCC watermark, and the full status map.
    /// Atomic: a crash mid-build (the `MID_CHECKPOINT` site) loses nothing
    /// — the previous checkpoint and the whole log stay intact. Returns
    /// the installed checkpoint's size in bytes.
    pub fn checkpoint(&self, now: Duration) -> Result<u64> {
        self.ensure_up()?;
        let cp = self.durable.with_consistent_cut(|covers_lsn| -> Result<Checkpoint> {
            let mut images = Vec::new();
            for name in self.table_names() {
                let t = self.table(&name)?;
                let mut slices = Vec::new();
                for slice_lock in t.slices() {
                    let slice = slice_lock.read();
                    let rows: Vec<Row> =
                        (0..slice.version_count()).map(|p| slice.row_at(p)).collect();
                    slices.push(SliceImage {
                        frame: wire::encode_frame(&t.schema, &rows),
                        created: slice.created.clone(),
                        deleted: slice.deleted.clone(),
                    });
                }
                images.push(TableImage {
                    name: t.name.clone(),
                    schema: t.schema.clone(),
                    dist_cols: t.dist_cols.clone(),
                    rr: t.rr_cursor(),
                    slices,
                });
            }
            Ok(Checkpoint {
                taken_at: now,
                covers_lsn,
                next_seq: self.txns.high_water(),
                txn_states: self.txns.all_states(),
                tables: images,
            })
        })?;
        self.crash_point(sites::MID_CHECKPOINT)?;
        // The install itself can tear mid-write: the torn image occupies
        // a retention slot but the previous checkpoint stays
        // authoritative, and the engine crashes on the spot.
        if self.faults.read().fire_disk(sites::TORN_CHECKPOINT).is_some() {
            self.durable.install_torn_checkpoint(cp);
            self.crash();
            return Err(Error::ResourceUnavailable(format!(
                "accelerator crashed at fault site {}: checkpoint write torn",
                sites::TORN_CHECKPOINT
            )));
        }
        let bytes = cp.bytes();
        self.durable.install_checkpoint(cp);
        // Already-written checkpoints can silently rot afterwards;
        // detection is the scrub's / recovery's job.
        if let Some(draw) = self.faults.read().fire_disk(sites::BITROT_CHECKPOINT) {
            self.durable.rot_checkpoint(draw);
        }
        Ok(bytes)
    }

    /// Periodic-checkpoint policy on the virtual clock: checkpoint if at
    /// least `every` has elapsed since the last one (or since boot) and
    /// there are records past the newest checkpoint's coverage. (The
    /// retained log can be longer — fallback coverage for the previous
    /// checkpoint — without making checkpoints due.) Returns whether a
    /// checkpoint was taken.
    pub fn maybe_checkpoint(&self, now: Duration, every: Duration) -> Result<bool> {
        if self.crashed.load(Ordering::Relaxed) || self.durable.tail_len() == 0 {
            return Ok(false);
        }
        let due = match self.durable.last_checkpoint_at() {
            None => now >= every,
            Some(last) => now >= last + every,
        };
        if !due {
            return Ok(false);
        }
        self.checkpoint(now)?;
        Ok(true)
    }

    /// Log records one background-scrub step re-verifies (a "segment").
    pub const SCRUB_SEGMENT_RECORDS: usize = 32;

    /// One background-scrub step: re-verify a segment of the durable
    /// media (round-robin cursor; checkpoints are re-verified when the
    /// cursor wraps). If anything fails verification, repair immediately
    /// while the in-memory state is still authoritative: take a fresh
    /// checkpoint at `now` and compact the store to it, excising the
    /// rotted record or checkpoint before it is ever read on the
    /// critical recovery path.
    pub fn scrub(&self, now: Duration) -> Result<ScrubReport> {
        self.ensure_up()?;
        let report = self.durable.scrub_step(Self::SCRUB_SEGMENT_RECORDS);
        if report.corruptions() > 0 {
            self.stats
                .disk_corruptions_detected
                .fetch_add(report.corruptions(), Ordering::Relaxed);
            self.checkpoint(now)?;
            self.durable.compact_to_latest();
            self.stats.disk_scrub_repairs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Periodic-scrub policy on the virtual clock: run one
    /// [`scrub`](Self::scrub) step if at least `every` has elapsed since
    /// the last one. `Duration::ZERO` disables scrubbing entirely (the
    /// default — the scrub is opt-in so fault-free runs stay
    /// byte-identical with older versions).
    pub fn maybe_scrub(&self, now: Duration, every: Duration) -> Result<Option<ScrubReport>> {
        if every.is_zero() || self.crashed.load(Ordering::Relaxed) {
            return Ok(None);
        }
        let due = match *self.last_scrub_at.lock() {
            None => now >= every,
            Some(last) => now >= last + every,
        };
        if !due {
            return Ok(None);
        }
        *self.last_scrub_at.lock() = Some(now);
        self.scrub(now).map(Some)
    }

    /// Durably quarantine `table` after its contents were lost to
    /// unrepairable storage corruption with nothing to rebuild from:
    /// statements against it fail with -904 (never a silently empty
    /// answer) until a TRUNCATE + reload lifts the quarantine.
    pub fn quarantine_table(&self, table: &ObjectName) -> Result<()> {
        self.ensure_up()?;
        let name = self.resolve(table);
        self.log(LogRecord::Quarantine { table: name.clone() });
        self.quarantined.write().insert(name);
        Ok(())
    }

    /// Tables currently quarantined (sorted, diagnostics).
    pub fn quarantined_tables(&self) -> Vec<ObjectName> {
        let mut v: Vec<ObjectName> = self.quarantined.read().iter().cloned().collect();
        v.sort();
        v
    }

    /// Statements must not touch a quarantined table (the coordinator
    /// maps this to -904 until the table is reloaded).
    fn ensure_not_quarantined(&self, name: &ObjectName) -> Result<()> {
        let name = self.resolve(name);
        if self.quarantined.read().contains(&name) {
            return Err(Error::ResourceUnavailable(format!(
                "accelerator table {name} is quarantined after storage loss; reload required"
            )));
        }
        Ok(())
    }

    /// Deterministic fingerprint of all recoverable engine state: table
    /// heaps (rows via the wire codec, version vectors, round-robin
    /// cursors) and the transaction registry. Two engines answer queries
    /// identically if their fingerprints match; the replay-idempotence
    /// property test asserts byte-identical state across restarts.
    pub fn state_fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        for name in self.table_names() {
            let t = self.table(&name).expect("listed table exists");
            buf.extend_from_slice(name.to_string().as_bytes());
            buf.extend_from_slice(&wire::schema_fingerprint(&t.schema).to_le_bytes());
            buf.extend_from_slice(&(t.rr_cursor() as u64).to_le_bytes());
            for d in &t.dist_cols {
                buf.extend_from_slice(&(*d as u64).to_le_bytes());
            }
            for slice_lock in t.slices() {
                let slice = slice_lock.read();
                let rows: Vec<Row> = (0..slice.version_count()).map(|p| slice.row_at(p)).collect();
                let frame = wire::encode_frame(&t.schema, &rows);
                buf.extend_from_slice(&wire::hash64(&frame).to_le_bytes());
                for c in &slice.created {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
                for d in &slice.deleted {
                    buf.extend_from_slice(&d.to_le_bytes());
                }
            }
        }
        for (txn, status) in self.txns.all_states() {
            buf.extend_from_slice(&txn.to_le_bytes());
            let (tag, seq) = match status {
                TxnStatus::Active => (0u8, 0),
                TxnStatus::Prepared => (1, 0),
                TxnStatus::Committed(s) => (2, s),
                TxnStatus::Aborted => (3, 0),
            };
            buf.push(tag);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
        buf.extend_from_slice(&self.txns.high_water().to_le_bytes());
        for q in self.quarantined_tables() {
            buf.extend_from_slice(q.to_string().as_bytes());
        }
        wire::hash64(&buf)
    }

    // -- catalog ---------------------------------------------------------------

    /// Define a table on the accelerator (replicated or accelerator-only —
    /// the accelerator does not distinguish).
    pub fn create_table(
        &self,
        name: &ObjectName,
        schema: Schema,
        distribute_by: &[String],
    ) -> Result<()> {
        self.ensure_up()?;
        let name = self.resolve(name);
        if self.tables.read().contains_key(&name) {
            return Err(Error::AlreadyExists(format!("accelerator table {name} already exists")));
        }
        let dist: Vec<usize> = distribute_by
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        // Logged before the in-memory insert, and with no lock held: a
        // torn append crashes the engine (wiping the table map) before
        // the table ever existed in memory.
        self.log_data(LogRecord::CreateTable {
            name: name.clone(),
            schema: schema.clone(),
            dist_cols: dist.clone(),
            slices: self.config.slices,
        })?;
        self.tables.write().insert(
            name.clone(),
            Arc::new(AccelTable::new(name, schema, dist, self.config.slices)),
        );
        self.plan_cache.write().clear();
        Ok(())
    }

    /// Remove a table.
    pub fn drop_table(&self, name: &ObjectName) -> Result<()> {
        self.ensure_up()?;
        let name = self.resolve(name);
        if self.tables.write().remove(&name).is_none() {
            return Err(Error::UndefinedObject(format!("accelerator table {name} not defined")));
        }
        self.log_data(LogRecord::DropTable { name: name.clone() })?;
        self.quarantined.write().remove(&name);
        self.plan_cache.write().clear();
        Ok(())
    }

    /// Does a table exist here?
    pub fn has_table(&self, name: &ObjectName) -> bool {
        self.tables.read().contains_key(&self.resolve(name))
    }

    /// Handle to a table.
    pub fn table(&self, name: &ObjectName) -> Result<Arc<AccelTable>> {
        let name = self.resolve(name);
        self.tables
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| Error::UndefinedObject(format!("accelerator table {name} not defined")))
    }

    /// Names of all tables defined on the accelerator.
    pub fn table_names(&self) -> Vec<ObjectName> {
        let mut v: Vec<ObjectName> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    // -- transactions ------------------------------------------------------------

    /// Enroll a host transaction (captures its snapshot). A no-op on a
    /// crashed engine — the coordinator checks readiness before enlisting.
    pub fn begin(&self, txn: TxnId) {
        if self.is_crashed() {
            return;
        }
        self.txns.begin(txn);
        self.snapshots.write().insert(txn, self.txns.high_water());
        self.log(LogRecord::Begin { txn });
    }

    /// 2PC phase 1. A transaction that never enrolled votes YES trivially.
    /// The PREPARE is durably logged *before* the post-prepare crash site,
    /// so a crash in the in-doubt window re-materializes the transaction
    /// as `Prepared` on restart.
    pub fn prepare(&self, txn: TxnId) -> Result<()> {
        self.ensure_up()?;
        match self.txns.status(txn) {
            TxnStatus::Active | TxnStatus::Prepared => {
                self.txns.prepare(txn);
            }
            TxnStatus::Aborted => {
                // Unknown ids land here too: treat as a trivially-prepared
                // read-only participant.
                self.txns.prepare(txn);
            }
            TxnStatus::Committed(_) => {
                return Err(Error::TransactionState(format!(
                    "transaction {txn} already committed on the accelerator"
                )))
            }
        }
        self.log(LogRecord::Prepare { txn });
        self.crash_point(sites::POST_PREPARE)?;
        Ok(())
    }

    /// 2PC phase 2: commit. Idempotent (a redelivered COMMIT returns the
    /// original sequence); a no-op returning 0 on a crashed engine.
    pub fn commit(&self, txn: TxnId) -> CommitSeq {
        if self.is_crashed() {
            return 0;
        }
        self.snapshots.write().remove(&txn);
        let seq = self.txns.commit(txn);
        self.log(LogRecord::Commit { txn, seq });
        seq
    }

    /// Abort / rollback. A no-op on a crashed engine (restart aborts
    /// in-flight transactions durably on its own).
    pub fn abort(&self, txn: TxnId) {
        if self.is_crashed() {
            return;
        }
        self.snapshots.write().remove(&txn);
        self.txns.abort(txn);
        self.log(LogRecord::Abort { txn });
    }

    /// Snapshot for a statement of `txn`: the transaction-level snapshot if
    /// enrolled, else a fresh read-only snapshot.
    pub fn snapshot_for(&self, txn: TxnId) -> Snapshot {
        match self.snapshots.read().get(&txn) {
            Some(&seq) => Snapshot { seq, me: txn },
            None => self.txns.snapshot(txn),
        }
    }

    // -- queries -------------------------------------------------------------------

    /// Execute a `SELECT` under `txn`'s snapshot.
    pub fn query(&self, txn: TxnId, query: &Query) -> Result<Rows> {
        self.query_with_mode(txn, query, ExecMode::Vectorized)
    }

    /// Execute a `SELECT` with an explicit execution mode.
    /// `ExecMode::Interpreted` forces the row-at-a-time fallback path and
    /// is the oracle the vectorized pipeline is tested (and benchmarked)
    /// against.
    pub fn query_with_mode(&self, txn: TxnId, query: &Query, mode: ExecMode) -> Result<Rows> {
        self.ensure_up()?;
        let (plan, _) = self.plan_cached(query)?;
        for t in plan.tables() {
            self.ensure_not_quarantined(&t)?;
        }
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let ctx = ExecCtx { engine: self, snap: self.snapshot_for(txn), mode, profile: None };
        execute_plan(&plan, &ctx)
    }

    /// Plan `query` through the compiled-plan cache. The cache is keyed by
    /// the statement's rendered text and each entry remembers the schema
    /// and dictionary fingerprints of every table it touches; a lookup
    /// revalidates those lazily, so DDL, TRUNCATE, groom, or dictionary
    /// growth all force a replan (whose fresh kernels see the new
    /// dictionary). Returns the shared plan and whether it was a hit.
    pub fn plan_cached(&self, query: &Query) -> Result<(Arc<Plan>, bool)> {
        let key = wire::hash64(query.to_string().as_bytes());
        if let Some(entry) = self.plan_cache.read().get(&key) {
            let valid = entry.deps.iter().all(|(name, schema_fp, dict_fp)| {
                self.table(name).is_ok_and(|t| {
                    wire::schema_fingerprint(&t.schema) == *schema_fp
                        && t.dict_fingerprint() == *dict_fp
                })
            });
            if valid {
                self.stats.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((entry.plan.clone(), true));
            }
        }
        self.stats.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(plan_query(query, self)?);
        let deps = plan
            .tables()
            .into_iter()
            .filter_map(|name| {
                self.table(&name).ok().map(|t| {
                    let fp = (wire::schema_fingerprint(&t.schema), t.dict_fingerprint());
                    (name, fp.0, fp.1)
                })
            })
            .collect();
        self.plan_cache.write().insert(key, CachedPlan { plan: Arc::clone(&plan), deps });
        Ok((plan, false))
    }

    /// Which pipeline would execute `query` (`EXPLAIN`'s PIPELINE line).
    /// Plans but does not run the query, and does not count it in
    /// [`AccelStats`]'s query counter.
    pub fn pipeline_of(&self, query: &Query) -> Result<String> {
        self.ensure_up()?;
        let plan = plan_query(query, self)?;
        Ok(describe_pipeline(&plan, self))
    }

    /// Execute a `SELECT` and also return the executed plan plus a
    /// per-operator row-count profile (for `EXPLAIN ANALYZE` / tracing).
    /// The plan comes back shared: the profile is keyed by node address,
    /// and the cached tree is address-stable behind its `Arc`.
    pub fn query_profiled(
        &self,
        txn: TxnId,
        query: &Query,
    ) -> Result<(Rows, Arc<Plan>, PlanProfile)> {
        self.ensure_up()?;
        let (plan, hit) = self.plan_cached(query)?;
        for t in plan.tables() {
            self.ensure_not_quarantined(&t)?;
        }
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let profile = PlanProfile::default();
        profile.set_cache_hit(hit);
        let ctx = ExecCtx {
            engine: self,
            snap: self.snapshot_for(txn),
            mode: ExecMode::Vectorized,
            profile: Some(&profile),
        };
        let rows = execute_plan(&plan, &ctx)?;
        Ok((rows, plan, profile))
    }

    // -- DML (the AOT path) -----------------------------------------------------------

    /// Insert pre-validated rows into a table as `txn`.
    pub fn insert_rows(&self, txn: TxnId, table: &ObjectName, rows: Vec<Row>) -> Result<usize> {
        self.ensure_up()?;
        self.ensure_not_quarantined(table)?;
        let t = self.table(table)?;
        let mut checked = Vec::with_capacity(rows.len());
        for r in rows {
            checked.push(t.schema.check_row(&r)?);
        }
        let n = t.insert_bulk(&checked, txn)?;
        if !checked.is_empty() {
            // A torn append crashes the engine, wiping the in-memory
            // insert along with everything else — the statement was
            // never acknowledged, so nothing is lost.
            self.log_data(LogRecord::Insert {
                txn,
                table: t.name.clone(),
                frame: wire::encode_frame(&t.schema, &checked),
            })?;
        }
        self.stats.rows_inserted.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// `INSERT INTO target SELECT …` entirely on the accelerator — the
    /// paper's core data-transformation primitive: no intermediate result
    /// ever leaves the accelerator.
    pub fn insert_select(&self, txn: TxnId, table: &ObjectName, query: &Query) -> Result<usize> {
        let result = self.query(txn, query)?;
        self.insert_rows(txn, table, result.rows)
    }

    /// `DELETE FROM table WHERE …` under `txn`.
    pub fn delete_where(
        &self,
        txn: TxnId,
        table: &ObjectName,
        filter: Option<&Expr>,
    ) -> Result<usize> {
        self.ensure_up()?;
        self.ensure_not_quarantined(table)?;
        let t = self.table(table)?;
        let victims = self.matching_positions(&t, txn, filter)?;
        self.mark_all(&t, &victims, txn)?;
        self.log_marks(txn, &t, &victims)?;
        self.stats.rows_deleted.fetch_add(victims.len() as u64, Ordering::Relaxed);
        Ok(victims.len())
    }

    /// `UPDATE table SET … WHERE …` under `txn`: delete-mark the old
    /// versions and append new ones.
    pub fn update_where(
        &self,
        txn: TxnId,
        table: &ObjectName,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<usize> {
        self.ensure_up()?;
        self.ensure_not_quarantined(table)?;
        let t = self.table(table)?;
        let resolver = FlatResolver::from_schema(Some(&t.name.name), &t.schema);
        let bound: Vec<(usize, idaa_sql::eval::BoundExpr)> = assignments
            .iter()
            .map(|(col, e)| Ok((t.schema.index_of(col)?, bind(e, &resolver)?)))
            .collect::<Result<_>>()?;
        let victims = self.matching_positions(&t, txn, filter)?;
        // Build all replacement rows first (any evaluation error aborts the
        // statement before any mark is placed).
        let mut replacements = Vec::with_capacity(victims.len());
        for (_, old) in &victims {
            let mut new = old.clone();
            for (ordinal, expr) in &bound {
                new[*ordinal] = eval(expr, old)?;
            }
            replacements.push(t.schema.check_row(&new)?);
        }
        self.mark_all(&t, &victims, txn)?;
        t.insert_bulk(&replacements, txn)?;
        self.log_marks(txn, &t, &victims)?;
        if !replacements.is_empty() {
            self.log_data(LogRecord::Insert {
                txn,
                table: t.name.clone(),
                frame: wire::encode_frame(&t.schema, &replacements),
            })?;
        }
        self.stats.rows_inserted.fetch_add(replacements.len() as u64, Ordering::Relaxed);
        self.stats.rows_deleted.fetch_add(victims.len() as u64, Ordering::Relaxed);
        Ok(victims.len())
    }

    /// Durably log one statement's successfully-placed delete-marks.
    fn log_marks(&self, txn: TxnId, t: &AccelTable, victims: &[(RowPos, Row)]) -> Result<()> {
        if victims.is_empty() {
            return Ok(());
        }
        self.log_data(LogRecord::Marks {
            txn,
            table: t.name.clone(),
            positions: victims.iter().map(|(p, _)| (p.slice, p.pos)).collect(),
        })
    }

    /// Visible positions (and their rows) matching `filter` for `txn`.
    fn matching_positions(
        &self,
        t: &AccelTable,
        txn: TxnId,
        filter: Option<&Expr>,
    ) -> Result<Vec<(RowPos, Row)>> {
        let snap = self.snapshot_for(txn);
        let bound = match filter {
            Some(f) => {
                let resolver = FlatResolver::from_schema(Some(&t.name.name), &t.schema);
                Some(bind(f, &resolver)?)
            }
            None => None,
        };
        let mut out = Vec::new();
        for (si, slice_lock) in t.slices().iter().enumerate() {
            let slice = slice_lock.read();
            for pos in 0..slice.version_count() {
                if !self
                    .txns
                    .version_visible(slice.created[pos], slice.deleted[pos], &snap)
                {
                    continue;
                }
                let row = slice.row_at(pos);
                if let Some(b) = &bound {
                    if !idaa_sql::eval::eval_predicate(b, &row)? {
                        continue;
                    }
                }
                out.push((RowPos { slice: si, pos }, row));
            }
        }
        Ok(out)
    }

    /// Mark all victims deleted; on a write-write conflict, roll the
    /// statement's marks back and fail atomically.
    fn mark_all(&self, t: &AccelTable, victims: &[(RowPos, Row)], txn: TxnId) -> Result<()> {
        let is_dead = |other: TxnId| matches!(self.txns.status(other), TxnStatus::Aborted);
        for (i, (pos, _)) in victims.iter().enumerate() {
            if let Err(e) = t.mark_deleted(*pos, txn, is_dead) {
                for (p, _) in &victims[..i] {
                    t.unmark_deleted(*p, txn);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    // -- bulk / maintenance -------------------------------------------------------------

    /// Bulk load committed data (replication apply and loader path): the
    /// rows become visible via a dedicated single-use transaction that
    /// commits immediately.
    pub fn load_committed(&self, table: &ObjectName, rows: Vec<Row>) -> Result<usize> {
        self.ensure_up()?;
        self.ensure_not_quarantined(table)?;
        // Internal load transactions use ids above 2^62 to stay clear of
        // host transaction ids.
        static NEXT_LOAD_TXN: AtomicU64 = AtomicU64::new(1 << 62);
        let txn = NEXT_LOAD_TXN.fetch_add(1, Ordering::Relaxed);
        self.txns.begin(txn);
        self.log(LogRecord::Begin { txn });
        let n = self.insert_rows(txn, table, rows)?;
        // A crash here leaves the load transaction unprepared in the log;
        // restart aborts it, so a half-loaded batch is never visible.
        self.crash_point(sites::MID_BULK_LOAD)?;
        let seq = self.txns.commit(txn);
        self.log(LogRecord::Commit { txn, seq });
        Ok(n)
    }

    /// Remove all rows of `table` (used before a full reload).
    pub fn truncate(&self, table: &ObjectName) -> Result<()> {
        self.ensure_up()?;
        let t = self.table(table)?;
        t.groom(|_| true, |_| true);
        self.log_data(LogRecord::Truncate { table: t.name.clone() })?;
        // The truncate-then-reload path is how an operator recovers a
        // quarantined table — the durable Truncate record lifts the
        // quarantine on replay just like it does here.
        self.quarantined.write().remove(&t.name);
        self.plan_cache.write().clear();
        Ok(())
    }

    /// Scan all rows visible to a fresh snapshot (diagnostics, tests,
    /// baseline "extract" paths).
    pub fn scan_visible(&self, table: &ObjectName) -> Result<Vec<Row>> {
        self.ensure_up()?;
        self.ensure_not_quarantined(table)?;
        let t = self.table(table)?;
        let ctx = ExecCtx {
            engine: self,
            snap: self.txns.snapshot(0),
            mode: ExecMode::Vectorized,
            profile: None,
        };
        scan_filtered(&t, None, &ctx)
    }

    /// Groom one table: drop versions from aborted creators and versions
    /// whose deleter committed. Returns versions reclaimed.
    pub fn groom(&self, table: &ObjectName) -> Result<usize> {
        self.ensure_up()?;
        let t = self.table(table)?;
        let n = t.groom(
            |c| matches!(self.txns.status(c), TxnStatus::Aborted),
            |d| matches!(self.txns.status(d), TxnStatus::Committed(_)),
        );
        if n > 0 {
            self.log_data(LogRecord::Groom { table: t.name.clone() })?;
            // Grooming rebuilds slices (and their dictionaries): drop any
            // plan whose cached kernels were specialized against them.
            self.plan_cache.write().clear();
        }
        self.stats.versions_groomed.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Groom every table.
    pub fn groom_all(&self) -> usize {
        let names = self.table_names();
        names.iter().map(|n| self.groom(n).unwrap_or(0)).sum()
    }
}

impl SchemaProvider for AccelEngine {
    fn table_schema(&self, name: &ObjectName) -> Result<Schema> {
        if name.schema.is_none() && name.name == "SYSDUMMY1" {
            return Ok(Schema::default());
        }
        Ok(self.table(name)?.schema.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType, Value};
    use idaa_sql::{parse_statement, Statement};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("ID", DataType::Integer),
            ColumnDef::new("GRP", DataType::Varchar(8)),
            ColumnDef::new("VAL", DataType::Double),
        ])
        .unwrap()
    }

    fn engine() -> AccelEngine {
        let e = AccelEngine::default();
        e.create_table(&ObjectName::bare("T"), schema(), &["ID".to_string()]).unwrap();
        e
    }

    fn row(id: i32, grp: &str, val: f64) -> Row {
        vec![Value::Int(id), Value::Varchar(grp.into()), Value::Double(val)]
    }

    fn q(e: &AccelEngine, txn: TxnId, sql: &str) -> Result<Rows> {
        let Statement::Query(query) = parse_statement(sql).unwrap() else { panic!() };
        e.query(txn, &query)
    }

    #[test]
    fn load_and_query() {
        let e = engine();
        let rows: Vec<Row> = (0..1000)
            .map(|i| row(i, if i % 2 == 0 { "A" } else { "B" }, i as f64))
            .collect();
        e.load_committed(&ObjectName::bare("T"), rows).unwrap();
        let r = q(&e, 0, "SELECT grp, COUNT(*), AVG(val) FROM t GROUP BY grp ORDER BY grp").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][1], Value::BigInt(500));
    }

    #[test]
    fn plan_cache_hits_repeated_statements_and_returns_identical_rows() {
        let e = engine();
        let rows: Vec<Row> = (0..100).map(|i| row(i, if i % 3 == 0 { "A" } else { "B" }, i as f64)).collect();
        e.load_committed(&ObjectName::bare("T"), rows).unwrap();
        let sql = "SELECT grp, COUNT(*) FROM t WHERE grp = 'A' GROUP BY grp";
        let Statement::Query(query) = parse_statement(sql).unwrap() else { panic!() };
        let (p1, hit1) = e.plan_cached(&query).unwrap();
        let (p2, hit2) = e.plan_cached(&query).unwrap();
        assert!(!hit1, "first sight must miss");
        assert!(hit2, "second sight must hit");
        assert!(Arc::ptr_eq(&p1, &p2), "hit returns the cached tree itself");
        // The executed answers are identical across the miss and hit runs.
        let miss_rows = q(&e, 0, sql).unwrap();
        let hit_rows = q(&e, 0, sql).unwrap();
        assert_eq!(miss_rows.rows, hit_rows.rows);
        assert_eq!(e.stats.plan_cache_hits.load(Ordering::Relaxed), 3);
        assert_eq!(e.stats.plan_cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn plan_cache_invalidated_by_dictionary_growth_ddl_and_restart() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        let Statement::Query(query) =
            parse_statement("SELECT COUNT(*) FROM t WHERE grp = 'A'").unwrap()
        else {
            panic!()
        };
        assert!(!e.plan_cached(&query).unwrap().1);
        assert!(e.plan_cached(&query).unwrap().1);
        // Dictionary growth (a new distinct string) forces a replan.
        e.load_committed(&ObjectName::bare("T"), vec![row(2, "NEW", 2.0)]).unwrap();
        assert!(!e.plan_cached(&query).unwrap().1, "dictionary growth must invalidate");
        assert!(e.plan_cached(&query).unwrap().1);
        // DDL on any table clears the whole cache.
        e.create_table(&ObjectName::bare("U"), schema(), &["ID".to_string()]).unwrap();
        assert!(!e.plan_cached(&query).unwrap().1, "DDL must invalidate");
        assert!(e.plan_cached(&query).unwrap().1);
        // TRUNCATE empties dictionaries; the plan must be rebuilt.
        e.truncate(&ObjectName::bare("T")).unwrap();
        assert!(!e.plan_cached(&query).unwrap().1, "TRUNCATE must invalidate");
        // A crash loses the (volatile) cache with the rest of memory.
        e.checkpoint(Duration::ZERO).unwrap();
        e.crash();
        e.restart().unwrap();
        assert!(!e.plan_cached(&query).unwrap().1, "restart starts with a cold cache");
        assert!(e.plan_cached(&query).unwrap().1);
    }

    #[test]
    fn own_transaction_sees_uncommitted_inserts() {
        let e = engine();
        e.begin(5);
        e.insert_rows(5, &ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        let mine = q(&e, 5, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(mine.scalar().unwrap(), &Value::BigInt(1));
        // A concurrent transaction does not.
        e.begin(6);
        let theirs = q(&e, 6, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(theirs.scalar().unwrap(), &Value::BigInt(0));
        // After commit, a *new* transaction sees it; txn 6's snapshot stays.
        e.prepare(5).unwrap();
        e.commit(5);
        let still = q(&e, 6, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(still.scalar().unwrap(), &Value::BigInt(0), "txn-level snapshot isolation");
        e.begin(7);
        let fresh = q(&e, 7, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(fresh.scalar().unwrap(), &Value::BigInt(1));
    }

    #[test]
    fn abort_discards_changes() {
        let e = engine();
        e.begin(1);
        e.insert_rows(1, &ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        e.abort(1);
        e.begin(2);
        assert_eq!(q(&e, 2, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(0));
        // Groom reclaims the aborted version.
        assert_eq!(e.groom_all(), 1);
    }

    #[test]
    fn delete_and_update_with_own_visibility() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            vec![row(1, "A", 1.0), row(2, "A", 2.0), row(3, "B", 3.0)],
        )
        .unwrap();
        e.begin(10);
        let n = e
            .delete_where(10, &ObjectName::bare("T"), Some(&Expr::col("GRP").eq(Expr::str("A"))))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(q(&e, 10, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(1));
        // Update the remaining row (visible to self).
        let n = e
            .update_where(
                10,
                &ObjectName::bare("T"),
                &[("VAL".into(), Expr::int(99))],
                None,
            )
            .unwrap();
        assert_eq!(n, 1);
        let r = q(&e, 10, "SELECT val FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Double(99.0));
        // Other transactions still see the original three rows.
        e.begin(11);
        assert_eq!(q(&e, 11, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(3));
        e.prepare(10).unwrap();
        e.commit(10);
        e.begin(12);
        let r = q(&e, 12, "SELECT id, val FROM t").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::Double(99.0));
    }

    #[test]
    fn insert_select_stays_on_accelerator() {
        let e = engine();
        e.create_table(
            &ObjectName::bare("T2"),
            Schema::new(vec![
                ColumnDef::new("GRP", DataType::Varchar(8)),
                ColumnDef::new("TOTAL", DataType::Double),
            ])
            .unwrap(),
            &[],
        )
        .unwrap();
        e.load_committed(
            &ObjectName::bare("T"),
            vec![row(1, "A", 1.0), row(2, "A", 2.0), row(3, "B", 3.0)],
        )
        .unwrap();
        e.begin(1);
        let Statement::Query(sel) =
            parse_statement("SELECT grp, SUM(val) FROM t GROUP BY grp").unwrap()
        else {
            panic!()
        };
        let n = e.insert_select(1, &ObjectName::bare("T2"), &sel).unwrap();
        assert_eq!(n, 2);
        e.prepare(1).unwrap();
        e.commit(1);
        e.begin(2);
        let r = q(&e, 2, "SELECT total FROM t2 ORDER BY grp").unwrap();
        assert_eq!(r.rows[0][0], Value::Double(3.0));
    }

    #[test]
    fn write_write_conflict_rolls_back_statement_marks() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0), row(2, "A", 2.0)])
            .unwrap();
        e.begin(1);
        e.begin(2);
        // Txn 1 deletes row 2.
        e.delete_where(1, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(2))))
            .unwrap();
        // Txn 2 tries to delete everything — conflicts on row 2, statement
        // fails atomically, leaving row 1 unmarked.
        let r = e.delete_where(2, &ObjectName::bare("T"), None);
        assert!(matches!(r, Err(Error::LockTimeout(_))));
        // Row 1 must still be deletable by txn 1 (marks were rolled back).
        let n = e
            .delete_where(1, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(1))))
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn zone_maps_prune_blocks() {
        let cfg = AccelConfig { slices: 1, zone_maps: true, parallel: false, parallelism: 0 };
        let e = AccelEngine::new("APP", cfg);
        e.create_table(&ObjectName::bare("T"), schema(), &[]).unwrap();
        // Two blocks worth of ordered ids: 0..4095 and 4096..8191.
        let rows: Vec<Row> = (0..8192).map(|i| row(i, "A", i as f64)).collect();
        e.load_committed(&ObjectName::bare("T"), rows).unwrap();
        let before = e.stats.blocks_pruned.load(Ordering::Relaxed);
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE id < 100").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(100));
        assert!(
            e.stats.blocks_pruned.load(Ordering::Relaxed) > before,
            "second block should have been pruned"
        );
    }

    #[test]
    fn string_equality_kernel_matches_residual_semantics() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            (0..300)
                .map(|i| row(i, ["A", "B", "C"][(i % 3) as usize], i as f64))
                .collect(),
        )
        .unwrap();
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp = 'B'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(100));
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp <> 'B'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(200));
        // Combined numeric + string kernels.
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp = 'A' AND id < 30").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(10));
        // Value not in the dictionary at all.
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp = 'ZZ'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(0));
        // NULL group rows never match equality or inequality kernels.
        e.load_committed(&ObjectName::bare("T"), vec![vec![
            Value::Int(999),
            Value::Null,
            Value::Double(0.0),
        ]])
        .unwrap();
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp <> 'B'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(200), "NULL is neither equal nor unequal");
    }

    #[test]
    fn truncate_empties_table() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        e.truncate(&ObjectName::bare("T")).unwrap();
        assert_eq!(q(&e, 0, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(0));
        assert_eq!(e.table(&ObjectName::bare("T")).unwrap().version_count(), 0);
    }

    #[test]
    fn duplicate_and_missing_tables() {
        let e = engine();
        assert!(matches!(
            e.create_table(&ObjectName::bare("T"), schema(), &[]),
            Err(Error::AlreadyExists(_))
        ));
        assert!(matches!(
            e.query(0, {
                let Statement::Query(q) = parse_statement("SELECT 1 FROM missing").unwrap() else {
                    panic!()
                };
                &q.clone()
            }),
            Err(Error::UndefinedObject(_))
        ));
        assert!(e.drop_table(&ObjectName::bare("NOPE")).is_err());
        e.drop_table(&ObjectName::bare("T")).unwrap();
        assert!(!e.has_table(&ObjectName::bare("T")));
    }

    fn count(e: &AccelEngine, txn: TxnId) -> i64 {
        let Value::BigInt(n) = *q(e, txn, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap()
        else {
            panic!()
        };
        n
    }

    #[test]
    fn crash_without_restart_refuses_statements_with_904() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        e.crash();
        assert!(e.is_crashed());
        let err = q(&e, 0, "SELECT COUNT(*) FROM t").unwrap_err();
        assert_eq!(err.sqlcode(), -904);
        let err = e.insert_rows(0, &ObjectName::bare("T"), vec![row(2, "B", 2.0)]).unwrap_err();
        assert_eq!(err.sqlcode(), -904);
        assert_eq!(e.prepare(1).unwrap_err().sqlcode(), -904);
    }

    #[test]
    fn restart_replays_log_from_empty_checkpoint() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            (0..100).map(|i| row(i, "A", i as f64)).collect(),
        )
        .unwrap();
        e.begin(5);
        e.delete_where(5, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(7)))).unwrap();
        e.prepare(5).unwrap();
        e.commit(5);
        let fp_before = e.state_fingerprint();
        e.crash();
        let stats = e.restart().unwrap();
        assert_eq!(stats.checkpoint_bytes, 0, "no checkpoint was ever taken");
        assert!(stats.log_records_replayed > 0);
        assert_eq!(stats.epoch, 2);
        assert_eq!(e.state_fingerprint(), fp_before, "replay rebuilt identical state");
        assert_eq!(count(&e, 0), 99);
    }

    #[test]
    fn restart_from_checkpoint_plus_tail_and_is_idempotent() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            (0..50).map(|i| row(i, "A", i as f64)).collect(),
        )
        .unwrap();
        e.checkpoint(Duration::from_millis(1)).unwrap();
        assert_eq!(e.durable().log_len(), 0, "checkpoint truncated the covered log");
        // Post-checkpoint tail: an update and a second load.
        e.begin(9);
        e.update_where(9, &ObjectName::bare("T"), &[("VAL".into(), Expr::int(-1))], Some(&Expr::col("ID").eq(Expr::int(3))))
            .unwrap();
        e.prepare(9).unwrap();
        e.commit(9);
        e.load_committed(&ObjectName::bare("T"), vec![row(1000, "Z", 0.0)]).unwrap();
        let fp_before = e.state_fingerprint();
        e.crash();
        let stats = e.restart().unwrap();
        assert!(stats.checkpoint_bytes > 0);
        assert!(stats.log_records_replayed > 0);
        assert_eq!(e.state_fingerprint(), fp_before);
        // Replaying the same durable state again (second crash–restart)
        // reproduces the state byte for byte.
        e.crash();
        e.restart().unwrap();
        assert_eq!(e.state_fingerprint(), fp_before);
        assert_eq!(count(&e, 0), 51);
    }

    #[test]
    fn restart_aborts_in_flight_and_rematerializes_prepared() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        // Txn 10: prepared (in-doubt) at crash time.
        e.begin(10);
        e.insert_rows(10, &ObjectName::bare("T"), vec![row(2, "B", 2.0)]).unwrap();
        e.prepare(10).unwrap();
        // Txn 11: active (unprepared) at crash time.
        e.begin(11);
        e.insert_rows(11, &ObjectName::bare("T"), vec![row(3, "C", 3.0)]).unwrap();
        e.crash();
        let stats = e.restart().unwrap();
        assert_eq!(stats.aborted_in_flight, 1);
        assert_eq!(stats.rematerialized_in_doubt, 1);
        assert_eq!(e.txns.status(10), TxnStatus::Prepared, "in-doubt survives the crash");
        assert_eq!(e.txns.status(11), TxnStatus::Aborted, "unprepared is rolled back");
        // The coordinator resolves the in-doubt transaction: commit it.
        let seq = e.commit(10);
        assert!(seq > 0);
        assert_eq!(count(&e, 0), 2, "committed in-doubt insert visible, aborted one not");
        // A second restart replays the resolution too.
        e.crash();
        e.restart().unwrap();
        assert_eq!(count(&e, 0), 2);
    }

    #[test]
    fn crash_point_mid_bulk_load_loses_no_committed_data() {
        use idaa_netsim::{sites, CrashPlan};
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        e.fault_registry().set_plan(CrashPlan::at(sites::MID_BULK_LOAD, 1));
        let err = e
            .load_committed(
                &ObjectName::bare("T"),
                (10..20).map(|i| row(i, "B", 0.0)).collect(),
            )
            .unwrap_err();
        assert_eq!(err.sqlcode(), -904);
        assert!(e.is_crashed());
        e.restart().unwrap();
        assert_eq!(count(&e, 0), 1, "half-loaded batch rolled back, old data intact");
        // The interrupted load can simply be retried.
        e.load_committed(&ObjectName::bare("T"), (10..20).map(|i| row(i, "B", 0.0)).collect())
            .unwrap();
        assert_eq!(count(&e, 0), 11);
    }

    #[test]
    fn crash_point_mid_checkpoint_keeps_previous_checkpoint() {
        use idaa_netsim::{sites, CrashPlan};
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        e.checkpoint(Duration::from_millis(1)).unwrap();
        e.load_committed(&ObjectName::bare("T"), vec![row(2, "B", 2.0)]).unwrap();
        let fp_before = e.state_fingerprint();
        e.fault_registry().set_plan(CrashPlan::at(sites::MID_CHECKPOINT, 1));
        assert_eq!(e.checkpoint(Duration::from_millis(2)).unwrap_err().sqlcode(), -904);
        let stats = e.restart().unwrap();
        assert!(stats.checkpoint_bytes > 0, "previous checkpoint survived");
        assert!(stats.log_records_replayed > 0, "tail past it survived too");
        assert_eq!(e.state_fingerprint(), fp_before);
        assert_eq!(count(&e, 0), 2);
    }

    #[test]
    fn maybe_checkpoint_follows_virtual_clock_interval() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        let every = Duration::from_millis(10);
        assert!(!e.maybe_checkpoint(Duration::from_millis(5), every).unwrap());
        assert!(e.maybe_checkpoint(Duration::from_millis(10), every).unwrap());
        // Nothing new in the log: no checkpoint even past the interval.
        assert!(!e.maybe_checkpoint(Duration::from_millis(25), every).unwrap());
        e.load_committed(&ObjectName::bare("T"), vec![row(2, "B", 2.0)]).unwrap();
        assert!(!e.maybe_checkpoint(Duration::from_millis(15), every).unwrap(), "too soon");
        assert!(e.maybe_checkpoint(Duration::from_millis(20), every).unwrap());
    }

    #[test]
    fn groom_before_crash_replays_identically() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            (0..20).map(|i| row(i, "A", i as f64)).collect(),
        )
        .unwrap();
        e.begin(1);
        let id_lt_5 = Expr::Binary {
            left: Box::new(Expr::col("ID")),
            op: idaa_sql::ast::BinaryOp::Lt,
            right: Box::new(Expr::int(5)),
        };
        e.delete_where(1, &ObjectName::bare("T"), Some(&id_lt_5)).unwrap();
        e.prepare(1).unwrap();
        e.commit(1);
        assert_eq!(e.groom_all(), 5);
        let fp = e.state_fingerprint();
        e.crash();
        e.restart().unwrap();
        assert_eq!(e.state_fingerprint(), fp, "groom replays against the same txn states");
        assert_eq!(count(&e, 0), 15);
    }

    #[test]
    fn groom_after_committed_deletes() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            (0..100).map(|i| row(i, "A", i as f64)).collect(),
        )
        .unwrap();
        e.begin(1);
        e.delete_where(1, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(5))))
            .unwrap();
        // Before commit nothing can be groomed (deleter not committed).
        assert_eq!(e.groom_all(), 0);
        e.prepare(1).unwrap();
        e.commit(1);
        assert_eq!(e.groom_all(), 1);
        e.begin(2);
        assert_eq!(
            q(&e, 2, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(),
            &Value::BigInt(99)
        );
    }
}
