//! The accelerator engine facade — the "IDAA server + Netezza backend"
//! stand-in that the federation layer talks to.
//!
//! Holds the accelerator-side catalog (replicated tables *and*
//! accelerator-only tables look identical here), the transaction registry
//! (enrolled in host transactions), and entry points for queries, AOT DML,
//! bulk load, and grooming.

use crate::exec::{execute_plan, scan_filtered, ExecCtx};
use crate::mvcc::{CommitSeq, Snapshot, TxnId, TxnRegistry, TxnStatus};
use crate::table::{AccelTable, RowPos};
use idaa_common::{Error, ObjectName, Result, Row, Rows, Schema};
use idaa_sql::ast::{Expr, Query};
use idaa_sql::eval::{bind, eval, FlatResolver};
use idaa_sql::plan::{plan_query, SchemaProvider};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables for the accelerator (ablation experiments flip these).
#[derive(Debug, Clone)]
pub struct AccelConfig {
    /// Data slices per table (worker parallelism).
    pub slices: usize,
    /// Use zone maps for block pruning.
    pub zone_maps: bool,
    /// Scan slices in parallel threads.
    pub parallel: bool,
    /// Worker threads for post-scan operators (joins, aggregation, sort).
    /// `0` means "auto": `available_parallelism()` capped at `slices`.
    pub parallelism: usize,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig { slices: 4, zone_maps: true, parallel: true, parallelism: 0 }
    }
}

impl AccelConfig {
    /// Effective worker count for parallel operators: 1 when `parallel` is
    /// off, else the explicit `parallelism`, else `available_parallelism()`
    /// capped at the slice count.
    pub fn workers(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.parallelism > 0 {
            return self.parallelism;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.slices.max(1))
    }
}

/// Operation counters exposed to the bench harness.
#[derive(Debug, Default)]
pub struct AccelStats {
    pub rows_scanned: AtomicU64,
    pub blocks_scanned: AtomicU64,
    pub blocks_pruned: AtomicU64,
    pub queries: AtomicU64,
    pub rows_inserted: AtomicU64,
    pub rows_deleted: AtomicU64,
    pub versions_groomed: AtomicU64,
}

/// The accelerator.
pub struct AccelEngine {
    tables: RwLock<HashMap<ObjectName, Arc<AccelTable>>>,
    pub txns: TxnRegistry,
    pub config: AccelConfig,
    pub stats: AccelStats,
    /// Per-transaction snapshot sequence captured at enrollment, giving
    /// transaction-level snapshot isolation (Netezza semantics).
    snapshots: RwLock<HashMap<TxnId, CommitSeq>>,
    default_schema: String,
}

impl Default for AccelEngine {
    fn default() -> Self {
        AccelEngine::new("APP", AccelConfig::default())
    }
}

impl AccelEngine {
    /// Engine with the given default schema (must match the host's) and
    /// configuration.
    pub fn new(default_schema: &str, config: AccelConfig) -> AccelEngine {
        AccelEngine {
            tables: RwLock::new(HashMap::new()),
            txns: TxnRegistry::default(),
            config,
            stats: AccelStats::default(),
            snapshots: RwLock::new(HashMap::new()),
            default_schema: default_schema.to_string(),
        }
    }

    fn resolve(&self, name: &ObjectName) -> ObjectName {
        name.resolve(&self.default_schema)
    }

    // -- catalog ---------------------------------------------------------------

    /// Define a table on the accelerator (replicated or accelerator-only —
    /// the accelerator does not distinguish).
    pub fn create_table(
        &self,
        name: &ObjectName,
        schema: Schema,
        distribute_by: &[String],
    ) -> Result<()> {
        let name = self.resolve(name);
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("accelerator table {name} already exists")));
        }
        let dist: Vec<usize> = distribute_by
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        tables.insert(
            name.clone(),
            Arc::new(AccelTable::new(name, schema, dist, self.config.slices)),
        );
        Ok(())
    }

    /// Remove a table.
    pub fn drop_table(&self, name: &ObjectName) -> Result<()> {
        let name = self.resolve(name);
        self.tables
            .write()
            .remove(&name)
            .map(|_| ())
            .ok_or_else(|| Error::UndefinedObject(format!("accelerator table {name} not defined")))
    }

    /// Does a table exist here?
    pub fn has_table(&self, name: &ObjectName) -> bool {
        self.tables.read().contains_key(&self.resolve(name))
    }

    /// Handle to a table.
    pub fn table(&self, name: &ObjectName) -> Result<Arc<AccelTable>> {
        let name = self.resolve(name);
        self.tables
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| Error::UndefinedObject(format!("accelerator table {name} not defined")))
    }

    /// Names of all tables defined on the accelerator.
    pub fn table_names(&self) -> Vec<ObjectName> {
        let mut v: Vec<ObjectName> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    // -- transactions ------------------------------------------------------------

    /// Enroll a host transaction (captures its snapshot).
    pub fn begin(&self, txn: TxnId) {
        self.txns.begin(txn);
        self.snapshots.write().insert(txn, self.txns.high_water());
    }

    /// 2PC phase 1. A transaction that never enrolled votes YES trivially.
    pub fn prepare(&self, txn: TxnId) -> Result<()> {
        match self.txns.status(txn) {
            TxnStatus::Active | TxnStatus::Prepared => {
                self.txns.prepare(txn);
                Ok(())
            }
            TxnStatus::Aborted => {
                // Unknown ids land here too: treat as a trivially-prepared
                // read-only participant.
                self.txns.prepare(txn);
                Ok(())
            }
            TxnStatus::Committed(_) => Err(Error::TransactionState(format!(
                "transaction {txn} already committed on the accelerator"
            ))),
        }
    }

    /// 2PC phase 2: commit.
    pub fn commit(&self, txn: TxnId) -> CommitSeq {
        self.snapshots.write().remove(&txn);
        self.txns.commit(txn)
    }

    /// Abort / rollback.
    pub fn abort(&self, txn: TxnId) {
        self.snapshots.write().remove(&txn);
        self.txns.abort(txn);
    }

    /// Snapshot for a statement of `txn`: the transaction-level snapshot if
    /// enrolled, else a fresh read-only snapshot.
    pub fn snapshot_for(&self, txn: TxnId) -> Snapshot {
        match self.snapshots.read().get(&txn) {
            Some(&seq) => Snapshot { seq, me: txn },
            None => self.txns.snapshot(txn),
        }
    }

    // -- queries -------------------------------------------------------------------

    /// Execute a `SELECT` under `txn`'s snapshot.
    pub fn query(&self, txn: TxnId, query: &Query) -> Result<Rows> {
        let plan = plan_query(query, self)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let ctx = ExecCtx { engine: self, snap: self.snapshot_for(txn) };
        execute_plan(&plan, &ctx)
    }

    // -- DML (the AOT path) -----------------------------------------------------------

    /// Insert pre-validated rows into a table as `txn`.
    pub fn insert_rows(&self, txn: TxnId, table: &ObjectName, rows: Vec<Row>) -> Result<usize> {
        let t = self.table(table)?;
        let mut checked = Vec::with_capacity(rows.len());
        for r in rows {
            checked.push(t.schema.check_row(&r)?);
        }
        let n = t.insert_bulk(&checked, txn)?;
        self.stats.rows_inserted.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// `INSERT INTO target SELECT …` entirely on the accelerator — the
    /// paper's core data-transformation primitive: no intermediate result
    /// ever leaves the accelerator.
    pub fn insert_select(&self, txn: TxnId, table: &ObjectName, query: &Query) -> Result<usize> {
        let result = self.query(txn, query)?;
        self.insert_rows(txn, table, result.rows)
    }

    /// `DELETE FROM table WHERE …` under `txn`.
    pub fn delete_where(
        &self,
        txn: TxnId,
        table: &ObjectName,
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let t = self.table(table)?;
        let victims = self.matching_positions(&t, txn, filter)?;
        self.mark_all(&t, &victims, txn)?;
        self.stats.rows_deleted.fetch_add(victims.len() as u64, Ordering::Relaxed);
        Ok(victims.len())
    }

    /// `UPDATE table SET … WHERE …` under `txn`: delete-mark the old
    /// versions and append new ones.
    pub fn update_where(
        &self,
        txn: TxnId,
        table: &ObjectName,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let t = self.table(table)?;
        let resolver = FlatResolver::from_schema(Some(&t.name.name), &t.schema);
        let bound: Vec<(usize, idaa_sql::eval::BoundExpr)> = assignments
            .iter()
            .map(|(col, e)| Ok((t.schema.index_of(col)?, bind(e, &resolver)?)))
            .collect::<Result<_>>()?;
        let victims = self.matching_positions(&t, txn, filter)?;
        // Build all replacement rows first (any evaluation error aborts the
        // statement before any mark is placed).
        let mut replacements = Vec::with_capacity(victims.len());
        for (_, old) in &victims {
            let mut new = old.clone();
            for (ordinal, expr) in &bound {
                new[*ordinal] = eval(expr, old)?;
            }
            replacements.push(t.schema.check_row(&new)?);
        }
        self.mark_all(&t, &victims, txn)?;
        t.insert_bulk(&replacements, txn)?;
        self.stats.rows_inserted.fetch_add(replacements.len() as u64, Ordering::Relaxed);
        self.stats.rows_deleted.fetch_add(victims.len() as u64, Ordering::Relaxed);
        Ok(victims.len())
    }

    /// Visible positions (and their rows) matching `filter` for `txn`.
    fn matching_positions(
        &self,
        t: &AccelTable,
        txn: TxnId,
        filter: Option<&Expr>,
    ) -> Result<Vec<(RowPos, Row)>> {
        let snap = self.snapshot_for(txn);
        let bound = match filter {
            Some(f) => {
                let resolver = FlatResolver::from_schema(Some(&t.name.name), &t.schema);
                Some(bind(f, &resolver)?)
            }
            None => None,
        };
        let mut out = Vec::new();
        for (si, slice_lock) in t.slices().iter().enumerate() {
            let slice = slice_lock.read();
            for pos in 0..slice.version_count() {
                if !self
                    .txns
                    .version_visible(slice.created[pos], slice.deleted[pos], &snap)
                {
                    continue;
                }
                let row = slice.row_at(pos);
                if let Some(b) = &bound {
                    if !idaa_sql::eval::eval_predicate(b, &row)? {
                        continue;
                    }
                }
                out.push((RowPos { slice: si, pos }, row));
            }
        }
        Ok(out)
    }

    /// Mark all victims deleted; on a write-write conflict, roll the
    /// statement's marks back and fail atomically.
    fn mark_all(&self, t: &AccelTable, victims: &[(RowPos, Row)], txn: TxnId) -> Result<()> {
        let is_dead = |other: TxnId| matches!(self.txns.status(other), TxnStatus::Aborted);
        for (i, (pos, _)) in victims.iter().enumerate() {
            if let Err(e) = t.mark_deleted(*pos, txn, is_dead) {
                for (p, _) in &victims[..i] {
                    t.unmark_deleted(*p, txn);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    // -- bulk / maintenance -------------------------------------------------------------

    /// Bulk load committed data (replication apply and loader path): the
    /// rows become visible via a dedicated single-use transaction that
    /// commits immediately.
    pub fn load_committed(&self, table: &ObjectName, rows: Vec<Row>) -> Result<usize> {
        // Internal load transactions use ids above 2^62 to stay clear of
        // host transaction ids.
        static NEXT_LOAD_TXN: AtomicU64 = AtomicU64::new(1 << 62);
        let txn = NEXT_LOAD_TXN.fetch_add(1, Ordering::Relaxed);
        self.txns.begin(txn);
        let n = self.insert_rows(txn, table, rows)?;
        self.txns.commit(txn);
        Ok(n)
    }

    /// Remove all rows of `table` (used before a full reload).
    pub fn truncate(&self, table: &ObjectName) -> Result<()> {
        let t = self.table(table)?;
        t.groom(|_| true, |_| true);
        Ok(())
    }

    /// Scan all rows visible to a fresh snapshot (diagnostics, tests,
    /// baseline "extract" paths).
    pub fn scan_visible(&self, table: &ObjectName) -> Result<Vec<Row>> {
        let t = self.table(table)?;
        let ctx = ExecCtx { engine: self, snap: self.txns.snapshot(0) };
        scan_filtered(&t, None, &ctx)
    }

    /// Groom one table: drop versions from aborted creators and versions
    /// whose deleter committed. Returns versions reclaimed.
    pub fn groom(&self, table: &ObjectName) -> Result<usize> {
        let t = self.table(table)?;
        let n = t.groom(
            |c| matches!(self.txns.status(c), TxnStatus::Aborted),
            |d| matches!(self.txns.status(d), TxnStatus::Committed(_)),
        );
        self.stats.versions_groomed.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Groom every table.
    pub fn groom_all(&self) -> usize {
        let names = self.table_names();
        names.iter().map(|n| self.groom(n).unwrap_or(0)).sum()
    }
}

impl SchemaProvider for AccelEngine {
    fn table_schema(&self, name: &ObjectName) -> Result<Schema> {
        if name.schema.is_none() && name.name == "SYSDUMMY1" {
            return Ok(Schema::default());
        }
        Ok(self.table(name)?.schema.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType, Value};
    use idaa_sql::{parse_statement, Statement};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("ID", DataType::Integer),
            ColumnDef::new("GRP", DataType::Varchar(8)),
            ColumnDef::new("VAL", DataType::Double),
        ])
        .unwrap()
    }

    fn engine() -> AccelEngine {
        let e = AccelEngine::default();
        e.create_table(&ObjectName::bare("T"), schema(), &["ID".to_string()]).unwrap();
        e
    }

    fn row(id: i32, grp: &str, val: f64) -> Row {
        vec![Value::Int(id), Value::Varchar(grp.into()), Value::Double(val)]
    }

    fn q(e: &AccelEngine, txn: TxnId, sql: &str) -> Result<Rows> {
        let Statement::Query(query) = parse_statement(sql).unwrap() else { panic!() };
        e.query(txn, &query)
    }

    #[test]
    fn load_and_query() {
        let e = engine();
        let rows: Vec<Row> = (0..1000)
            .map(|i| row(i, if i % 2 == 0 { "A" } else { "B" }, i as f64))
            .collect();
        e.load_committed(&ObjectName::bare("T"), rows).unwrap();
        let r = q(&e, 0, "SELECT grp, COUNT(*), AVG(val) FROM t GROUP BY grp ORDER BY grp").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][1], Value::BigInt(500));
    }

    #[test]
    fn own_transaction_sees_uncommitted_inserts() {
        let e = engine();
        e.begin(5);
        e.insert_rows(5, &ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        let mine = q(&e, 5, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(mine.scalar().unwrap(), &Value::BigInt(1));
        // A concurrent transaction does not.
        e.begin(6);
        let theirs = q(&e, 6, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(theirs.scalar().unwrap(), &Value::BigInt(0));
        // After commit, a *new* transaction sees it; txn 6's snapshot stays.
        e.prepare(5).unwrap();
        e.commit(5);
        let still = q(&e, 6, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(still.scalar().unwrap(), &Value::BigInt(0), "txn-level snapshot isolation");
        e.begin(7);
        let fresh = q(&e, 7, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(fresh.scalar().unwrap(), &Value::BigInt(1));
    }

    #[test]
    fn abort_discards_changes() {
        let e = engine();
        e.begin(1);
        e.insert_rows(1, &ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        e.abort(1);
        e.begin(2);
        assert_eq!(q(&e, 2, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(0));
        // Groom reclaims the aborted version.
        assert_eq!(e.groom_all(), 1);
    }

    #[test]
    fn delete_and_update_with_own_visibility() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            vec![row(1, "A", 1.0), row(2, "A", 2.0), row(3, "B", 3.0)],
        )
        .unwrap();
        e.begin(10);
        let n = e
            .delete_where(10, &ObjectName::bare("T"), Some(&Expr::col("GRP").eq(Expr::str("A"))))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(q(&e, 10, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(1));
        // Update the remaining row (visible to self).
        let n = e
            .update_where(
                10,
                &ObjectName::bare("T"),
                &[("VAL".into(), Expr::int(99))],
                None,
            )
            .unwrap();
        assert_eq!(n, 1);
        let r = q(&e, 10, "SELECT val FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Double(99.0));
        // Other transactions still see the original three rows.
        e.begin(11);
        assert_eq!(q(&e, 11, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(3));
        e.prepare(10).unwrap();
        e.commit(10);
        e.begin(12);
        let r = q(&e, 12, "SELECT id, val FROM t").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::Double(99.0));
    }

    #[test]
    fn insert_select_stays_on_accelerator() {
        let e = engine();
        e.create_table(
            &ObjectName::bare("T2"),
            Schema::new(vec![
                ColumnDef::new("GRP", DataType::Varchar(8)),
                ColumnDef::new("TOTAL", DataType::Double),
            ])
            .unwrap(),
            &[],
        )
        .unwrap();
        e.load_committed(
            &ObjectName::bare("T"),
            vec![row(1, "A", 1.0), row(2, "A", 2.0), row(3, "B", 3.0)],
        )
        .unwrap();
        e.begin(1);
        let Statement::Query(sel) =
            parse_statement("SELECT grp, SUM(val) FROM t GROUP BY grp").unwrap()
        else {
            panic!()
        };
        let n = e.insert_select(1, &ObjectName::bare("T2"), &sel).unwrap();
        assert_eq!(n, 2);
        e.prepare(1).unwrap();
        e.commit(1);
        e.begin(2);
        let r = q(&e, 2, "SELECT total FROM t2 ORDER BY grp").unwrap();
        assert_eq!(r.rows[0][0], Value::Double(3.0));
    }

    #[test]
    fn write_write_conflict_rolls_back_statement_marks() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0), row(2, "A", 2.0)])
            .unwrap();
        e.begin(1);
        e.begin(2);
        // Txn 1 deletes row 2.
        e.delete_where(1, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(2))))
            .unwrap();
        // Txn 2 tries to delete everything — conflicts on row 2, statement
        // fails atomically, leaving row 1 unmarked.
        let r = e.delete_where(2, &ObjectName::bare("T"), None);
        assert!(matches!(r, Err(Error::LockTimeout(_))));
        // Row 1 must still be deletable by txn 1 (marks were rolled back).
        let n = e
            .delete_where(1, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(1))))
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn zone_maps_prune_blocks() {
        let cfg = AccelConfig { slices: 1, zone_maps: true, parallel: false, parallelism: 0 };
        let e = AccelEngine::new("APP", cfg);
        e.create_table(&ObjectName::bare("T"), schema(), &[]).unwrap();
        // Two blocks worth of ordered ids: 0..4095 and 4096..8191.
        let rows: Vec<Row> = (0..8192).map(|i| row(i, "A", i as f64)).collect();
        e.load_committed(&ObjectName::bare("T"), rows).unwrap();
        let before = e.stats.blocks_pruned.load(Ordering::Relaxed);
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE id < 100").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(100));
        assert!(
            e.stats.blocks_pruned.load(Ordering::Relaxed) > before,
            "second block should have been pruned"
        );
    }

    #[test]
    fn string_equality_kernel_matches_residual_semantics() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            (0..300)
                .map(|i| row(i, ["A", "B", "C"][(i % 3) as usize], i as f64))
                .collect(),
        )
        .unwrap();
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp = 'B'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(100));
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp <> 'B'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(200));
        // Combined numeric + string kernels.
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp = 'A' AND id < 30").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(10));
        // Value not in the dictionary at all.
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp = 'ZZ'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(0));
        // NULL group rows never match equality or inequality kernels.
        e.load_committed(&ObjectName::bare("T"), vec![vec![
            Value::Int(999),
            Value::Null,
            Value::Double(0.0),
        ]])
        .unwrap();
        let r = q(&e, 0, "SELECT COUNT(*) FROM t WHERE grp <> 'B'").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(200), "NULL is neither equal nor unequal");
    }

    #[test]
    fn truncate_empties_table() {
        let e = engine();
        e.load_committed(&ObjectName::bare("T"), vec![row(1, "A", 1.0)]).unwrap();
        e.truncate(&ObjectName::bare("T")).unwrap();
        assert_eq!(q(&e, 0, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(), &Value::BigInt(0));
        assert_eq!(e.table(&ObjectName::bare("T")).unwrap().version_count(), 0);
    }

    #[test]
    fn duplicate_and_missing_tables() {
        let e = engine();
        assert!(matches!(
            e.create_table(&ObjectName::bare("T"), schema(), &[]),
            Err(Error::AlreadyExists(_))
        ));
        assert!(matches!(
            e.query(0, {
                let Statement::Query(q) = parse_statement("SELECT 1 FROM missing").unwrap() else {
                    panic!()
                };
                &q.clone()
            }),
            Err(Error::UndefinedObject(_))
        ));
        assert!(e.drop_table(&ObjectName::bare("NOPE")).is_err());
        e.drop_table(&ObjectName::bare("T")).unwrap();
        assert!(!e.has_table(&ObjectName::bare("T")));
    }

    #[test]
    fn groom_after_committed_deletes() {
        let e = engine();
        e.load_committed(
            &ObjectName::bare("T"),
            (0..100).map(|i| row(i, "A", i as f64)).collect(),
        )
        .unwrap();
        e.begin(1);
        e.delete_where(1, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(5))))
            .unwrap();
        // Before commit nothing can be groomed (deleter not committed).
        assert_eq!(e.groom_all(), 0);
        e.prepare(1).unwrap();
        e.commit(1);
        assert_eq!(e.groom_all(), 1);
        e.begin(2);
        assert_eq!(
            q(&e, 2, "SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(),
            &Value::BigInt(99)
        );
    }
}
