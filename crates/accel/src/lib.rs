//! # idaa-accel
//!
//! The Netezza-technology stand-in: a columnar MPP engine with
//! hash-distributed data slices, per-block zone maps, MVCC snapshot
//! isolation that enrolls in *host* transactions (the paper's AOT
//! transaction-awareness requirement), vectorized slice-parallel scans,
//! and `GROOM`-style space reclamation.
//!
//! The accelerator never makes authorization decisions and has no SQL
//! entry point of its own in the architecture — `idaa-core` ships it
//! statements over the metered link after DB2-side governance checks.

pub mod column;
pub mod durable;
pub mod engine;
pub mod exec;
pub mod mvcc;
pub mod table;

pub use durable::{Checkpoint, DurableStore, LogRecord, Lsn, RecoverySet};
pub use engine::{AccelConfig, AccelEngine, AccelStats, RestartStats};
pub use exec::ExecMode;
pub use mvcc::{CommitSeq, Snapshot, TxnRegistry, TxnStatus};
pub use table::{AccelTable, RowPos, BLOCK_ROWS};
