#![allow(clippy::needless_range_loop)] // index loops mirror the textbook math

//! Multiple linear regression via the normal equations.

use crate::linalg::solve;
use idaa_common::{Error, Result};

/// A fitted linear model `y = intercept + Σ coef_j · x_j`.
#[derive(Debug, Clone)]
pub struct LinRegModel {
    pub intercept: f64,
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r2: f64,
    pub n: usize,
}

impl LinRegModel {
    /// Predict one observation.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + self.coefficients.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }
}

/// Fit on row-major features `x` and targets `y`.
pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<LinRegModel> {
    let n = x.len();
    if n == 0 || n != y.len() {
        return Err(Error::Arithmetic("linear regression needs matching, non-empty X and y".into()));
    }
    let d = x[0].len();
    if x.iter().any(|r| r.len() != d) {
        return Err(Error::Arithmetic("ragged feature matrix".into()));
    }
    if n <= d {
        return Err(Error::Arithmetic(format!(
            "need more observations ({n}) than features ({d})"
        )));
    }
    // Build the (d+1)x(d+1) normal equations with an intercept column.
    let m = d + 1;
    let mut xtx = vec![vec![0.0; m]; m];
    let mut xty = vec![0.0; m];
    for (row, &target) in x.iter().zip(y) {
        let aug = |j: usize| if j == 0 { 1.0 } else { row[j - 1] };
        for i in 0..m {
            for j in i..m {
                xtx[i][j] += aug(i) * aug(j);
            }
            xty[i] += aug(i) * target;
        }
    }
    for i in 0..m {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
    }
    let beta = solve(xtx, xty)?;
    let model = LinRegModel {
        intercept: beta[0],
        coefficients: beta[1..].to_vec(),
        r2: 0.0,
        n,
    };
    // R².
    let mean_y: f64 = y.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean_y) * (v - mean_y)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(row, &target)| {
            let p = model.predict(row);
            (target - p) * (target - p)
        })
        .sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    Ok(LinRegModel { r2, ..model })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_line() {
        // y = 2 + 3x.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let m = fit(&x, &y).unwrap();
        assert!((m.intercept - 2.0).abs() < 1e-9);
        assert!((m.coefficients[0] - 3.0).abs() < 1e-9);
        assert!((m.r2 - 1.0).abs() < 1e-9);
        assert!((m.predict(&[100.0]) - 302.0).abs() < 1e-6);
    }

    #[test]
    fn multivariate_with_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 1.5 - 2.0 * r[0] + 0.5 * r[1] + rng.gen_range(-0.1..0.1))
            .collect();
        let m = fit(&x, &y).unwrap();
        assert!((m.intercept - 1.5).abs() < 0.05);
        assert!((m.coefficients[0] + 2.0).abs() < 0.05);
        assert!((m.coefficients[1] - 0.5).abs() < 0.05);
        assert!(m.r2 > 0.99);
    }

    #[test]
    fn collinear_features_rejected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(matches!(fit(&x, &y), Err(Error::Arithmetic(_))));
    }

    #[test]
    fn shape_validation() {
        assert!(fit(&[], &[]).is_err());
        assert!(fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(fit(&[vec![1.0]], &[1.0]).is_err(), "n must exceed d");
    }

    #[test]
    fn constant_target_r2_is_one() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 10];
        let m = fit(&x, &y).unwrap();
        assert!((m.predict(&[3.0]) - 7.0).abs() < 1e-9);
        assert!((m.r2 - 1.0).abs() < 1e-9);
    }
}
