#![allow(clippy::needless_range_loop)] // index loops mirror the textbook math

//! Small dense linear algebra used by the mining algorithms.

use idaa_common::{Error, Result};

/// Solve `A x = b` for square `A` via Gaussian elimination with partial
/// pivoting. `A` is row-major and consumed.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = a.len();
    if n == 0 || a.iter().any(|r| r.len() != n) || b.len() != n {
        return Err(Error::internal("solve: non-square system"));
    }
    for col in 0..n {
        // Pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty range");
        if pivot_val < 1e-12 {
            return Err(Error::Arithmetic(
                "singular matrix: features are linearly dependent".into(),
            ));
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate below.
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Column means of a row-major matrix.
pub fn column_means(data: &[Vec<f64>]) -> Vec<f64> {
    if data.is_empty() {
        return Vec::new();
    }
    let d = data[0].len();
    let mut m = vec![0.0; d];
    for row in data {
        for (j, v) in row.iter().enumerate() {
            m[j] += v;
        }
    }
    for v in &mut m {
        *v /= data.len() as f64;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_general() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![2.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(matches!(solve(a, vec![1.0, 2.0]), Err(Error::Arithmetic(_))));
    }

    #[test]
    fn distances_and_means() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let m = column_means(&[vec![1.0, 10.0], vec![3.0, 20.0]]);
        assert_eq!(m, vec![2.0, 15.0]);
        assert!(column_means(&[]).is_empty());
    }
}
