//! Gaussian naive Bayes classification.

use idaa_common::{Error, Result};

/// Per-class parameters.
#[derive(Debug, Clone)]
pub struct ClassParams {
    pub label: String,
    pub prior: f64,
    pub means: Vec<f64>,
    pub variances: Vec<f64>,
}

/// A fitted model.
#[derive(Debug, Clone)]
pub struct NaiveBayesModel {
    pub classes: Vec<ClassParams>,
}

/// Variance floor to avoid zero-variance degeneracy.
const VAR_FLOOR: f64 = 1e-9;

/// Train on row-major features and string labels.
pub fn train(features: &[Vec<f64>], labels: &[String]) -> Result<NaiveBayesModel> {
    let n = features.len();
    if n == 0 || n != labels.len() {
        return Err(Error::Arithmetic("naive Bayes needs matching, non-empty X and labels".into()));
    }
    let d = features[0].len();
    if d == 0 || features.iter().any(|r| r.len() != d) {
        return Err(Error::Arithmetic("ragged or empty feature matrix".into()));
    }
    let mut class_names: Vec<String> = labels.to_vec();
    class_names.sort();
    class_names.dedup();
    let mut classes = Vec::with_capacity(class_names.len());
    for name in class_names {
        let rows: Vec<&Vec<f64>> = features
            .iter()
            .zip(labels)
            .filter(|(_, l)| **l == name)
            .map(|(f, _)| f)
            .collect();
        let count = rows.len() as f64;
        let mut means = vec![0.0; d];
        for r in &rows {
            for (j, v) in r.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= count;
        }
        let mut variances = vec![0.0; d];
        for r in &rows {
            for (j, v) in r.iter().enumerate() {
                let dlt = v - means[j];
                variances[j] += dlt * dlt;
            }
        }
        for v in &mut variances {
            *v = (*v / count).max(VAR_FLOOR);
        }
        classes.push(ClassParams { label: name, prior: count / n as f64, means, variances });
    }
    Ok(NaiveBayesModel { classes })
}

impl NaiveBayesModel {
    /// Log joint probability of `x` under class `c`.
    fn log_likelihood(&self, c: &ClassParams, x: &[f64]) -> f64 {
        let mut ll = c.prior.ln();
        for ((v, m), var) in x.iter().zip(&c.means).zip(&c.variances) {
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + (v - m) * (v - m) / var);
        }
        ll
    }

    /// Most probable class with its log-probability.
    pub fn predict(&self, x: &[f64]) -> (&str, f64) {
        self.classes
            .iter()
            .map(|c| (c.label.as_str(), self.log_likelihood(c, x)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one class")
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, features: &[Vec<f64>], labels: &[String]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let hits = features
            .iter()
            .zip(labels)
            .filter(|(f, l)| self.predict(f).0 == l.as_str())
            .count();
        hits as f64 / features.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_data(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<String>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            // Class A around (0, 0); class B around (5, 5).
            if rng.gen_bool(0.5) {
                x.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
                y.push("A".to_string());
            } else {
                x.push(vec![5.0 + rng.gen_range(-1.0..1.0), 5.0 + rng.gen_range(-1.0..1.0)]);
                y.push("B".to_string());
            }
        }
        (x, y)
    }

    #[test]
    fn separable_classes_high_accuracy() {
        let (x, y) = gaussian_data(9, 400);
        let model = train(&x, &y).unwrap();
        assert_eq!(model.classes.len(), 2);
        assert!(model.accuracy(&x, &y) > 0.99);
        let (test_x, test_y) = gaussian_data(10, 100);
        assert!(model.accuracy(&test_x, &test_y) > 0.99);
    }

    #[test]
    fn priors_reflect_class_balance() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0]];
        let y: Vec<String> = ["A", "A", "A", "B"].iter().map(|s| s.to_string()).collect();
        let model = train(&x, &y).unwrap();
        let a = model.classes.iter().find(|c| c.label == "A").unwrap();
        let b = model.classes.iter().find(|c| c.label == "B").unwrap();
        assert!((a.prior - 0.75).abs() < 1e-9);
        assert!((b.prior - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_variance_is_floored() {
        let x = vec![vec![1.0], vec![1.0], vec![2.0], vec![2.0]];
        let y: Vec<String> = ["A", "A", "B", "B"].iter().map(|s| s.to_string()).collect();
        let model = train(&x, &y).unwrap();
        assert_eq!(model.predict(&[1.0]).0, "A");
        assert_eq!(model.predict(&[2.0]).0, "B");
    }

    #[test]
    fn validation() {
        assert!(train(&[], &[]).is_err());
        assert!(train(&[vec![1.0]], &["A".into(), "B".into()]).is_err());
        assert!(train(&[vec![]], &["A".into()]).is_err());
    }
}
