//! # idaa-analytics
//!
//! The paper's §3 framework: "executing arbitrary in-database analytics
//! operations on the accelerator while ensuring data governance aspects
//! like privilege management on DB2".
//!
//! * Pure, unit-tested mining algorithms: [`mod@kmeans`], [`linreg`],
//!   [`naive_bayes`], [`dectree`], plus data preparation in [`prep`].
//! * [`procedures`] wraps each algorithm as a deployable stored procedure
//!   (`CALL ANALYTICS.…`): inputs are read from accelerator-resident
//!   tables after a DB2-side SELECT-privilege check, models and scores are
//!   materialized into accelerator-only tables for the next stage.
//! * [`pipeline`] implements the SPSS-style multi-stage pipeline runner
//!   with the pre-AOT *materialize-in-DB2* baseline and the paper's
//!   *accelerator-only* mode.

pub mod dectree;
pub mod io;
pub mod kmeans;
pub mod linalg;
pub mod linreg;
pub mod naive_bayes;
pub mod pipeline;
pub mod prep;
pub mod procedures;

pub use kmeans::{kmeans, KMeansConfig, KMeansModel};
pub use linreg::{fit as linreg_fit, LinRegModel};
pub use naive_bayes::{train as nb_train, NaiveBayesModel};
pub use dectree::{train as tree_train, TreeConfig, TreeModel};
pub use pipeline::{Pipeline, PipelineMode, PipelineReport, Stage, StageReport};
pub use procedures::{all_procedures, deploy_all, ANALYTICS_SCHEMA};
