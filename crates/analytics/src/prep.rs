//! Data-preparation primitives: the transformation stages SPSS-style
//! pipelines chain before mining (normalize, impute, bin, split).

use idaa_common::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Normalization method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalizeMethod {
    /// Scale to `[0, 1]` by column min/max.
    MinMax,
    /// Center to zero mean, unit (population) standard deviation.
    ZScore,
}

impl NormalizeMethod {
    /// Parse a method keyword.
    pub fn parse(s: &str) -> Result<NormalizeMethod> {
        match s.to_ascii_uppercase().as_str() {
            "MINMAX" | "MIN_MAX" => Ok(NormalizeMethod::MinMax),
            "ZSCORE" | "Z_SCORE" | "STANDARD" => Ok(NormalizeMethod::ZScore),
            other => Err(Error::Parse(format!("unknown normalization method '{other}'"))),
        }
    }
}

/// Normalize a column in place; constant columns map to 0.
pub fn normalize_column(values: &mut [f64], method: NormalizeMethod) {
    if values.is_empty() {
        return;
    }
    match method {
        NormalizeMethod::MinMax => {
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let range = max - min;
            for v in values.iter_mut() {
                *v = if range > 0.0 { (*v - min) / range } else { 0.0 };
            }
        }
        NormalizeMethod::ZScore => {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let sd = var.sqrt();
            for v in values.iter_mut() {
                *v = if sd > 0.0 { (*v - mean) / sd } else { 0.0 };
            }
        }
    }
}

/// Replace `None` entries with the column mean (all-`None` columns fill
/// with 0). Returns the number of imputed cells.
pub fn impute_mean(column: &mut [Option<f64>]) -> usize {
    let known: Vec<f64> = column.iter().flatten().copied().collect();
    let mean = if known.is_empty() { 0.0 } else { known.iter().sum::<f64>() / known.len() as f64 };
    let mut imputed = 0;
    for v in column.iter_mut() {
        if v.is_none() {
            *v = Some(mean);
            imputed += 1;
        }
    }
    imputed
}

/// Equi-width binning: map each value to a bin index in `0..bins`.
pub fn bin_equiwidth(values: &[f64], bins: usize) -> Result<Vec<usize>> {
    if bins == 0 {
        return Err(Error::Arithmetic("bin count must be positive".into()));
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = (max - min) / bins as f64;
    Ok(values
        .iter()
        .map(|v| {
            if width <= 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(bins - 1)
            }
        })
        .collect())
}

/// Deterministic train/test split: returns (train_indices, test_indices).
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> Result<(Vec<usize>, Vec<usize>)> {
    if !(0.0..=1.0).contains(&train_fraction) {
        return Err(Error::Arithmetic("train fraction must be in [0, 1]".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let cut = (n as f64 * train_fraction).round() as usize;
    let test = idx.split_off(cut.min(n));
    Ok((idx, test))
}

/// Per-column summary statistics (the `DESCRIBE` procedure's engine).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub name: String,
    pub count: usize,
    pub nulls: usize,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
}

/// Describe named columns of optional values.
pub fn describe(columns: &[(String, Vec<Option<f64>>)]) -> Vec<ColumnStats> {
    columns
        .iter()
        .map(|(name, vals)| {
            let known: Vec<f64> = vals.iter().flatten().copied().collect();
            let count = known.len();
            let nulls = vals.len() - count;
            if count == 0 {
                return ColumnStats {
                    name: name.clone(),
                    count,
                    nulls,
                    mean: 0.0,
                    stddev: 0.0,
                    min: 0.0,
                    max: 0.0,
                };
            }
            let mean = known.iter().sum::<f64>() / count as f64;
            let var = known.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                / (count.max(2) - 1) as f64;
            ColumnStats {
                name: name.clone(),
                count,
                nulls,
                mean,
                stddev: var.sqrt(),
                min: known.iter().copied().fold(f64::INFINITY, f64::min),
                max: known.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_scales_to_unit() {
        let mut v = vec![10.0, 20.0, 30.0];
        normalize_column(&mut v, NormalizeMethod::MinMax);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn zscore_centers() {
        let mut v = vec![1.0, 2.0, 3.0];
        normalize_column(&mut v, NormalizeMethod::ZScore);
        assert!(v.iter().sum::<f64>().abs() < 1e-9);
        let var: f64 = v.iter().map(|x| x * x).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let mut v = vec![5.0, 5.0];
        normalize_column(&mut v, NormalizeMethod::MinMax);
        assert_eq!(v, vec![0.0, 0.0]);
        let mut w = vec![5.0, 5.0];
        normalize_column(&mut w, NormalizeMethod::ZScore);
        assert_eq!(w, vec![0.0, 0.0]);
    }

    #[test]
    fn method_parsing() {
        assert_eq!(NormalizeMethod::parse("minmax").unwrap(), NormalizeMethod::MinMax);
        assert_eq!(NormalizeMethod::parse("ZSCORE").unwrap(), NormalizeMethod::ZScore);
        assert!(NormalizeMethod::parse("nope").is_err());
    }

    #[test]
    fn imputation_fills_with_mean() {
        let mut col = vec![Some(1.0), None, Some(3.0), None];
        let n = impute_mean(&mut col);
        assert_eq!(n, 2);
        assert_eq!(col, vec![Some(1.0), Some(2.0), Some(3.0), Some(2.0)]);
        let mut empty: Vec<Option<f64>> = vec![None, None];
        impute_mean(&mut empty);
        assert_eq!(empty, vec![Some(0.0), Some(0.0)]);
    }

    #[test]
    fn binning() {
        let bins = bin_equiwidth(&[0.0, 2.5, 5.0, 7.5, 10.0], 4).unwrap();
        assert_eq!(bins, vec![0, 1, 2, 3, 3]);
        assert!(bin_equiwidth(&[1.0], 0).is_err());
        // Constant column: everything in bin 0.
        assert_eq!(bin_equiwidth(&[3.0, 3.0], 4).unwrap(), vec![0, 0]);
    }

    #[test]
    fn split_is_deterministic_partition() {
        let (train, test) = train_test_split(100, 0.8, 7).unwrap();
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        let (train2, _) = train_test_split(100, 0.8, 7).unwrap();
        assert_eq!(train, train2);
        let (train3, _) = train_test_split(100, 0.8, 8).unwrap();
        assert_ne!(train, train3);
        assert!(train_test_split(10, 1.5, 0).is_err());
    }

    #[test]
    fn describe_summarizes() {
        let stats = describe(&[
            ("A".into(), vec![Some(1.0), Some(2.0), Some(3.0), None]),
            ("B".into(), vec![None, None]),
        ]);
        assert_eq!(stats[0].count, 3);
        assert_eq!(stats[0].nulls, 1);
        assert!((stats[0].mean - 2.0).abs() < 1e-9);
        assert!((stats[0].stddev - 1.0).abs() < 1e-9);
        assert_eq!(stats[0].min, 1.0);
        assert_eq!(stats[0].max, 3.0);
        assert_eq!(stats[1].count, 0);
        assert_eq!(stats[1].nulls, 2);
    }
}
