//! Governed table I/O for analytics procedures.
//!
//! Every read is authorized against the *DB2* privilege catalog before any
//! accelerator data is touched, and inputs must physically exist on the
//! accelerator (AOTs or loaded replicas) — the framework never pulls table
//! data across the link for an in-database operation. Results are written
//! to accelerator-only tables, ready to feed the next pipeline stage.

use idaa_common::{wire, Error, ObjectName, Result, Row, Rows, Schema, Value};
use idaa_core::Idaa;
use idaa_host::TableKind;
use idaa_netsim::Direction;
use idaa_sql::Privilege;

/// Read an accelerator-resident table (schema + visible rows), enforcing
/// SELECT privilege on DB2. Data does **not** cross the link: the caller
/// is executing *on* the accelerator.
pub fn read_accel_table(idaa: &Idaa, user: &str, table: &ObjectName) -> Result<(Schema, Vec<Row>)> {
    let resolved = table.resolve(idaa.default_schema());
    let meta = idaa.host().table_meta(&resolved)?;
    idaa.host().privileges.read().check(user, &resolved, Privilege::Select)?;
    if !idaa.accel().has_table(&resolved) {
        return Err(Error::InvalidAcceleratorUse(format!(
            "analytics input {resolved} is not on the accelerator; add and load it \
             (ACCEL_ADD_TABLES / ACCEL_LOAD_TABLES) or use an accelerator-only table"
        )));
    }
    let rows = idaa.accel().scan_visible(&resolved)?;
    Ok((meta.schema, rows))
}

/// Split a `"COL1,COL2"` argument into normalized column names.
pub fn parse_column_list(arg: &str) -> Vec<String> {
    arg.split(',')
        .map(|c| idaa_common::ident::normalize(c.trim()))
        .filter(|c| !c.is_empty())
        .collect()
}

/// Extract named numeric columns as a row-major `f64` matrix. Rows
/// containing NULL in any requested column are skipped; the skip count is
/// returned alongside.
pub fn numeric_matrix(
    schema: &Schema,
    rows: &[Row],
    columns: &[String],
) -> Result<(Vec<Vec<f64>>, usize)> {
    let ordinals: Vec<usize> = columns
        .iter()
        .map(|c| {
            let i = schema.index_of(c)?;
            let t = schema.columns()[i].data_type;
            if !t.is_numeric() {
                return Err(Error::TypeMismatch(format!(
                    "column {c} has type {t}; analytics requires numeric columns"
                )));
            }
            Ok(i)
        })
        .collect::<Result<_>>()?;
    let mut out = Vec::with_capacity(rows.len());
    let mut skipped = 0;
    'row: for row in rows {
        let mut v = Vec::with_capacity(ordinals.len());
        for &i in &ordinals {
            match row[i].as_f64() {
                Ok(x) => v.push(x),
                Err(_) => {
                    skipped += 1;
                    continue 'row;
                }
            }
        }
        out.push(v);
    }
    Ok((out, skipped))
}

/// Extract one column rendered as strings (labels). NULLs become `"?"`.
pub fn label_column(schema: &Schema, rows: &[Row], column: &str) -> Result<Vec<String>> {
    let i = schema.index_of(column)?;
    Ok(rows
        .iter()
        .map(|r| if r[i].is_null() { "?".to_string() } else { r[i].render() })
        .collect())
}

/// Extract one column as raw values (ids carried through scoring).
pub fn value_column(schema: &Schema, rows: &[Row], column: &str) -> Result<Vec<Value>> {
    let i = schema.index_of(column)?;
    Ok(rows.iter().map(|r| r[i].clone()).collect())
}

/// Create (or replace) an accelerator-only output table owned by `user`
/// and fill it with `rows`, committed. Only control messages cross the
/// link — the data was produced on the accelerator.
pub fn write_output_aot(
    idaa: &Idaa,
    user: &str,
    table: &ObjectName,
    schema: Schema,
    rows: Vec<Row>,
    replace: bool,
) -> Result<usize> {
    let resolved = table.resolve(idaa.default_schema());
    if idaa.host().table_meta(&resolved).is_ok() {
        if !replace {
            return Err(Error::AlreadyExists(format!("output table {resolved} already exists")));
        }
        let meta = idaa.host().table_meta(&resolved)?;
        if meta.kind != TableKind::AcceleratorOnly {
            return Err(Error::InvalidAcceleratorUse(format!(
                "output table {resolved} exists and is not accelerator-only"
            )));
        }
        idaa.host().drop_table(user, &resolved)?;
        idaa.accel().drop_table(&resolved)?;
    }
    idaa.host().create_table(user, &resolved, schema.clone(), TableKind::AcceleratorOnly, vec![])?;
    idaa.accel().create_table(&resolved, schema, &[])?;
    // Control-plane traffic only.
    idaa.ship(Direction::ToAccel, wire::CREATE_OUTPUT_FRAME)?;
    let n = idaa.accel().load_committed(&resolved, rows)?;
    idaa.ship(Direction::ToHost, wire::ACK_FRAME)?;
    Ok(n)
}

/// Pull an accelerator table's numeric matrix *to the client side*,
/// paying full link cost — the extract-then-compute baseline the paper's
/// in-database framework replaces (used by experiment E7/E8 baselines).
pub fn extract_matrix_to_client(
    idaa: &Idaa,
    user: &str,
    table: &ObjectName,
    columns: &[String],
) -> Result<(Vec<Vec<f64>>, usize)> {
    let (schema, rows) = read_accel_table(idaa, user, table)?;
    // The full result set crosses the link as encoded frames; the client
    // computes on the decoded rows, as a real extract would.
    let delivered = idaa.ship_rows(Direction::ToHost, &schema, &rows)?;
    numeric_matrix(&schema, &delivered, columns)
}

/// Convenience: a one-row summary result (procedure return value).
pub fn summary_row(pairs: &[(&str, Value)]) -> Rows {
    let schema = Schema::new_unchecked(
        pairs
            .iter()
            .map(|(n, v)| {
                idaa_common::ColumnDef::new(
                    *n,
                    v.data_type().unwrap_or(idaa_common::DataType::Varchar(64)),
                )
            })
            .collect(),
    );
    Rows::new(schema, vec![pairs.iter().map(|(_, v)| v.clone()).collect()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType};

    #[test]
    fn column_list_parsing() {
        assert_eq!(parse_column_list("a, b ,C"), vec!["A", "B", "C"]);
        assert!(parse_column_list("").is_empty());
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("ID", DataType::Integer),
            ColumnDef::new("X", DataType::Double),
            ColumnDef::new("NAME", DataType::Varchar(8)),
        ])
        .unwrap()
    }

    #[test]
    fn matrix_extraction_skips_nulls() {
        let rows = vec![
            vec![Value::Int(1), Value::Double(2.0), Value::Varchar("a".into())],
            vec![Value::Int(2), Value::Null, Value::Varchar("b".into())],
        ];
        let (m, skipped) =
            numeric_matrix(&schema(), &rows, &["ID".into(), "X".into()]).unwrap();
        assert_eq!(m, vec![vec![1.0, 2.0]]);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn matrix_rejects_non_numeric() {
        let r = numeric_matrix(&schema(), &[], &["NAME".into()]);
        assert!(matches!(r, Err(Error::TypeMismatch(_))));
        assert!(numeric_matrix(&schema(), &[], &["NOPE".into()]).is_err());
    }

    #[test]
    fn label_and_value_columns() {
        let rows = vec![
            vec![Value::Int(1), Value::Double(2.0), Value::Varchar("a".into())],
            vec![Value::Int(2), Value::Double(3.0), Value::Null],
        ];
        assert_eq!(label_column(&schema(), &rows, "NAME").unwrap(), vec!["a", "?"]);
        assert_eq!(
            value_column(&schema(), &rows, "ID").unwrap(),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn summary_row_shape() {
        let r = summary_row(&[("K", Value::Int(3)), ("NOTE", Value::Varchar("ok".into()))]);
        assert_eq!(r.schema.columns()[0].name, "K");
        assert_eq!(r.rows[0][1].render(), "ok");
    }
}
