#![allow(clippy::needless_range_loop)] // index loops mirror the textbook math

//! CART-style decision-tree classification (binary splits on numeric
//! features, Gini impurity).

use idaa_common::{Error, Result};
use std::collections::HashMap;

/// Tree growth parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 6, min_samples_split: 4 }
    }
}

/// A tree node, stored flat for easy table serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Internal: `feature < threshold` → left child, else right child.
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    /// Leaf with majority label.
    Leaf { label: String },
}

/// A fitted tree.
#[derive(Debug, Clone)]
pub struct TreeModel {
    /// Node 0 is the root.
    pub nodes: Vec<Node>,
}

impl TreeModel {
    /// Predicted label for one observation.
    pub fn predict(&self, x: &[f64]) -> &str {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { label } => return label,
                Node::Split { feature, threshold, left, right } => {
                    i = if x[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, features: &[Vec<f64>], labels: &[String]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let hits = features
            .iter()
            .zip(labels)
            .filter(|(f, l)| self.predict(f) == l.as_str())
            .count();
        hits as f64 / features.len() as f64
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

/// Train a tree.
pub fn train(features: &[Vec<f64>], labels: &[String], cfg: &TreeConfig) -> Result<TreeModel> {
    let n = features.len();
    if n == 0 || n != labels.len() {
        return Err(Error::Arithmetic("decision tree needs matching, non-empty X and labels".into()));
    }
    let d = features[0].len();
    if d == 0 || features.iter().any(|r| r.len() != d) {
        return Err(Error::Arithmetic("ragged or empty feature matrix".into()));
    }
    let mut nodes = Vec::new();
    let idx: Vec<usize> = (0..n).collect();
    grow(features, labels, &idx, cfg, 0, &mut nodes);
    Ok(TreeModel { nodes })
}

fn majority(labels: &[String], idx: &[usize]) -> String {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for &i in idx {
        *counts.entry(labels[i].as_str()).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(l, _)| l.to_string())
        .unwrap_or_default()
}

fn gini(labels: &[String], idx: &[usize]) -> f64 {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for &i in idx {
        *counts.entry(labels[i].as_str()).or_default() += 1;
    }
    let n = idx.len() as f64;
    1.0 - counts.values().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

/// Grow a subtree over `idx`; returns its node index.
fn grow(
    features: &[Vec<f64>],
    labels: &[String],
    idx: &[usize],
    cfg: &TreeConfig,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let this_gini = gini(labels, idx);
    if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split || this_gini == 0.0 {
        nodes.push(Node::Leaf { label: majority(labels, idx) });
        return nodes.len() - 1;
    }
    // Best split: scan every feature, candidate thresholds at midpoints of
    // consecutive distinct sorted values.
    let d = features[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
    for f in 0..d {
        let mut vals: Vec<f64> = idx.iter().map(|&i| features[i][f]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (l, r): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| features[i][f] < threshold);
            if l.is_empty() || r.is_empty() {
                continue;
            }
            let score = (l.len() as f64 * gini(labels, &l)
                + r.len() as f64 * gini(labels, &r))
                / idx.len() as f64;
            if best.map(|(_, _, b)| score < b - 1e-12).unwrap_or(true) {
                best = Some((f, threshold, score));
            }
        }
    }
    // Gini is concave, so the best split never *increases* impurity;
    // zero-gain splits are still taken (they are what makes XOR-shaped
    // concepts learnable) — depth and min-samples bound the recursion.
    match best {
        Some((feature, threshold, _score)) => {
            let (l, r): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| features[i][feature] < threshold);
            let me = nodes.len();
            nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
            let left = grow(features, labels, &l, cfg, depth + 1, nodes);
            let right = grow(features, labels, &r, cfg, depth + 1, nodes);
            nodes[me] = Node::Split { feature, threshold, left, right };
            me
        }
        _ => {
            nodes.push(Node::Leaf { label: majority(labels, idx) });
            nodes.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<String>) {
        // XOR: not linearly separable; a depth-2 tree handles it.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..10 {
                x.push(vec![a, b]);
                y.push(if (a == 1.0) != (b == 1.0) { "ON" } else { "OFF" }.to_string());
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let m = train(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(m.accuracy(&x, &y), 1.0);
        assert_eq!(m.predict(&[1.0, 0.0]), "ON");
        assert_eq!(m.predict(&[1.0, 1.0]), "OFF");
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = xor_data();
        let m = train(&x, &y, &TreeConfig { max_depth: 0, min_samples_split: 2 }).unwrap();
        assert_eq!(m.size(), 1, "depth 0 is a single leaf");
        assert!(matches!(&m.nodes[0], Node::Leaf { .. }));
    }

    #[test]
    fn pure_node_stops_splitting() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec!["A".to_string(), "A".to_string(), "A".to_string()];
        let m = train(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(m.size(), 1);
        assert_eq!(m.predict(&[99.0]), "A");
    }

    #[test]
    fn threshold_split_on_continuous_feature() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<String> =
            (0..40).map(|i| if i < 20 { "LOW" } else { "HIGH" }.to_string()).collect();
        let m = train(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(m.accuracy(&x, &y), 1.0);
        let Node::Split { threshold, .. } = &m.nodes[0] else { panic!() };
        assert!((threshold - 19.5).abs() < 1.0);
    }

    #[test]
    fn validation() {
        assert!(train(&[], &[], &TreeConfig::default()).is_err());
        assert!(train(&[vec![1.0]], &["A".into(), "B".into()], &TreeConfig::default()).is_err());
    }
}
