//! Deployable analytics procedures — the paper's §3 framework: arbitrary
//! analytics operations shipped to the accelerator, invoked through plain
//! `CALL` statements, governed entirely by DB2 privileges, with results
//! materialized in accelerator-only tables for the next pipeline stage.
//!
//! Model tables use long/flat layouts so any dimensionality fits the same
//! schema, and scoring procedures reconstruct models from those tables.

use crate::dectree::{self, Node, TreeConfig, TreeModel};
use crate::io::{
    label_column, numeric_matrix, parse_column_list, read_accel_table, summary_row, value_column,
    write_output_aot,
};
use crate::kmeans::{kmeans, KMeansConfig, KMeansModel};
use crate::linreg;
use crate::naive_bayes::{self, ClassParams, NaiveBayesModel};
use crate::prep;
use idaa_common::{ColumnDef, DataType, Error, ObjectName, Result, Row, Rows, Schema, Value};
use idaa_core::{Idaa, Procedure, Session};
use std::sync::Arc;

/// Schema under which analytics procedures are registered.
pub const ANALYTICS_SCHEMA: &str = "ANALYTICS";

fn arg_str(args: &[Value], i: usize, what: &str) -> Result<String> {
    args.get(i)
        .ok_or_else(|| Error::TypeMismatch(format!("missing argument {i} ({what})")))?
        .as_str()
        .map(str::to_string)
        .map_err(|_| Error::TypeMismatch(format!("argument {i} ({what}) must be a string")))
}

fn arg_i64(args: &[Value], i: usize, what: &str) -> Result<i64> {
    args.get(i)
        .ok_or_else(|| Error::TypeMismatch(format!("missing argument {i} ({what})")))?
        .as_i64()
        .map_err(|_| Error::TypeMismatch(format!("argument {i} ({what}) must be an integer")))
}

fn arg_f64(args: &[Value], i: usize, what: &str) -> Result<f64> {
    args.get(i)
        .ok_or_else(|| Error::TypeMismatch(format!("missing argument {i} ({what})")))?
        .as_f64()
        .map_err(|_| Error::TypeMismatch(format!("argument {i} ({what}) must be numeric")))
}

// ---------------------------------------------------------------------------
// K-means
// ---------------------------------------------------------------------------

/// `CALL ANALYTICS.KMEANS(in_table, columns_csv, k, max_iter, out_table)`
///
/// Trains k-means on the accelerator and writes a long-format centroid
/// table `(CLUSTER_ID, CLUSTER_SIZE, DIM, CENTER)`.
pub struct KMeansProc;

impl Procedure for KMeansProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "KMEANS")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let columns = parse_column_list(&arg_str(args, 1, "columns")?);
        let k = arg_i64(args, 2, "k")? as usize;
        let max_iter = arg_i64(args, 3, "max_iter")? as usize;
        let output = ObjectName::from(arg_str(args, 4, "output table")?.as_str());

        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let (matrix, skipped) = numeric_matrix(&schema, &rows, &columns)?;
        let model = kmeans(&matrix, &KMeansConfig { k, max_iter, ..Default::default() })?;

        let out_schema = Schema::new(vec![
            ColumnDef::not_null("CLUSTER_ID", DataType::Integer),
            ColumnDef::not_null("CLUSTER_SIZE", DataType::Integer),
            ColumnDef::not_null("DIM", DataType::Integer),
            ColumnDef::not_null("CENTER", DataType::Double),
        ])?;
        let mut out_rows: Vec<Row> = Vec::new();
        for (c, centroid) in model.centroids.iter().enumerate() {
            for (d, v) in centroid.iter().enumerate() {
                out_rows.push(vec![
                    Value::Int(c as i32),
                    Value::Int(model.cluster_sizes[c] as i32),
                    Value::Int(d as i32),
                    Value::Double(*v),
                ]);
            }
        }
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[
            ("K", Value::Int(k as i32)),
            ("ITERATIONS", Value::Int(model.iterations as i32)),
            ("INERTIA", Value::Double(model.inertia)),
            ("ROWS_USED", Value::BigInt(matrix.len() as i64)),
            ("ROWS_SKIPPED", Value::BigInt(skipped as i64)),
        ]))
    }
}

/// Rebuild a [`KMeansModel`] from a centroid table written by
/// [`KMeansProc`].
pub fn load_kmeans_model(idaa: &Idaa, user: &str, table: &ObjectName) -> Result<KMeansModel> {
    let (schema, rows) = read_accel_table(idaa, user, table)?;
    let cid = schema.index_of("CLUSTER_ID")?;
    let csz = schema.index_of("CLUSTER_SIZE")?;
    let dim = schema.index_of("DIM")?;
    let cen = schema.index_of("CENTER")?;
    let k = rows
        .iter()
        .map(|r| r[cid].as_i64().unwrap_or(0) as usize + 1)
        .max()
        .ok_or_else(|| Error::Load(format!("model table {table} is empty")))?;
    let dims = rows.iter().map(|r| r[dim].as_i64().unwrap_or(0) as usize + 1).max().unwrap_or(0);
    let mut centroids = vec![vec![0.0; dims]; k];
    let mut sizes = vec![0usize; k];
    for r in &rows {
        let c = r[cid].as_i64()? as usize;
        centroids[c][r[dim].as_i64()? as usize] = r[cen].as_f64()?;
        sizes[c] = r[csz].as_i64()? as usize;
    }
    Ok(KMeansModel { centroids, cluster_sizes: sizes, inertia: 0.0, iterations: 0 })
}

/// `CALL ANALYTICS.KMEANS_SCORE(in_table, id_col, columns_csv, model_table, out_table)`
///
/// Assigns each input row to its nearest centroid; output
/// `(ID …, CLUSTER_ID)`.
pub struct KMeansScoreProc;

impl Procedure for KMeansScoreProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "KMEANS_SCORE")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let id_col = idaa_common::ident::normalize(&arg_str(args, 1, "id column")?);
        let columns = parse_column_list(&arg_str(args, 2, "columns")?);
        let model_table = ObjectName::from(arg_str(args, 3, "model table")?.as_str());
        let output = ObjectName::from(arg_str(args, 4, "output table")?.as_str());

        let model = load_kmeans_model(idaa, &session.user, &model_table)?;
        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let ids = value_column(&schema, &rows, &id_col)?;
        let id_type = schema.column(&id_col)?.data_type;
        let ordinals: Vec<usize> =
            columns.iter().map(|c| schema.index_of(c)).collect::<Result<_>>()?;

        let mut out_rows = Vec::with_capacity(rows.len());
        let mut scored = 0usize;
        for (row, id) in rows.iter().zip(ids) {
            let mut point = Vec::with_capacity(ordinals.len());
            let mut ok = true;
            for &i in &ordinals {
                match row[i].as_f64() {
                    Ok(v) => point.push(v),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            let cluster = if ok {
                scored += 1;
                Value::Int(model.assign(&point) as i32)
            } else {
                Value::Null
            };
            out_rows.push(vec![id, cluster]);
        }
        let out_schema = Schema::new(vec![
            ColumnDef::new(id_col, id_type),
            ColumnDef::new("CLUSTER_ID", DataType::Integer),
        ])?;
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[("ROWS_SCORED", Value::BigInt(scored as i64))]))
    }
}

// ---------------------------------------------------------------------------
// Linear regression
// ---------------------------------------------------------------------------

/// `CALL ANALYTICS.LINREG(in_table, target_col, features_csv, out_table)`
///
/// Output `(TERM, COEFFICIENT)` with `INTERCEPT` as the first term.
pub struct LinRegProc;

impl Procedure for LinRegProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "LINREG")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let target = idaa_common::ident::normalize(&arg_str(args, 1, "target column")?);
        let features = parse_column_list(&arg_str(args, 2, "features")?);
        let output = ObjectName::from(arg_str(args, 3, "output table")?.as_str());

        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let mut all_cols = features.clone();
        all_cols.push(target.clone());
        let (matrix, skipped) = numeric_matrix(&schema, &rows, &all_cols)?;
        let x: Vec<Vec<f64>> =
            matrix.iter().map(|r| r[..features.len()].to_vec()).collect();
        let y: Vec<f64> = matrix.iter().map(|r| r[features.len()]).collect();
        let model = linreg::fit(&x, &y)?;

        let out_schema = Schema::new(vec![
            ColumnDef::not_null("TERM", DataType::Varchar(64)),
            ColumnDef::not_null("COEFFICIENT", DataType::Double),
        ])?;
        let mut out_rows: Vec<Row> =
            vec![vec![Value::Varchar("INTERCEPT".into()), Value::Double(model.intercept)]];
        for (f, c) in features.iter().zip(&model.coefficients) {
            out_rows.push(vec![Value::Varchar(f.clone()), Value::Double(*c)]);
        }
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[
            ("R2", Value::Double(model.r2)),
            ("N", Value::BigInt(model.n as i64)),
            ("ROWS_SKIPPED", Value::BigInt(skipped as i64)),
        ]))
    }
}

/// Rebuild a [`linreg::LinRegModel`]-shaped predictor from a coefficient
/// table written by [`LinRegProc`]. Returns `(intercept, coefficients)` in
/// the order of `features`.
pub fn load_linreg_model(
    idaa: &Idaa,
    user: &str,
    table: &ObjectName,
    features: &[String],
) -> Result<(f64, Vec<f64>)> {
    let (schema, rows) = read_accel_table(idaa, user, table)?;
    let term_i = schema.index_of("TERM")?;
    let coef_i = schema.index_of("COEFFICIENT")?;
    let mut intercept = 0.0;
    let mut coefs = vec![0.0; features.len()];
    let mut covered = vec![false; features.len()];
    for r in &rows {
        let term = r[term_i].as_str()?.to_string();
        let c = r[coef_i].as_f64()?;
        if term == "INTERCEPT" {
            intercept = c;
        } else if let Some(i) = features.iter().position(|f| *f == term) {
            coefs[i] = c;
            covered[i] = true;
        } else {
            return Err(Error::Load(format!(
                "model term {term} is not among the scoring features {features:?}"
            )));
        }
    }
    if let Some(i) = covered.iter().position(|c| !c) {
        return Err(Error::Load(format!(
            "scoring feature {} has no coefficient in model table {table}",
            features[i]
        )));
    }
    Ok((intercept, coefs))
}

/// `CALL ANALYTICS.LINREG_SCORE(in_table, id_col, features_csv, model_table, out_table)`
///
/// Output `(ID, PREDICTION DOUBLE)`.
pub struct LinRegScoreProc;

impl Procedure for LinRegScoreProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "LINREG_SCORE")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let id_col = idaa_common::ident::normalize(&arg_str(args, 1, "id column")?);
        let features = parse_column_list(&arg_str(args, 2, "features")?);
        let model_table = ObjectName::from(arg_str(args, 3, "model table")?.as_str());
        let output = ObjectName::from(arg_str(args, 4, "output table")?.as_str());

        let (intercept, coefs) = load_linreg_model(idaa, &session.user, &model_table, &features)?;
        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let ids = value_column(&schema, &rows, &id_col)?;
        let id_type = schema.column(&id_col)?.data_type;
        let ordinals: Vec<usize> =
            features.iter().map(|c| schema.index_of(c)).collect::<Result<_>>()?;
        let mut out_rows = Vec::with_capacity(rows.len());
        let mut scored = 0usize;
        for (row, id) in rows.iter().zip(ids) {
            let mut acc = intercept;
            let mut ok = true;
            for (&i, c) in ordinals.iter().zip(&coefs) {
                match row[i].as_f64() {
                    Ok(v) => acc += c * v,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            let pred = if ok {
                scored += 1;
                Value::Double(acc)
            } else {
                Value::Null
            };
            out_rows.push(vec![id, pred]);
        }
        let out_schema = Schema::new(vec![
            ColumnDef::new(id_col, id_type),
            ColumnDef::new("PREDICTION", DataType::Double),
        ])?;
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[("ROWS_SCORED", Value::BigInt(scored as i64))]))
    }
}

// ---------------------------------------------------------------------------
// Naive Bayes
// ---------------------------------------------------------------------------

/// `CALL ANALYTICS.NAIVEBAYES_TRAIN(in_table, label_col, features_csv, model_table)`
pub struct NaiveBayesTrainProc;

impl Procedure for NaiveBayesTrainProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "NAIVEBAYES_TRAIN")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let label = idaa_common::ident::normalize(&arg_str(args, 1, "label column")?);
        let features = parse_column_list(&arg_str(args, 2, "features")?);
        let output = ObjectName::from(arg_str(args, 3, "model table")?.as_str());

        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let (matrix, _) = numeric_matrix(&schema, &rows, &features)?;
        // Align labels with the surviving (non-NULL) rows by re-extracting
        // with the same skip rule.
        let labels_all = label_column(&schema, &rows, &label)?;
        let ordinals: Vec<usize> =
            features.iter().map(|c| schema.index_of(c)).collect::<Result<_>>()?;
        let labels: Vec<String> = rows
            .iter()
            .zip(labels_all)
            .filter(|(r, _)| ordinals.iter().all(|&i| r[i].as_f64().is_ok()))
            .map(|(_, l)| l)
            .collect();
        let model = naive_bayes::train(&matrix, &labels)?;

        let out_schema = Schema::new(vec![
            ColumnDef::not_null("CLASS", DataType::Varchar(64)),
            ColumnDef::not_null("PRIOR", DataType::Double),
            ColumnDef::not_null("FEATURE_IDX", DataType::Integer),
            ColumnDef::not_null("MEAN", DataType::Double),
            ColumnDef::not_null("VARIANCE", DataType::Double),
        ])?;
        let mut out_rows: Vec<Row> = Vec::new();
        for c in &model.classes {
            for (i, (m, v)) in c.means.iter().zip(&c.variances).enumerate() {
                out_rows.push(vec![
                    Value::Varchar(c.label.clone()),
                    Value::Double(c.prior),
                    Value::Int(i as i32),
                    Value::Double(*m),
                    Value::Double(*v),
                ]);
            }
        }
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[
            ("CLASSES", Value::Int(model.classes.len() as i32)),
            ("TRAIN_ACCURACY", Value::Double(model.accuracy(&matrix, &labels))),
        ]))
    }
}

/// Rebuild a [`NaiveBayesModel`] from its model table.
pub fn load_nb_model(idaa: &Idaa, user: &str, table: &ObjectName) -> Result<NaiveBayesModel> {
    let (schema, rows) = read_accel_table(idaa, user, table)?;
    let class_i = schema.index_of("CLASS")?;
    let prior_i = schema.index_of("PRIOR")?;
    let feat_i = schema.index_of("FEATURE_IDX")?;
    let mean_i = schema.index_of("MEAN")?;
    let var_i = schema.index_of("VARIANCE")?;
    let mut classes: Vec<ClassParams> = Vec::new();
    for r in &rows {
        let label = r[class_i].as_str()?.to_string();
        let idx = r[feat_i].as_i64()? as usize;
        let entry = match classes.iter_mut().find(|c| c.label == label) {
            Some(e) => e,
            None => {
                classes.push(ClassParams {
                    label: label.clone(),
                    prior: r[prior_i].as_f64()?,
                    means: Vec::new(),
                    variances: Vec::new(),
                });
                classes.last_mut().expect("just pushed")
            }
        };
        if entry.means.len() <= idx {
            entry.means.resize(idx + 1, 0.0);
            entry.variances.resize(idx + 1, 1.0);
        }
        entry.means[idx] = r[mean_i].as_f64()?;
        entry.variances[idx] = r[var_i].as_f64()?;
    }
    if classes.is_empty() {
        return Err(Error::Load(format!("model table {table} is empty")));
    }
    Ok(NaiveBayesModel { classes })
}

/// `CALL ANALYTICS.NAIVEBAYES_SCORE(in_table, id_col, features_csv, model_table, out_table)`
pub struct NaiveBayesScoreProc;

impl Procedure for NaiveBayesScoreProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "NAIVEBAYES_SCORE")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let id_col = idaa_common::ident::normalize(&arg_str(args, 1, "id column")?);
        let features = parse_column_list(&arg_str(args, 2, "features")?);
        let model_table = ObjectName::from(arg_str(args, 3, "model table")?.as_str());
        let output = ObjectName::from(arg_str(args, 4, "output table")?.as_str());

        let model = load_nb_model(idaa, &session.user, &model_table)?;
        score_classifier(idaa, session, &input, &id_col, &features, &output, |point| {
            model.predict(point).0.to_string()
        })
    }
}

// ---------------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------------

/// `CALL ANALYTICS.DECTREE_TRAIN(in_table, label_col, features_csv, model_table, max_depth)`
pub struct DecTreeTrainProc;

impl Procedure for DecTreeTrainProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "DECTREE_TRAIN")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let label = idaa_common::ident::normalize(&arg_str(args, 1, "label column")?);
        let features = parse_column_list(&arg_str(args, 2, "features")?);
        let output = ObjectName::from(arg_str(args, 3, "model table")?.as_str());
        let max_depth = arg_i64(args, 4, "max depth")? as usize;

        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let (matrix, _) = numeric_matrix(&schema, &rows, &features)?;
        let ordinals: Vec<usize> =
            features.iter().map(|c| schema.index_of(c)).collect::<Result<_>>()?;
        let labels_all = label_column(&schema, &rows, &label)?;
        let labels: Vec<String> = rows
            .iter()
            .zip(labels_all)
            .filter(|(r, _)| ordinals.iter().all(|&i| r[i].as_f64().is_ok()))
            .map(|(_, l)| l)
            .collect();
        let model =
            dectree::train(&matrix, &labels, &TreeConfig { max_depth, ..Default::default() })?;

        let out_schema = Schema::new(vec![
            ColumnDef::not_null("NODE_ID", DataType::Integer),
            ColumnDef::not_null("KIND", DataType::Varchar(5)),
            ColumnDef::new("FEATURE", DataType::Integer),
            ColumnDef::new("THRESHOLD", DataType::Double),
            ColumnDef::new("LEFT_CHILD", DataType::Integer),
            ColumnDef::new("RIGHT_CHILD", DataType::Integer),
            ColumnDef::new("LABEL", DataType::Varchar(64)),
        ])?;
        let out_rows: Vec<Row> = model
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| match n {
                Node::Split { feature, threshold, left, right } => vec![
                    Value::Int(i as i32),
                    Value::Varchar("SPLIT".into()),
                    Value::Int(*feature as i32),
                    Value::Double(*threshold),
                    Value::Int(*left as i32),
                    Value::Int(*right as i32),
                    Value::Null,
                ],
                Node::Leaf { label } => vec![
                    Value::Int(i as i32),
                    Value::Varchar("LEAF".into()),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Varchar(label.clone()),
                ],
            })
            .collect();
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[
            ("NODES", Value::Int(model.size() as i32)),
            ("TRAIN_ACCURACY", Value::Double(model.accuracy(&matrix, &labels))),
        ]))
    }
}

/// Rebuild a [`TreeModel`] from its model table.
pub fn load_tree_model(idaa: &Idaa, user: &str, table: &ObjectName) -> Result<TreeModel> {
    let (schema, mut rows) = read_accel_table(idaa, user, table)?;
    let node_i = schema.index_of("NODE_ID")?;
    rows.sort_by_key(|r| r[node_i].as_i64().unwrap_or(0));
    let kind_i = schema.index_of("KIND")?;
    let feat_i = schema.index_of("FEATURE")?;
    let thr_i = schema.index_of("THRESHOLD")?;
    let left_i = schema.index_of("LEFT_CHILD")?;
    let right_i = schema.index_of("RIGHT_CHILD")?;
    let label_i = schema.index_of("LABEL")?;
    let nodes: Vec<Node> = rows
        .iter()
        .map(|r| {
            Ok(if r[kind_i].as_str()? == "SPLIT" {
                Node::Split {
                    feature: r[feat_i].as_i64()? as usize,
                    threshold: r[thr_i].as_f64()?,
                    left: r[left_i].as_i64()? as usize,
                    right: r[right_i].as_i64()? as usize,
                }
            } else {
                Node::Leaf { label: r[label_i].as_str()?.to_string() }
            })
        })
        .collect::<Result<_>>()?;
    if nodes.is_empty() {
        return Err(Error::Load(format!("model table {table} is empty")));
    }
    Ok(TreeModel { nodes })
}

/// `CALL ANALYTICS.DECTREE_SCORE(in_table, id_col, features_csv, model_table, out_table)`
pub struct DecTreeScoreProc;

impl Procedure for DecTreeScoreProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "DECTREE_SCORE")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let id_col = idaa_common::ident::normalize(&arg_str(args, 1, "id column")?);
        let features = parse_column_list(&arg_str(args, 2, "features")?);
        let model_table = ObjectName::from(arg_str(args, 3, "model table")?.as_str());
        let output = ObjectName::from(arg_str(args, 4, "output table")?.as_str());

        let model = load_tree_model(idaa, &session.user, &model_table)?;
        score_classifier(idaa, session, &input, &id_col, &features, &output, |point| {
            model.predict(point).to_string()
        })
    }
}

/// Shared scoring loop: read input, predict per row, write `(ID, CLASS)`.
fn score_classifier(
    idaa: &Idaa,
    session: &mut Session,
    input: &ObjectName,
    id_col: &str,
    features: &[String],
    output: &ObjectName,
    mut predict: impl FnMut(&[f64]) -> String,
) -> Result<Rows> {
    let (schema, rows) = read_accel_table(idaa, &session.user, input)?;
    let ids = value_column(&schema, &rows, id_col)?;
    let id_type = schema.column(id_col)?.data_type;
    let ordinals: Vec<usize> =
        features.iter().map(|c| schema.index_of(c)).collect::<Result<_>>()?;
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut scored = 0usize;
    for (row, id) in rows.iter().zip(ids) {
        let mut point = Vec::with_capacity(ordinals.len());
        let mut ok = true;
        for &i in &ordinals {
            match row[i].as_f64() {
                Ok(v) => point.push(v),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        let class = if ok {
            scored += 1;
            Value::Varchar(predict(&point))
        } else {
            Value::Null
        };
        out_rows.push(vec![id, class]);
    }
    let out_schema = Schema::new(vec![
        ColumnDef::new(id_col, id_type),
        ColumnDef::new("CLASS", DataType::Varchar(64)),
    ])?;
    write_output_aot(idaa, &session.user, output, out_schema, out_rows, true)?;
    Ok(summary_row(&[("ROWS_SCORED", Value::BigInt(scored as i64))]))
}

// ---------------------------------------------------------------------------
// Data preparation procedures
// ---------------------------------------------------------------------------

/// `CALL ANALYTICS.DESCRIBE(in_table, out_table)` — summary statistics of
/// every numeric column.
pub struct DescribeProc;

impl Procedure for DescribeProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "DESCRIBE")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let output = ObjectName::from(arg_str(args, 1, "output table")?.as_str());
        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let numeric: Vec<(String, usize)> = schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.data_type.is_numeric())
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        let columns: Vec<(String, Vec<Option<f64>>)> = numeric
            .iter()
            .map(|(name, i)| {
                (name.clone(), rows.iter().map(|r| r[*i].as_f64().ok()).collect())
            })
            .collect();
        let stats = prep::describe(&columns);
        let out_schema = Schema::new(vec![
            ColumnDef::not_null("COLUMN_NAME", DataType::Varchar(64)),
            ColumnDef::not_null("CNT", DataType::BigInt),
            ColumnDef::not_null("NULLS", DataType::BigInt),
            ColumnDef::not_null("MEAN", DataType::Double),
            ColumnDef::not_null("STDDEV", DataType::Double),
            ColumnDef::not_null("MINV", DataType::Double),
            ColumnDef::not_null("MAXV", DataType::Double),
        ])?;
        let out_rows: Vec<Row> = stats
            .iter()
            .map(|s| {
                vec![
                    Value::Varchar(s.name.clone()),
                    Value::BigInt(s.count as i64),
                    Value::BigInt(s.nulls as i64),
                    Value::Double(s.mean),
                    Value::Double(s.stddev),
                    Value::Double(s.min),
                    Value::Double(s.max),
                ]
            })
            .collect();
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[("COLUMNS_DESCRIBED", Value::Int(stats.len() as i32))]))
    }
}

/// `CALL ANALYTICS.NORMALIZE(in_table, columns_csv, method, out_table)` —
/// copy of the input with the named columns normalized (NULLs imputed to
/// the column mean first).
pub struct NormalizeProc;

impl Procedure for NormalizeProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "NORMALIZE")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let columns = parse_column_list(&arg_str(args, 1, "columns")?);
        let method = prep::NormalizeMethod::parse(&arg_str(args, 2, "method")?)?;
        let output = ObjectName::from(arg_str(args, 3, "output table")?.as_str());

        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let mut imputed_total = 0usize;
        // Output schema: normalized columns become DOUBLE and nullable.
        let out_schema = Schema::new(
            schema
                .columns()
                .iter()
                .map(|c| {
                    if columns.contains(&c.name) {
                        ColumnDef::new(c.name.clone(), DataType::Double)
                    } else {
                        c.clone()
                    }
                })
                .collect(),
        )?;
        let mut out_rows: Vec<Row> = rows.clone();
        for col in &columns {
            let i = schema.index_of(col)?;
            if !schema.columns()[i].data_type.is_numeric() {
                return Err(Error::TypeMismatch(format!("column {col} is not numeric")));
            }
            let mut vals: Vec<Option<f64>> =
                rows.iter().map(|r| r[i].as_f64().ok()).collect();
            imputed_total += prep::impute_mean(&mut vals);
            let mut dense: Vec<f64> = vals.iter().map(|v| v.expect("imputed")).collect();
            prep::normalize_column(&mut dense, method);
            for (r, v) in out_rows.iter_mut().zip(dense) {
                r[i] = Value::Double(v);
            }
        }
        let n = out_rows.len();
        write_output_aot(idaa, &session.user, &output, out_schema, out_rows, true)?;
        Ok(summary_row(&[
            ("ROWS", Value::BigInt(n as i64)),
            ("CELLS_IMPUTED", Value::BigInt(imputed_total as i64)),
        ]))
    }
}

/// `CALL ANALYTICS.SPLIT(in_table, train_out, test_out, train_fraction, seed)`
pub struct SplitProc;

impl Procedure for SplitProc {
    fn name(&self) -> ObjectName {
        ObjectName::qualified(ANALYTICS_SCHEMA, "SPLIT")
    }

    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows> {
        let input = ObjectName::from(arg_str(args, 0, "input table")?.as_str());
        let train_out = ObjectName::from(arg_str(args, 1, "train table")?.as_str());
        let test_out = ObjectName::from(arg_str(args, 2, "test table")?.as_str());
        let fraction = arg_f64(args, 3, "train fraction")?;
        let seed = arg_i64(args, 4, "seed")? as u64;

        let (schema, rows) = read_accel_table(idaa, &session.user, &input)?;
        let (train_idx, test_idx) = prep::train_test_split(rows.len(), fraction, seed)?;
        let pick = |idx: &[usize]| -> Vec<Row> { idx.iter().map(|&i| rows[i].clone()).collect() };
        let train_rows = pick(&train_idx);
        let test_rows = pick(&test_idx);
        let (tn, sn) = (train_rows.len(), test_rows.len());
        write_output_aot(idaa, &session.user, &train_out, schema.clone(), train_rows, true)?;
        write_output_aot(idaa, &session.user, &test_out, schema, test_rows, true)?;
        Ok(summary_row(&[
            ("TRAIN_ROWS", Value::BigInt(tn as i64)),
            ("TEST_ROWS", Value::BigInt(sn as i64)),
        ]))
    }
}

/// All analytics procedures, ready for deployment.
pub fn all_procedures() -> Vec<Arc<dyn Procedure>> {
    vec![
        Arc::new(KMeansProc),
        Arc::new(KMeansScoreProc),
        Arc::new(LinRegProc),
        Arc::new(LinRegScoreProc),
        Arc::new(NaiveBayesTrainProc),
        Arc::new(NaiveBayesScoreProc),
        Arc::new(DecTreeTrainProc),
        Arc::new(DecTreeScoreProc),
        Arc::new(DescribeProc),
        Arc::new(NormalizeProc),
        Arc::new(SplitProc),
    ]
}

/// Register every analytics procedure on `idaa`, owned by `owner`.
pub fn deploy_all(idaa: &Idaa, owner: &str) -> Result<()> {
    for p in all_procedures() {
        idaa.register_procedure(p, owner)?;
    }
    Ok(())
}
