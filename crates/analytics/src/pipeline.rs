//! SPSS-style multi-staged pipelines — the workload the paper's
//! introduction motivates.
//!
//! "Predictive analytics tools like SPSS resort to multiple SQL
//! statements, each implementing a step or stage in a chain of data
//! preparation, transformation, and evaluation tasks. For each stage,
//! base data needs to be transferred to IDAA before mining algorithms can
//! be run and result data has to be materialized within DB2 before it can
//! be used as input for the next stage."
//!
//! [`Pipeline::run`] executes the same stage chain in either of two modes:
//!
//! * [`PipelineMode::MaterializeInDb2`] — the pre-AOT baseline: each
//!   stage's result is pulled back to a regular DB2 table, then re-added
//!   and re-loaded onto the accelerator so the next stage can run there.
//! * [`PipelineMode::AcceleratorOnly`] — the paper's extension: each stage
//!   writes an accelerator-only table via `INSERT … SELECT`, so no stage
//!   result ever crosses the link.
//!
//! Experiment E3 sweeps the stage count and reports elapsed time, bytes
//! moved, and link messages per mode.

use idaa_common::{Error, ObjectName, Result, Rows};
use idaa_core::{Idaa, Payload, Session};
use idaa_netsim::LinkMetrics;
use idaa_sql::plan::plan_query;
use idaa_sql::{parse_statement, Statement};
use std::time::{Duration, Instant};

/// One transformation stage: `output ← SELECT …`.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Unqualified output table name.
    pub output: String,
    /// The SELECT producing this stage's rows (may reference previous
    /// stage outputs and base tables).
    pub select_sql: String,
}

/// Execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Materialize every stage in DB2 and re-load it to the accelerator
    /// (the pre-AOT behavior).
    MaterializeInDb2,
    /// Keep every stage on the accelerator via AOTs.
    AcceleratorOnly,
}

/// Per-stage measurement.
#[derive(Debug, Clone)]
pub struct StageReport {
    pub output: String,
    pub rows: usize,
    pub elapsed: Duration,
    pub link: LinkMetrics,
}

/// Whole-pipeline measurement.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    pub mode: PipelineMode,
    pub stages: Vec<StageReport>,
    pub elapsed: Duration,
    pub link: LinkMetrics,
}

impl PipelineReport {
    /// Total bytes moved across the link by the whole pipeline.
    pub fn bytes_moved(&self) -> u64 {
        self.link.total_bytes()
    }
}

/// A multi-stage transformation pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a stage.
    pub fn stage(mut self, output: &str, select_sql: &str) -> Pipeline {
        self.stages.push(Stage { output: output.to_string(), select_sql: select_sql.to_string() });
        self
    }

    /// Run all stages under `mode`, measuring wall time and link traffic.
    pub fn run(
        &self,
        idaa: &Idaa,
        session: &mut Session,
        mode: PipelineMode,
    ) -> Result<PipelineReport> {
        let t0 = Instant::now();
        let link0 = idaa.link().metrics();
        let mut stages = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let s0 = Instant::now();
            let l0 = idaa.link().metrics();
            let rows = match mode {
                PipelineMode::AcceleratorOnly => self.run_stage_aot(idaa, session, stage)?,
                PipelineMode::MaterializeInDb2 => self.run_stage_db2(idaa, session, stage)?,
            };
            stages.push(StageReport {
                output: stage.output.clone(),
                rows,
                elapsed: s0.elapsed(),
                link: idaa.link().metrics().since(&l0),
            });
        }
        Ok(PipelineReport {
            mode,
            stages,
            elapsed: t0.elapsed(),
            link: idaa.link().metrics().since(&link0),
        })
    }

    /// Derive the stage output's DDL column list from the SELECT's plan.
    fn output_ddl(&self, idaa: &Idaa, stage: &Stage) -> Result<String> {
        let Statement::Query(q) = parse_statement(&stage.select_sql)? else {
            return Err(Error::Parse(format!(
                "stage {} must be a SELECT statement",
                stage.output
            )));
        };
        let plan = plan_query(&q, idaa.host())?;
        let cols: Vec<String> = plan
            .cols()
            .iter()
            .map(|c| format!("{} {}", c.name, c.data_type))
            .collect();
        Ok(cols.join(", "))
    }

    fn run_stage_aot(&self, idaa: &Idaa, session: &mut Session, stage: &Stage) -> Result<usize> {
        let ddl = self.output_ddl(idaa, stage)?;
        idaa.execute(
            session,
            &format!("CREATE TABLE {} ({ddl}) IN ACCELERATOR", stage.output),
        )?;
        let out = idaa.execute(
            session,
            &format!("INSERT INTO {} {}", stage.output, stage.select_sql),
        )?;
        Ok(out.count())
    }

    fn run_stage_db2(&self, idaa: &Idaa, session: &mut Session, stage: &Stage) -> Result<usize> {
        let ddl = self.output_ddl(idaa, stage)?;
        // 1. Materialize the stage result in DB2 (result rows cross the
        //    link when the SELECT was offloaded).
        idaa.execute(session, &format!("CREATE TABLE {} ({ddl})", stage.output))?;
        let out = idaa.execute(
            session,
            &format!("INSERT INTO {} {}", stage.output, stage.select_sql),
        )?;
        // 2. Transfer the materialized stage back to the accelerator so
        //    the next stage can run there (ADD + LOAD round trip).
        idaa.execute(session, &format!("CALL SYSPROC.ACCEL_ADD_TABLES('{}')", stage.output))?;
        idaa.execute(session, &format!("CALL SYSPROC.ACCEL_LOAD_TABLES('{}')", stage.output))?;
        Ok(out.count())
    }

    /// Drop every stage output (cleanup between experiment repetitions).
    pub fn drop_outputs(&self, idaa: &Idaa, session: &mut Session) -> Result<()> {
        for stage in self.stages.iter().rev() {
            let _ = idaa.execute(session, &format!("DROP TABLE {}", stage.output));
        }
        Ok(())
    }
}

/// Fetch a stage output for inspection.
pub fn fetch(idaa: &Idaa, session: &mut Session, table: &str) -> Result<Rows> {
    match idaa.execute(session, &format!("SELECT * FROM {table}"))?.payload {
        Payload::Rows(r) => Ok(r),
        _ => Err(Error::internal("SELECT produced no rows payload")),
    }
}

/// The base tables a pipeline references that are *not* produced by one of
/// its own stages (useful to pre-accelerate them).
pub fn external_inputs(pipeline: &Pipeline) -> Result<Vec<ObjectName>> {
    let mut produced: Vec<String> = Vec::new();
    let mut inputs = Vec::new();
    for stage in &pipeline.stages {
        let Statement::Query(q) = parse_statement(&stage.select_sql)? else {
            return Err(Error::Parse("stage must be a SELECT".into()));
        };
        collect_tables(&q, &mut |t: &ObjectName| {
            if !produced.contains(&t.name) && !inputs.contains(t) {
                inputs.push(t.clone());
            }
        });
        produced.push(idaa_common::ident::normalize(&stage.output));
    }
    Ok(inputs)
}

fn collect_tables(q: &idaa_sql::ast::Query, f: &mut impl FnMut(&ObjectName)) {
    fn walk_ref(tr: &idaa_sql::ast::TableRef, f: &mut impl FnMut(&ObjectName)) {
        match tr {
            idaa_sql::ast::TableRef::Table { name, .. } => f(name),
            idaa_sql::ast::TableRef::Subquery { query, .. } => collect_tables(query, f),
            idaa_sql::ast::TableRef::Join { left, right, .. } => {
                walk_ref(left, f);
                walk_ref(right, f);
            }
        }
    }
    if let Some(from) = &q.from {
        walk_ref(from, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_host::SYSADM;

    fn setup() -> (Idaa, Session) {
        let idaa = Idaa::default();
        let mut s = idaa.session(SYSADM);
        idaa.execute(&mut s, "CREATE TABLE BASE (ID INT NOT NULL, GRP VARCHAR(4), V DOUBLE)")
            .unwrap();
        let vals: Vec<String> = (0..200)
            .map(|i| format!("({i}, '{}', {}.0E0)", if i % 4 == 0 { "A" } else { "B" }, i))
            .collect();
        idaa.execute(&mut s, &format!("INSERT INTO BASE VALUES {}", vals.join(", ")))
            .unwrap();
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('BASE')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('BASE')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        (idaa, s)
    }

    fn two_stage() -> Pipeline {
        Pipeline::new()
            .stage("S1", "SELECT id, grp, v * 2 AS V2 FROM base WHERE v >= 100")
            .stage("S2", "SELECT grp, SUM(v2) AS TOTAL FROM s1 GROUP BY grp")
    }

    #[test]
    fn both_modes_produce_identical_results() {
        let (idaa, mut s) = setup();
        let p = two_stage();
        let aot = p.run(&idaa, &mut s, PipelineMode::AcceleratorOnly).unwrap();
        let mut aot_rows = fetch(&idaa, &mut s, "S2").unwrap().rows;
        p.drop_outputs(&idaa, &mut s).unwrap();
        let db2 = p.run(&idaa, &mut s, PipelineMode::MaterializeInDb2).unwrap();
        let mut db2_rows = fetch(&idaa, &mut s, "S2").unwrap().rows;
        aot_rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
        db2_rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
        assert_eq!(aot_rows, db2_rows);
        assert_eq!(aot.stages.len(), 2);
        assert_eq!(db2.stages.len(), 2);
    }

    #[test]
    fn aot_mode_moves_fewer_bytes() {
        let (idaa, mut s) = setup();
        let p = two_stage();
        let aot = p.run(&idaa, &mut s, PipelineMode::AcceleratorOnly).unwrap();
        p.drop_outputs(&idaa, &mut s).unwrap();
        let db2 = p.run(&idaa, &mut s, PipelineMode::MaterializeInDb2).unwrap();
        assert!(
            db2.bytes_moved() > 3 * aot.bytes_moved(),
            "baseline {} bytes should dwarf AOT {} bytes",
            db2.bytes_moved(),
            aot.bytes_moved()
        );
    }

    #[test]
    fn stage_counts_rows() {
        let (idaa, mut s) = setup();
        let p = two_stage();
        let rep = p.run(&idaa, &mut s, PipelineMode::AcceleratorOnly).unwrap();
        assert_eq!(rep.stages[0].rows, 100);
        assert_eq!(rep.stages[1].rows, 2);
    }

    #[test]
    fn non_select_stage_rejected() {
        let (idaa, mut s) = setup();
        let p = Pipeline::new().stage("X", "DELETE FROM base");
        assert!(p.run(&idaa, &mut s, PipelineMode::AcceleratorOnly).is_err());
    }

    #[test]
    fn external_inputs_excludes_stage_outputs() {
        let p = two_stage();
        let inputs = external_inputs(&p).unwrap();
        assert_eq!(inputs, vec![ObjectName::bare("BASE")]);
    }
}
