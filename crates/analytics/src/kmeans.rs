//! K-means clustering (Lloyd's algorithm with k-means++ seeding).

use crate::linalg::dist2;
use idaa_common::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means parameters.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    pub k: usize,
    pub max_iter: usize,
    pub seed: u64,
    /// Stop when total centroid movement² falls below this.
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 3, max_iter: 50, seed: 42, tolerance: 1e-9 }
    }
}

/// A fitted model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    pub centroids: Vec<Vec<f64>>,
    pub cluster_sizes: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    pub iterations: usize,
}

impl KMeansModel {
    /// Index of the nearest centroid.
    pub fn assign(&self, point: &[f64]) -> usize {
        self.centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, dist2(point, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Fit k-means on row-major `data`.
pub fn kmeans(data: &[Vec<f64>], cfg: &KMeansConfig) -> Result<KMeansModel> {
    if cfg.k == 0 {
        return Err(Error::Arithmetic("k must be positive".into()));
    }
    if data.len() < cfg.k {
        return Err(Error::Arithmetic(format!(
            "k-means needs at least k={} points, got {}",
            cfg.k,
            data.len()
        )));
    }
    let dims = data[0].len();
    if dims == 0 || data.iter().any(|r| r.len() != dims) {
        return Err(Error::Arithmetic("k-means input must be a non-ragged matrix".into()));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut centroids = kmeanspp_init(data, cfg.k, &mut rng);
    let mut assignment = vec![0usize; data.len()];
    let mut iterations = 0;

    for it in 0..cfg.max_iter {
        iterations = it + 1;
        // Assignment step.
        for (i, p) in data.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist2(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dims]; cfg.k];
        let mut counts = vec![0usize; cfg.k];
        for (p, &a) in data.iter().zip(&assignment) {
            counts[a] += 1;
            for (j, v) in p.iter().enumerate() {
                sums[a][j] += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..cfg.k {
            if counts[c] == 0 {
                // Re-seed an empty cluster from a random point.
                let p = &data[rng.gen_range(0..data.len())];
                movement += dist2(&centroids[c], p);
                centroids[c] = p.clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += dist2(&centroids[c], &new);
            centroids[c] = new;
        }
        if movement <= cfg.tolerance {
            break;
        }
    }

    let mut cluster_sizes = vec![0usize; cfg.k];
    let mut inertia = 0.0;
    for (p, &a) in data.iter().zip(&assignment) {
        cluster_sizes[a] += 1;
        inertia += dist2(p, &centroids[a]);
    }
    Ok(KMeansModel { centroids, cluster_sizes, inertia, iterations })
}

/// k-means++ seeding: first centroid uniform, the rest proportional to
/// squared distance from the nearest chosen centroid.
fn kmeanspp_init(data: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points equal the chosen centroids: duplicate one.
            centroids.push(data[rng.gen_range(0..data.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = data.len() - 1;
        for (i, d) in d2.iter().enumerate() {
            if target < *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(data[chosen].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Three well-separated 2D blobs of 20 points each.
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for _ in 0..20 {
                data.push(vec![cx + rng.gen_range(-0.5..0.5), cy + rng.gen_range(-0.5..0.5)]);
            }
        }
        data
    }

    #[test]
    fn finds_separated_blobs() {
        let model = kmeans(&blobs(), &KMeansConfig { k: 3, ..Default::default() }).unwrap();
        let mut sizes = model.cluster_sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![20, 20, 20]);
        assert!(model.inertia < 60.0 * 0.5, "tight clusters");
        // Centroids near blob centers.
        let mut found = [false; 3];
        for c in &model.centroids {
            for (i, (cx, cy)) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)].iter().enumerate() {
                if (c[0] - cx).abs() < 1.0 && (c[1] - cy).abs() < 1.0 {
                    found[i] = true;
                }
            }
        }
        assert!(found.iter().all(|f| *f));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = kmeans(&blobs(), &KMeansConfig::default()).unwrap();
        let b = kmeans(&blobs(), &KMeansConfig::default()).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn assign_picks_nearest() {
        let model = kmeans(&blobs(), &KMeansConfig { k: 3, ..Default::default() }).unwrap();
        let c = model.assign(&[10.2, 9.8]);
        assert!(dist2(&model.centroids[c], &[10.0, 10.0]) < 1.0);
    }

    #[test]
    fn input_validation() {
        assert!(kmeans(&[], &KMeansConfig::default()).is_err());
        assert!(kmeans(&[vec![1.0]], &KMeansConfig { k: 0, ..Default::default() }).is_err());
        assert!(kmeans(
            &[vec![1.0], vec![2.0, 3.0], vec![4.0]],
            &KMeansConfig { k: 2, ..Default::default() }
        )
        .is_err());
    }

    #[test]
    fn k_equals_n_degenerates_gracefully() {
        let data = vec![vec![1.0], vec![2.0], vec![3.0]];
        let model = kmeans(&data, &KMeansConfig { k: 3, ..Default::default() }).unwrap();
        assert!(model.inertia < 1e-9);
        assert_eq!(model.cluster_sizes.iter().sum::<usize>(), 3);
    }

    #[test]
    fn identical_points() {
        let data = vec![vec![5.0, 5.0]; 10];
        let model = kmeans(&data, &KMeansConfig { k: 2, ..Default::default() }).unwrap();
        assert_eq!(model.cluster_sizes.iter().sum::<usize>(), 10);
        assert!(model.inertia < 1e-9);
    }
}
