//! Stored procedures: the IDAA system procedures (`SYSPROC.ACCEL_*`) and
//! the registry through which the analytics framework deploys arbitrary
//! in-database operations (paper §3).
//!
//! Governance contract: before dispatching any procedure, the federation
//! layer checks the caller's `EXECUTE` privilege on the procedure object in
//! the *DB2* privilege catalog. Procedure bodies that read/write tables do
//! their own table-privilege checks through the same catalog — the
//! accelerator itself never authorizes anything.

use crate::idaa::Idaa;
use crate::session::Session;
use idaa_common::{ColumnDef, DataType, Error, ObjectName, Result, Rows, Schema, Value};
use idaa_host::AccelStatus;

/// A stored procedure callable via `CALL name(args…)`.
pub trait Procedure: Send + Sync {
    /// Fully-qualified procedure name.
    fn name(&self) -> ObjectName;
    /// Run the procedure. Dispatch has already verified EXECUTE privilege.
    fn execute(&self, idaa: &Idaa, session: &mut Session, args: &[Value]) -> Result<Rows>;
}

/// One-row, one-column result helper ("message style" procedure output).
pub fn message_result(msg: impl Into<String>) -> Rows {
    Rows::new(
        Schema::new_unchecked(vec![ColumnDef::new("MESSAGE", DataType::Varchar(255))]),
        vec![vec![Value::Varchar(msg.into())]],
    )
}

/// Extract the *table name* argument: system procedures accept either
/// `(table)` or `(accelerator, table)` — we model a single accelerator, so
/// a leading accelerator name is accepted and ignored.
fn table_arg(args: &[Value]) -> Result<ObjectName> {
    let name = match args {
        [t] => t.as_str()?,
        [_accel, t] => t.as_str()?,
        _ => {
            return Err(Error::TypeMismatch(
                "expected (table) or (accelerator, table) arguments".into(),
            ))
        }
    };
    Ok(ObjectName::from(name))
}

/// `SYSPROC.ACCEL_ADD_TABLES` — define a DB2 table on the accelerator
/// (schema only; no data yet).
pub struct AccelAddTables;

impl Procedure for AccelAddTables {
    fn name(&self) -> ObjectName {
        ObjectName::qualified("SYSPROC", "ACCEL_ADD_TABLES")
    }

    fn execute(&self, idaa: &Idaa, _session: &mut Session, args: &[Value]) -> Result<Rows> {
        let table = table_arg(args)?;
        let meta = idaa.host().table_meta(&table)?;
        if meta.kind != idaa_host::TableKind::Regular {
            return Err(Error::InvalidAcceleratorUse(format!(
                "{table} is accelerator-only; it is already on the accelerator"
            )));
        }
        idaa.accel_table_add(&meta)?;
        idaa.host().set_accel_status(&meta.name, AccelStatus::Added)?;
        Ok(message_result(format!("table {} added to accelerator", meta.name)))
    }
}

/// `SYSPROC.ACCEL_LOAD_TABLES` — snapshot-load a previously added table
/// and switch on incremental replication for it.
pub struct AccelLoadTables;

impl Procedure for AccelLoadTables {
    fn name(&self) -> ObjectName {
        ObjectName::qualified("SYSPROC", "ACCEL_LOAD_TABLES")
    }

    fn execute(&self, idaa: &Idaa, _session: &mut Session, args: &[Value]) -> Result<Rows> {
        let table = table_arg(args)?;
        let n = idaa.load_accelerated_table(&table)?;
        Ok(message_result(format!("loaded {n} rows into accelerator table {table}")))
    }
}

/// `SYSPROC.ACCEL_REMOVE_TABLES` — undefine a table from the accelerator.
pub struct AccelRemoveTables;

impl Procedure for AccelRemoveTables {
    fn name(&self) -> ObjectName {
        ObjectName::qualified("SYSPROC", "ACCEL_REMOVE_TABLES")
    }

    fn execute(&self, idaa: &Idaa, _session: &mut Session, args: &[Value]) -> Result<Rows> {
        let table = table_arg(args)?;
        let meta = idaa.host().table_meta(&table)?;
        idaa.accel_table_remove(&meta)?;
        idaa.host().set_accel_status(&meta.name, AccelStatus::NotAccelerated)?;
        Ok(message_result(format!("table {} removed from accelerator", meta.name)))
    }
}

/// `SYSPROC.ACCEL_GROOM_TABLES` — reclaim dead row versions on the
/// accelerator (Netezza `GROOM`).
pub struct AccelGroomTables;

impl Procedure for AccelGroomTables {
    fn name(&self) -> ObjectName {
        ObjectName::qualified("SYSPROC", "ACCEL_GROOM_TABLES")
    }

    fn execute(&self, idaa: &Idaa, _session: &mut Session, args: &[Value]) -> Result<Rows> {
        let n = if args.is_empty() {
            idaa.accel_groom_all()
        } else {
            let table = table_arg(args)?;
            idaa.accel_groom(&table.resolve(idaa.default_schema()))?
        };
        Ok(message_result(format!("groomed {n} row versions")))
    }
}

/// `SYSPROC.ACCEL_APPLY_REPLICATION` — manually drain the CDC log to the
/// accelerator (normally automatic at commit when `auto_replicate` is on).
pub struct AccelApplyReplication;

impl Procedure for AccelApplyReplication {
    fn name(&self) -> ObjectName {
        ObjectName::qualified("SYSPROC", "ACCEL_APPLY_REPLICATION")
    }

    fn execute(&self, idaa: &Idaa, _session: &mut Session, _args: &[Value]) -> Result<Rows> {
        let n = idaa.replicate_now()?;
        Ok(message_result(format!("applied {n} change records")))
    }
}

/// The set of built-in system procedures.
pub fn system_procedures() -> Vec<Box<dyn Procedure>> {
    vec![
        Box::new(AccelAddTables),
        Box::new(AccelLoadTables),
        Box::new(AccelRemoveTables),
        Box::new(AccelGroomTables),
        Box::new(AccelApplyReplication),
    ]
}
