//! Client sessions: authorization id, special registers, transaction state.

use idaa_host::TxnId;
use idaa_sql::AccelerationMode;

/// One application connection to the federated system.
#[derive(Debug)]
pub struct Session {
    /// Authorization id (user) — all governance checks use this.
    pub user: String,
    /// `CURRENT QUERY ACCELERATION` special register. DB2's default is
    /// NONE: nothing is offloaded until the application opts in.
    pub acceleration: AccelerationMode,
    /// Open explicit transaction, if any.
    pub txn: Option<TxnId>,
    /// True while inside `BEGIN … COMMIT` (suppresses autocommit).
    pub explicit_txn: bool,
    /// Statements executed on this session (diagnostics).
    pub statements: u64,
}

impl Session {
    /// Fresh session for `user` with DB2 defaults.
    pub fn new(user: &str) -> Session {
        Session {
            user: user.to_uppercase(),
            acceleration: AccelerationMode::None,
            txn: None,
            explicit_txn: false,
            statements: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_db2() {
        let s = Session::new("alice");
        assert_eq!(s.user, "ALICE");
        assert_eq!(s.acceleration, AccelerationMode::None);
        assert!(s.txn.is_none());
        assert!(!s.explicit_txn);
    }
}
