//! Client sessions: authorization id, special registers, transaction state.
//!
//! # Statement sequencing across a fleet
//!
//! Every statement shipped to an accelerator is stamped `(session.id,
//! seq)`, with [`Session::next_seq`] drawn from one per-session counter no
//! matter which node serves it. Each fleet node keeps its *own*
//! `SeqTracker`, so delivery is deduplicated per `(session, node)` pair:
//! a retry that ultimately lands on a failover replica is a first
//! delivery *there* and applies, while a duplicate of something the
//! primary already acked is dropped *there*. Trackers are additionally
//! fenced by the node's recovery epoch — after a crash restart the node
//! adopts a new epoch and deliveries stamped with an older one are
//! rejected, so a pre-crash ack can never apply against the new
//! incarnation even though the session's sequence numbers keep rising
//! monotonically across the failover.

use idaa_common::trace::Trace;
use idaa_host::TxnId;
use idaa_sql::AccelerationMode;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// One application connection to the federated system.
#[derive(Debug)]
pub struct Session {
    /// Process-unique session id; statements shipped to the accelerator
    /// are sequenced per session so retried deliveries deduplicate.
    pub id: u64,
    /// Authorization id (user) — all governance checks use this.
    pub user: String,
    /// `CURRENT QUERY ACCELERATION` special register. DB2's default is
    /// NONE: nothing is offloaded until the application opts in.
    pub acceleration: AccelerationMode,
    /// Open explicit transaction, if any.
    pub txn: Option<TxnId>,
    /// True while inside `BEGIN … COMMIT` (suppresses autocommit).
    pub explicit_txn: bool,
    /// Statements executed on this session (diagnostics).
    pub statements: u64,
    /// Query-lifecycle tracer. Sessions opened via `Idaa::session` get an
    /// active trace when the system's `TraceSink` is enabled; every span it
    /// records is stamped with the link's *virtual* clock only.
    pub trace: Trace,
    seq: u64,
}

impl Session {
    /// Fresh session for `user` with DB2 defaults.
    pub fn new(user: &str) -> Session {
        Session {
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            user: user.to_uppercase(),
            acceleration: AccelerationMode::None,
            txn: None,
            explicit_txn: false,
            statements: 0,
            trace: Trace::disabled(),
            seq: 0,
        }
    }

    /// Next statement sequence number for idempotent shipping (1-based).
    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_db2() {
        let s = Session::new("alice");
        assert_eq!(s.user, "ALICE");
        assert_eq!(s.acceleration, AccelerationMode::None);
        assert!(s.txn.is_none());
        assert!(!s.explicit_txn);
    }
}
