//! Incremental-update replication: ships committed DB2 changes on
//! accelerated tables to the accelerator in batches over the metered link.
//!
//! This is the *only* freshness mechanism for regular accelerated tables —
//! and the machinery whose per-stage round trips the paper's AOT extension
//! exists to avoid. Ablation experiment E9 sweeps the batch size.
//!
//! The applier survives link faults: the CDC watermark advances only when
//! a batch has been delivered *and acknowledged*, so a mid-stream failure
//! leaves the remaining changes queued in the host log for catch-up. A
//! batch whose acknowledgement was lost is redelivered on the next round
//! and deduplicated on the accelerator side *per change LSN* — batch
//! boundaries shift when new commits re-chunk the backlog, so a
//! redelivered batch may mix already-applied changes with new ones and
//! only the genuinely new suffix applies. Every committed change applies
//! exactly once no matter how often the link drops (experiment E14, chaos
//! suite in `tests/chaos.rs`).

use idaa_accel::AccelEngine;
use idaa_common::{wire, Error, ObjectName, Result, Row};
use idaa_host::{AccelStatus, ChangeOp, ChangeRecord, HostEngine, Lsn};
use idaa_netsim::{sites, Direction, NetLink, RetryPolicy};
use idaa_sql::ast::{BinaryOp, Expr};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Replication applier state.
pub struct Replicator {
    /// Host-side watermark: highest LSN whose batch was acknowledged.
    last_applied: Lsn,
    /// Accelerator-side durable record of the highest applied LSN —
    /// redelivered changes at or below it are discarded.
    accel_applied: Lsn,
    /// The last apply round could not deliver everything (link fault); the
    /// backlog stays queued in the host log until the next round.
    stalled: bool,
    retry: RetryPolicy,
    /// Max change records shipped per apply message.
    pub batch_size: usize,
    pub batches_shipped: AtomicU64,
    pub changes_applied: AtomicU64,
    /// Batches shipped more than once because their ack was lost.
    pub batches_redelivered: AtomicU64,
}

impl Default for Replicator {
    fn default() -> Self {
        Replicator::new(1024, RetryPolicy::default())
    }
}

impl Replicator {
    /// Applier starting at LSN 0 with the given batch size and per-message
    /// retry policy.
    pub fn new(batch_size: usize, retry: RetryPolicy) -> Replicator {
        Replicator {
            last_applied: 0,
            accel_applied: 0,
            stalled: false,
            retry,
            batch_size: batch_size.max(1),
            batches_shipped: AtomicU64::new(0),
            changes_applied: AtomicU64::new(0),
            batches_redelivered: AtomicU64::new(0),
        }
    }

    /// LSN up to which changes have been acknowledged by the accelerator.
    pub fn last_applied(&self) -> Lsn {
        self.last_applied
    }

    /// True if the last apply round hit a link fault and left a backlog.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// Jump both watermarks forward to `lsn`. Used after a storage rebuild
    /// re-ships a full snapshot of every replicated table: the snapshot
    /// already contains every change at or below `lsn`, so replaying the
    /// backlog would double-apply it. Never moves a watermark backwards.
    pub fn fast_forward(&mut self, lsn: Lsn) {
        self.last_applied = self.last_applied.max(lsn);
        self.accel_applied = self.accel_applied.max(lsn);
    }

    /// Drain all committed changes newer than `last_applied` and apply them
    /// to the accelerator. Returns the number of change records applied.
    ///
    /// Only tables in `Loaded` state replicate; changes to other tables are
    /// skipped (their LSNs still advance the applied watermark).
    ///
    /// Link faults do not error: the round returns what it managed to
    /// apply, marks the stream [`stalled`](Self::stalled), and the next
    /// round resumes from the last acknowledged batch. Engine errors
    /// (always a bug) propagate.
    pub fn apply(
        &mut self,
        host: &HostEngine,
        accel: &AccelEngine,
        link: &NetLink,
    ) -> Result<usize> {
        self.stalled = false;
        let all = host.txns.changes_since(self.last_applied);
        if all.is_empty() {
            return Ok(0);
        }
        let last_lsn = all.last().expect("non-empty").lsn;
        // Only tables in Loaded state replicate; other changes never cross
        // the link (their LSNs still advance the watermark below).
        let mut changes = Vec::with_capacity(all.len());
        for c in all {
            if host.table_meta(&c.table)?.accel_status == AccelStatus::Loaded {
                changes.push(c);
            }
        }
        let mut applied = 0;
        for batch in changes.chunks(self.batch_size) {
            let batch_last = batch.last().expect("non-empty batch").lsn;
            // Full row images of every change in the batch cross the link as
            // encoded wire frames, one per table in first-occurrence order so
            // the frame sequence is deterministic for a given change stream.
            let mut groups: Vec<(ObjectName, Vec<Row>)> = Vec::new();
            for c in batch {
                let images: Vec<Row> = match &c.op {
                    ChangeOp::Insert(r) | ChangeOp::Delete(r) => vec![r.clone()],
                    ChangeOp::Update { old, new } => vec![old.clone(), new.clone()],
                };
                match groups.iter_mut().find(|(t, _)| *t == c.table) {
                    Some((_, g)) => g.extend(images),
                    None => groups.push((c.table.clone(), images)),
                }
            }
            // Ship every table's frame; the applier below works on the
            // *decoded* images, so what lands on the accelerator is exactly
            // what survived the checksum, not the host's in-memory rows.
            let mut delivered: Vec<(ObjectName, VecDeque<Row>)> =
                Vec::with_capacity(groups.len());
            let mut faulted = false;
            for (table, images) in &groups {
                let schema = host.table_meta(table)?.schema;
                let frame = wire::encode_frame(&schema, images);
                if self.retry.transfer_frame(link, Direction::ToAccel, &frame).is_err() {
                    faulted = true;
                    break;
                }
                delivered.push((table.clone(), wire::decode_rows(&frame, &schema)?.into()));
            }
            if faulted {
                self.stalled = true;
                return Ok(applied);
            }
            self.batches_shipped.fetch_add(1, Ordering::Relaxed);

            // Accelerator-side dedup, per change: anything at or below the
            // durable applied LSN landed in an earlier round whose ack was
            // lost. Batch boundaries are not stable across rounds (new
            // commits re-chunk the backlog), so a redelivered batch may mix
            // already-applied changes with new ones — only the genuinely
            // new suffix may apply.
            if batch_last > self.accel_applied {
                // Each batch applies under one accelerator transaction, so
                // a batch becomes visible atomically.
                let txn = next_apply_txn();
                accel.begin(txn);
                match apply_batch(accel, txn, batch, &mut delivered, self.accel_applied) {
                    Ok(fresh) => {
                        self.accel_applied = batch_last;
                        applied += fresh as usize;
                        self.changes_applied.fetch_add(fresh, Ordering::Relaxed);
                        if (fresh as usize) < batch.len() {
                            self.batches_redelivered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The accelerator crashed mid-apply (a crash site
                    // fired): like a link fault, the batch went
                    // unacknowledged — `accel_applied` did not advance, so
                    // it re-applies in full under a fresh transaction after
                    // recovery; the partially-applied one is rolled back by
                    // restart's presumed-abort pass.
                    Err(Error::ResourceUnavailable(_)) => {
                        self.stalled = true;
                        return Ok(applied);
                    }
                    Err(e) => return Err(e),
                }
            } else {
                self.batches_redelivered.fetch_add(1, Ordering::Relaxed);
            }
            // Acknowledgement back to the host side; only an acknowledged
            // batch may advance the watermark.
            if self.retry.transfer(link, Direction::ToHost, wire::ACK_FRAME).is_err() {
                self.stalled = true;
                return Ok(applied);
            }
            self.last_applied = batch_last;
        }
        self.last_applied = last_lsn;
        self.accel_applied = self.accel_applied.max(last_lsn);
        // Truncation is the *caller's* decision: with one accelerator the
        // log truncates at this stream's watermark right after the round,
        // but in a fleet every node owns a replication stream and the log
        // may only truncate at the minimum watermark across all of them —
        // a lagging (or crashed) node must still find its backlog.
        Ok(applied)
    }
}

/// Apply one replication batch under transaction `txn`, consuming decoded
/// row images from `delivered` in change order — stale changes (at or
/// below `watermark`, redelivered after a lost ack) consume their frame
/// slots without applying. Returns the number of genuinely new changes
/// applied.
///
/// The `MID_REPL_APPLY` crash site fires before the first change; a crash
/// there (or at `prepare`'s `POST_PREPARE` site) surfaces as
/// `ResourceUnavailable`, which the caller treats like an unacknowledged
/// batch.
fn apply_batch(
    accel: &AccelEngine,
    txn: u64,
    batch: &[ChangeRecord],
    delivered: &mut [(ObjectName, VecDeque<Row>)],
    watermark: Lsn,
) -> Result<u64> {
    accel.crash_point(sites::MID_REPL_APPLY)?;
    let mut fresh: u64 = 0;
    for change in batch {
        // Decoded images are consumed in change order even for
        // deduplicated (stale) changes — they occupy frame slots.
        let queue = delivered
            .iter_mut()
            .find(|(t, _)| *t == change.table)
            .map(|(_, q)| q)
            .expect("every change's table shipped a frame");
        let stale = change.lsn <= watermark;
        match &change.op {
            ChangeOp::Insert(_) => {
                let row = queue.pop_front().expect("insert image in frame");
                if !stale {
                    accel.insert_rows(txn, &change.table, vec![row])?;
                }
            }
            ChangeOp::Delete(_) => {
                let row = queue.pop_front().expect("delete image in frame");
                if !stale {
                    delete_exact(accel, txn, &change.table, &row)?;
                }
            }
            ChangeOp::Update { .. } => {
                let old = queue.pop_front().expect("old image in frame");
                let new = queue.pop_front().expect("new image in frame");
                if !stale {
                    delete_exact(accel, txn, &change.table, &old)?;
                    accel.insert_rows(txn, &change.table, vec![new])?;
                }
            }
        }
        if !stale {
            fresh += 1;
        }
    }
    accel.prepare(txn)?;
    accel.commit(txn);
    Ok(fresh)
}

static NEXT_APPLY_TXN: AtomicU64 = AtomicU64::new(1 << 61);

fn next_apply_txn() -> u64 {
    NEXT_APPLY_TXN.fetch_add(1, Ordering::Relaxed)
}

/// Delete exactly one accelerator row matching the full image `row`.
/// Log-based capture ships full before-images, so equality on all columns
/// identifies the victim.
fn delete_exact(
    accel: &AccelEngine,
    txn: u64,
    table: &ObjectName,
    row: &Row,
) -> Result<()> {
    let t = accel.table(table)?;
    let mut filter: Option<Expr> = None;
    for (col, v) in t.schema.columns().iter().zip(row) {
        let conj = if v.is_null() {
            Expr::IsNull { expr: Box::new(Expr::col(&col.name)), negated: false }
        } else {
            Expr::Binary {
                left: Box::new(Expr::col(&col.name)),
                op: BinaryOp::Eq,
                right: Box::new(Expr::Literal(v.clone())),
            }
        };
        filter = Some(match filter {
            None => conj,
            Some(f) => f.and(conj),
        });
    }
    // Delete only the first match when duplicates exist: emulate by
    // deleting all matches and re-inserting n-1 copies — but duplicates of
    // *full rows* are rare in practice; the simple implementation deletes
    // all matches and reinserts the surplus.
    let n = accel.delete_where(txn, table, filter.as_ref())?;
    if n > 1 {
        let surplus = vec![row.clone(); n - 1];
        accel.insert_rows(txn, table, surplus)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType, Schema, Value};
    use idaa_host::{TableKind, SYSADM};

    fn setup() -> (HostEngine, AccelEngine, NetLink) {
        let host = HostEngine::default();
        let accel = AccelEngine::default();
        let link = NetLink::default();
        let schema = Schema::new(vec![
            ColumnDef::not_null("ID", DataType::Integer),
            ColumnDef::new("V", DataType::Varchar(16)),
        ])
        .unwrap();
        let name = ObjectName::bare("T");
        host.create_table(SYSADM, &name, schema.clone(), TableKind::Regular, vec![]).unwrap();
        accel.create_table(&name, schema, &[]).unwrap();
        host.set_accel_status(&name, AccelStatus::Loaded).unwrap();
        (host, accel, link)
    }

    fn row(id: i32, v: &str) -> Row {
        vec![Value::Int(id), Value::Varchar(v.into())]
    }

    #[test]
    fn inserts_replicate() {
        let (host, accel, link) = setup();
        let mut rep = Replicator::new(10, RetryPolicy::default());
        let t = host.begin();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), vec![row(1, "a"), row(2, "b")])
            .unwrap();
        host.commit(t);
        let n = rep.apply(&host, &accel, &link).unwrap();
        assert_eq!(n, 2);
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 2);
        assert!(link.metrics().bytes_to_accel > 0);
    }

    #[test]
    fn uncommitted_changes_do_not_replicate() {
        let (host, accel, link) = setup();
        let mut rep = Replicator::new(10, RetryPolicy::default());
        let t = host.begin();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), vec![row(1, "a")]).unwrap();
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 0);
        host.rollback(t).unwrap();
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 0);
        assert!(accel.scan_visible(&ObjectName::bare("T")).unwrap().is_empty());
    }

    #[test]
    fn updates_and_deletes_converge() {
        let (host, accel, link) = setup();
        let mut rep = Replicator::new(10, RetryPolicy::default());
        let t = host.begin();
        host.insert_rows(
            SYSADM,
            t,
            &ObjectName::bare("T"),
            vec![row(1, "a"), row(2, "b"), row(3, "c")],
        )
        .unwrap();
        host.commit(t);
        rep.apply(&host, &accel, &link).unwrap();
        let t2 = host.begin();
        host.update_where(
            SYSADM,
            t2,
            &ObjectName::bare("T"),
            &[("V".into(), Expr::str("z"))],
            Some(&Expr::col("ID").eq(Expr::int(2))),
        )
        .unwrap();
        host.delete_where(SYSADM, t2, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(3))))
            .unwrap();
        host.commit(t2);
        rep.apply(&host, &accel, &link).unwrap();
        let mut rows = accel.scan_visible(&ObjectName::bare("T")).unwrap();
        rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], row(2, "z"));
    }

    #[test]
    fn batching_controls_message_count() {
        let (host, accel, link) = setup();
        let t = host.begin();
        let rows: Vec<Row> = (0..100).map(|i| row(i, "x")).collect();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), rows).unwrap();
        host.commit(t);
        let mut rep = Replicator::new(10, RetryPolicy::default());
        rep.apply(&host, &accel, &link).unwrap();
        assert_eq!(rep.batches_shipped.load(Ordering::Relaxed), 10);
        assert_eq!(link.metrics().messages_to_accel, 10);
    }

    #[test]
    fn duplicate_rows_delete_only_one() {
        let (host, accel, link) = setup();
        let mut rep = Replicator::new(100, RetryPolicy::default());
        let t = host.begin();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), vec![row(1, "a"), row(1, "a")])
            .unwrap();
        host.commit(t);
        rep.apply(&host, &accel, &link).unwrap();
        let t2 = host.begin();
        // Host deletes both (same predicate matches both rows there too),
        // producing two delete records; accel must converge to zero.
        host.delete_where(SYSADM, t2, &ObjectName::bare("T"), Some(&Expr::col("ID").eq(Expr::int(1))))
            .unwrap();
        host.commit(t2);
        rep.apply(&host, &accel, &link).unwrap();
        assert!(accel.scan_visible(&ObjectName::bare("T")).unwrap().is_empty());
    }

    #[test]
    fn watermark_advances_and_log_truncates() {
        let (host, accel, link) = setup();
        let mut rep = Replicator::new(10, RetryPolicy::default());
        let t = host.begin();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), vec![row(1, "a")]).unwrap();
        host.commit(t);
        rep.apply(&host, &accel, &link).unwrap();
        assert!(rep.last_applied() > 0);
        assert!(
            host.txns.changes_since(rep.last_applied()).is_empty(),
            "backlog fully applied"
        );
        // Truncation is the caller's call (fleet: minimum watermark across
        // all streams) — here one stream, so its watermark is the minimum.
        host.txns.truncate_log(rep.last_applied());
        assert!(host.txns.changes_since(0).is_empty(), "log truncated at the watermark");
        // Idempotent when nothing new.
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 0);
    }

    #[test]
    fn mid_stream_delivery_failure_resumes_without_loss() {
        let (host, accel, link) = setup();
        let t = host.begin();
        let rows: Vec<Row> = (0..100).map(|i| row(i, "x")).collect();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), rows).unwrap();
        host.commit(t);
        let mut rep = Replicator::new(10, RetryPolicy::none());
        // Batches cost 2 transfers each (payload + ack); kill the payload
        // of batch 4 after 3 healthy batches.
        link.fail_transfers_after(6, 1);
        let first = rep.apply(&host, &accel, &link).unwrap();
        assert_eq!(first, 30, "three batches landed before the fault");
        assert!(rep.stalled());
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 30);
        assert!(
            !host.txns.changes_since(rep.last_applied()).is_empty(),
            "backlog stays queued in the host log"
        );
        // Next round catches up from the last acknowledged batch.
        let second = rep.apply(&host, &accel, &link).unwrap();
        assert_eq!(second, 70);
        assert!(!rep.stalled());
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 100);
        assert_eq!(rep.batches_shipped.load(Ordering::Relaxed), 10);
        assert_eq!(rep.batches_redelivered.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lost_ack_redelivers_batch_exactly_once() {
        let (host, accel, link) = setup();
        let t = host.begin();
        let rows: Vec<Row> = (0..20).map(|i| row(i, "x")).collect();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), rows).unwrap();
        host.commit(t);
        let mut rep = Replicator::new(10, RetryPolicy::none());
        // Deliver batch 1, lose its acknowledgement (transfer #2).
        link.fail_transfers_after(1, 1);
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 10);
        assert!(rep.stalled());
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 10);
        // The watermark did not advance: batch 1 ships again, but its LSN
        // identifies it as already applied — no duplicate rows.
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 10);
        assert_eq!(rep.batches_redelivered.load(Ordering::Relaxed), 1);
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 20);
        assert_eq!(rep.changes_applied.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn rechunked_redelivery_applies_only_the_new_suffix() {
        let (host, accel, link) = setup();
        let t = host.begin();
        let rows: Vec<Row> = (0..15).map(|i| row(i, "x")).collect();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), rows).unwrap();
        host.commit(t);
        let mut rep = Replicator::new(10, RetryPolicy::none());
        // Transfers: batch 1 payload, batch 1 ack, batch 2 payload, batch 2
        // ack — lose the *second* batch's ack, so a partial (5-change)
        // batch is applied but unacknowledged.
        link.fail_transfers_after(3, 1);
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 15);
        assert!(rep.stalled());
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 15);
        // New commits re-chunk the backlog: the first redelivered batch now
        // mixes the 5 already-applied changes with 5 new ones. Only the new
        // suffix may apply — batch-granularity dedup would duplicate rows.
        let t2 = host.begin();
        let more: Vec<Row> = (15..25).map(|i| row(i, "y")).collect();
        host.insert_rows(SYSADM, t2, &ObjectName::bare("T"), more).unwrap();
        host.commit(t2);
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 10);
        assert!(!rep.stalled());
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 25);
        assert_eq!(rep.changes_applied.load(Ordering::Relaxed), 25);
        assert_eq!(rep.batches_redelivered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn outage_queues_changes_and_catches_up_after_window() {
        let (host, accel, link) = setup();
        link.set_fault_plan(idaa_netsim::FaultPlan::outage(
            std::time::Duration::ZERO,
            std::time::Duration::from_millis(50),
        ));
        let mut rep = Replicator::new(10, RetryPolicy::none());
        let t = host.begin();
        host.insert_rows(SYSADM, t, &ObjectName::bare("T"), vec![row(1, "a")]).unwrap();
        host.commit(t);
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 0);
        assert!(rep.stalled());
        // More changes accumulate during the outage.
        let t2 = host.begin();
        host.insert_rows(SYSADM, t2, &ObjectName::bare("T"), vec![row(2, "b")]).unwrap();
        host.commit(t2);
        // The window passes on the virtual clock; everything catches up.
        link.advance(std::time::Duration::from_millis(60));
        assert_eq!(rep.apply(&host, &accel, &link).unwrap(), 2);
        assert!(!rep.stalled());
        assert_eq!(accel.scan_visible(&ObjectName::bare("T")).unwrap().len(), 2);
    }
}
