//! The federated system facade — "DB2 + IDAA" as one object.
//!
//! [`Idaa`] owns the host engine, the accelerator engine, the metered link
//! between them, the replication applier, and the stored-procedure
//! registry. [`Idaa::execute`] is the single SQL entry point an
//! application sees: it parses, authorizes (on the host — governance),
//! routes (host vs. accelerator), meters every byte that crosses the link,
//! and coordinates two-phase commit when a transaction touched both sides.

use crate::fleet::{AccelNode, FleetConfig, FleetState};
use crate::health::{Delivery, HealthConfig, HealthState};
use crate::procedures::{system_procedures, Procedure};
use crate::router::{self, Route};
use crate::session::Session;
use idaa_accel::{AccelConfig, AccelEngine, RestartStats};
use idaa_common::trace::{SpanId, StatementTrace, Trace, TraceSink};
use idaa_common::wire;
use idaa_common::{Error, MetricsRegistry, ObjectName, Result, Row, Rows, Value};
use idaa_host::{HostEngine, TableKind, TxnId, SYSADM};
use idaa_netsim::{
    sites, CrashPlan, Direction, DiskFaultPlan, FaultPlan, FaultRegistry, LinkConfig, NetLink,
    RetryPolicy,
};
use idaa_sql::ast::{Expr, InsertSource, Query, Statement};
use idaa_sql::eval::{bind, eval, FlatResolver};
use idaa_sql::plan::{plan_query, Plan, PlanProfile};
use idaa_sql::{parse_statement, parse_statements, Privilege};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// System-wide configuration.
#[derive(Debug, Clone)]
pub struct IdaaConfig {
    /// Default schema for unqualified names (shared by both engines).
    pub default_schema: String,
    /// Accelerator tunables.
    pub accel: AccelConfig,
    /// Link parameters.
    pub link: LinkConfig,
    /// Replication batch size (change records per shipped batch).
    pub replication_batch: usize,
    /// Drain the CDC log to the accelerator after every commit.
    pub auto_replicate: bool,
    /// Retry policy for every host↔accelerator message (backoff consumes
    /// only the link's virtual clock).
    pub retry: RetryPolicy,
    /// Thresholds for the accelerator health state machine.
    pub health: HealthConfig,
    /// Virtual-clock interval between periodic accelerator checkpoints
    /// (drives how much commit log a crash must replay — experiment E16
    /// sweeps it).
    pub checkpoint_every: Duration,
    /// Fixed virtual-time cost of an accelerator restart, charged to the
    /// link clock before log replay.
    pub recovery_fixed: Duration,
    /// Virtual replay bandwidth: checkpoint + replayed-log bytes are
    /// charged to the link clock at this rate during recovery.
    pub recovery_bytes_per_sec: u64,
    /// Virtual-clock interval between background storage-scrub steps on
    /// each accelerator (re-verifying durable checksums between
    /// statements, so latent bit-rot is repaired before recovery reads
    /// it). `Duration::ZERO` — the default — disables the scrub;
    /// experiment E21 sweeps this knob.
    pub scrub_every: Duration,
    /// Fleet topology (accelerator count, AOT shards, replication factor).
    /// The default is the paper's single-accelerator pairing.
    pub fleet: FleetConfig,
}

impl Default for IdaaConfig {
    fn default() -> Self {
        IdaaConfig {
            default_schema: "APP".into(),
            accel: AccelConfig::default(),
            link: LinkConfig::default(),
            replication_batch: 1024,
            auto_replicate: true,
            retry: RetryPolicy::default(),
            health: HealthConfig::default(),
            checkpoint_every: Duration::from_millis(25),
            recovery_fixed: Duration::from_millis(2),
            recovery_bytes_per_sec: 256 * 1024 * 1024,
            scrub_every: Duration::ZERO,
            fleet: FleetConfig::default(),
        }
    }
}

/// Failure-injection surface for tests and experiments.
///
/// Link-level faults (drops, outage windows) are configured on the link
/// itself via [`Idaa::set_fault_plan`]; conditions the link cannot express
/// go through the unified [`FaultRegistry`] — a [`CrashPlan`] names crash
/// sites (or protocol sites like [`sites::PREPARE_VOTE_NO`]) and the
/// registry replays the same firings for a given seed. One registry is
/// shared between the coordinator and the accelerator engine so a single
/// plan drives both.
#[derive(Debug, Default)]
pub struct Faults {
    /// Simulate a *stopped* accelerator (operator ran ACCEL_STOP, or the
    /// appliance is down): offload-eligible queries fall back to DB2,
    /// while statements that require the accelerator (AOTs, ALL mode)
    /// fail with SQLCODE -904 (resource unavailable).
    pub accel_unavailable: AtomicBool,
    /// Named-site failure registry (crash points, 2PC vote-NO). Arm a
    /// one-shot with [`FaultRegistry::arm`] or install a seeded
    /// [`CrashPlan`] via [`Idaa::set_crash_plan`].
    pub registry: Arc<FaultRegistry>,
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A result set.
    Rows(Rows),
    /// An affected-row count.
    Count(usize),
    /// Nothing (DDL, transaction control, SET).
    None,
}

/// Result of one statement: where it ran and what it returned.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    pub route: Route,
    pub payload: Payload,
}

impl ExecOutcome {
    fn host(payload: Payload) -> ExecOutcome {
        ExecOutcome { route: Route::Host, payload }
    }

    fn accel(payload: Payload) -> ExecOutcome {
        ExecOutcome { route: Route::Accelerator, payload }
    }

    /// The result set, if any.
    pub fn rows(&self) -> Option<&Rows> {
        match &self.payload {
            Payload::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The affected-row count (0 for non-DML).
    pub fn count(&self) -> usize {
        match &self.payload {
            Payload::Count(n) => *n,
            _ => 0,
        }
    }
}

/// Scheduling context the workload manager attaches to a statement it
/// admits: recorded as a zero-duration "queue" event under the statement's
/// root span, so traces show how long the statement waited and in which
/// admission round it ran. Plain (serverless) callers never carry one.
#[derive(Debug, Clone)]
pub struct QueueInfo {
    /// Deterministic 1-based server seat (connect order), *not* the
    /// process-global `Session::id`.
    pub seat: u64,
    /// Priority class name at admission.
    pub priority: &'static str,
    /// Virtual time the statement spent queued before admission.
    pub queued: Duration,
    /// Scheduler round (1-based) that admitted the statement.
    pub round: u64,
}

/// The federated DB2 + accelerator system.
///
/// The accelerator side is a *fleet* of one or more [`AccelNode`]s, each
/// behind its own metered link and fault registry. With the default
/// [`FleetConfig`] (one node, one shard) every path reduces to the paper's
/// single-accelerator pairing; larger fleets shard accelerator-only tables
/// and scatter/gather queries across the owning nodes.
pub struct Idaa {
    pub(crate) host: Arc<HostEngine>,
    /// The accelerator fleet; node 0 is the legacy single accelerator.
    pub(crate) nodes: Vec<Arc<AccelNode>>,
    /// Shard placement, failover, and catch-up bookkeeping.
    pub(crate) fleet: FleetState,
    procedures: RwLock<HashMap<ObjectName, Arc<dyn Procedure>>>,
    pub(crate) config: IdaaConfig,
    pub faults: Faults,
    pub(crate) retry: RetryPolicy,
    /// In-doubt transactions resolved by the 2PC resolver (diagnostics).
    in_doubt_resolved: AtomicU64,
    /// Redelivered statements the receiver discarded as duplicates
    /// (diagnostics).
    statements_deduped: AtomicU64,
    /// Messages discarded because they carried a pre-crash recovery epoch
    /// (diagnostics).
    statements_fenced: AtomicU64,
    /// Collected statement traces (query-lifecycle span trees on the
    /// virtual clock).
    tracer: Arc<TraceSink>,
    /// Process-wide monotone counters and gauges; every node's link mirrors
    /// its delivered/failed counters here (`link.*` for node 0,
    /// `link.node{i}.*` for the rest).
    pub(crate) metrics: Arc<MetricsRegistry>,
}

impl Default for Idaa {
    fn default() -> Self {
        Idaa::new(IdaaConfig::default())
    }
}

impl Idaa {
    /// Build the system and register the IDAA system procedures.
    pub fn new(config: IdaaConfig) -> Idaa {
        let faults = Faults::default();
        let nodes: Vec<Arc<AccelNode>> = (0..config.fleet.accelerators.max(1))
            .map(|i| {
                // Node 0 shares the public `faults.registry`, so existing
                // single-accelerator crash plans keep driving it; every
                // other node gets its own seeded registry.
                let registry = if i == 0 {
                    faults.registry.clone()
                } else {
                    Arc::new(FaultRegistry::default())
                };
                AccelNode::new(i, &config, registry)
            })
            .collect();
        let idaa = Idaa {
            host: Arc::new(HostEngine::new(&config.default_schema)),
            nodes,
            fleet: FleetState::new(&config.fleet),
            procedures: RwLock::new(HashMap::new()),
            retry: config.retry,
            in_doubt_resolved: AtomicU64::new(0),
            statements_deduped: AtomicU64::new(0),
            statements_fenced: AtomicU64::new(0),
            tracer: Arc::new(TraceSink::default()),
            metrics: Arc::new(MetricsRegistry::default()),
            config,
            faults,
        };
        // Mirror delivered/failed link traffic into the metrics registry
        // from the first transfer, so the per-link counters reconcile with
        // `LinkMetrics` by construction: node 0 keeps the legacy `link.*`
        // names, node i mirrors under `link.node{i}.*`.
        for node in &idaa.nodes {
            if node.id == 0 {
                node.link.set_metrics(idaa.metrics.clone());
            } else {
                node.link.set_metrics_prefixed(idaa.metrics.clone(), &format!("link.node{}", node.id));
            }
        }
        for p in system_procedures() {
            idaa.register_procedure(Arc::from(p), SYSADM)
                .expect("registering system procedures cannot fail");
        }
        idaa
    }

    /// The first (preferred-primary) accelerator node — the legacy single
    /// accelerator every default-configured path talks to.
    pub(crate) fn node0(&self) -> &AccelNode {
        &self.nodes[0]
    }

    /// Open a session for `user`. When the system's [`TraceSink`] is
    /// enabled (the default), the session records a query-lifecycle span
    /// tree per statement, stamped with the link's virtual clock.
    pub fn session(&self, user: &str) -> Session {
        let mut s = Session::new(user);
        if self.tracer.enabled() {
            s.trace = Trace::enabled();
        }
        s
    }

    /// The statement-trace collector.
    pub fn tracer(&self) -> &TraceSink {
        &self.tracer
    }

    /// The process-wide metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The `SHOW WORKLOAD` result set: one row per server seat, rendered
    /// entirely from the `server.session.*` entries the workload manager
    /// maintains in the metrics registry. A system without a server has no
    /// such entries and the view is empty — the statement itself never
    /// touches the link, so it can run even while the accelerator is down.
    fn workload_rows(&self) -> Rows {
        let snap = self.metrics.snapshot();
        // Every connected seat owns a `priority` gauge from connect time,
        // so the gauge keys are the authoritative seat list.
        let mut seats: Vec<u64> = snap
            .gauges
            .keys()
            .filter_map(|k| {
                let rest = k.strip_prefix("server.session.")?;
                let seat = rest.strip_suffix(".priority")?;
                seat.parse().ok()
            })
            .collect();
        seats.sort_unstable();
        let rows = seats
            .into_iter()
            .map(|seat| {
                let g = |field: &str| {
                    snap.gauges
                        .get(&format!("server.session.{seat}.{field}"))
                        .copied()
                        .unwrap_or(0)
                };
                let c = |field: &str| {
                    snap.counter(&format!("server.session.{seat}.{field}")) as i64
                };
                vec![
                    Value::BigInt(seat as i64),
                    Value::Varchar(crate::server::Priority::name_of_rank(g("priority")).into()),
                    Value::BigInt(g("queued")),
                    Value::BigInt(g("running")),
                    Value::BigInt(c("done")),
                    Value::BigInt(c("failed")),
                    Value::BigInt(c("queue_time_us")),
                    Value::BigInt(c("bytes")),
                ]
            })
            .collect();
        Rows::new(workload_schema(), rows)
    }

    /// The host engine (DB2 side).
    pub fn host(&self) -> &HostEngine {
        &self.host
    }

    /// The accelerator engine (node 0 of the fleet).
    pub fn accel(&self) -> &AccelEngine {
        &self.nodes[0].engine
    }

    /// The metered host↔accelerator link (node 0 of the fleet).
    pub fn link(&self) -> &NetLink {
        &self.nodes[0].link
    }

    /// The coordinator's health view of the accelerator (node 0).
    pub fn health(&self) -> &crate::health::HealthMonitor {
        &self.nodes[0].health
    }

    /// Arm a deterministic fault plan on the link.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.link().set_fault_plan(plan);
    }

    /// Install a seeded crash plan on the shared failure registry: named
    /// sites (mid-bulk-load, post-prepare, mid-replication-apply,
    /// mid-checkpoint, 2PC vote-NO) fire deterministically per seed.
    pub fn set_crash_plan(&self, plan: CrashPlan) {
        self.faults.registry.set_plan(plan);
    }

    /// Install a seeded *storage* fault plan on the shared failure
    /// registry: named disk sites (torn log append, torn checkpoint,
    /// log/checkpoint bit-rot, read failure) fire deterministically per
    /// seed from a stream independent of the crash plan's.
    pub fn set_disk_plan(&self, plan: DiskFaultPlan) {
        self.faults.registry.set_disk_plan(plan);
    }

    /// Stats of the most recent accelerator crash recovery, if any.
    pub fn last_restart(&self) -> Option<RestartStats> {
        *self.node0().last_restart.lock()
    }

    /// Messages discarded because they carried a pre-crash recovery
    /// epoch (diagnostics).
    pub fn statements_fenced(&self) -> u64 {
        self.statements_fenced.load(Ordering::Relaxed)
    }

    /// COMMIT decisions queued for redelivery (phase-2 message lost).
    pub fn pending_accel_commits(&self) -> usize {
        self.node0().pending_commits.lock().len()
    }

    /// In-doubt transactions the 2PC resolver recovered (diagnostics).
    pub fn in_doubt_resolved(&self) -> u64 {
        self.in_doubt_resolved.load(Ordering::Relaxed)
    }

    /// Statements redelivered after a lost reply and discarded as
    /// duplicates by the receiver's sequence tracker (diagnostics).
    pub fn statements_deduped(&self) -> u64 {
        self.statements_deduped.load(Ordering::Relaxed)
    }

    /// Committed change records not yet applied on the accelerator.
    pub fn replication_backlog(&self) -> usize {
        let watermark = self.node0().replicator.lock().last_applied();
        self.host.txns.changes_since(watermark).len()
    }

    /// Default schema for unqualified names.
    pub fn default_schema(&self) -> &str {
        &self.config.default_schema
    }

    /// Register a stored procedure owned by `owner` (analytics framework
    /// deployment path).
    pub fn register_procedure(&self, proc: Arc<dyn Procedure>, owner: &str) -> Result<()> {
        let name = proc.name();
        let mut procs = self.procedures.write();
        if procs.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("procedure {name} already registered")));
        }
        self.host.privileges.write().set_owner(name.clone(), owner);
        procs.insert(name, proc);
        Ok(())
    }

    /// Send one message over the link with bounded retry (backoff consumes
    /// only virtual time) and feed the outcome to the health monitor. Every
    /// federation path sends through here so consecutive communication
    /// failures decay the accelerator's health state.
    pub fn ship(&self, direction: Direction, bytes: usize) -> Result<Duration> {
        self.ship_on(self.node0(), direction, bytes)
    }

    /// [`Idaa::ship`] against a specific fleet node's link and health
    /// monitor.
    pub(crate) fn ship_on(
        &self,
        node: &AccelNode,
        direction: Direction,
        bytes: usize,
    ) -> Result<Duration> {
        match self.retry.transfer(&node.link, direction, bytes) {
            Ok(cost) => {
                node.health.record_success();
                Ok(cost)
            }
            Err(e) => {
                node.health.record_failure();
                Err(Error::LinkFailure(format!(
                    "communication with the accelerator failed: {e}"
                )))
            }
        }
    }

    /// Ship one encoded row frame over the link with the same bounded
    /// retry and health accounting as [`Idaa::ship`]. A frame rejected by
    /// the receiver's checksum ([`idaa_common::wire::verify`]) is
    /// retransmitted like any other lost message.
    pub fn ship_frame(&self, direction: Direction, frame: &[u8]) -> Result<Duration> {
        self.ship_frame_on(self.node0(), direction, frame)
    }

    /// [`Idaa::ship_frame`] against a specific fleet node.
    pub(crate) fn ship_frame_on(
        &self,
        node: &AccelNode,
        direction: Direction,
        frame: &[u8],
    ) -> Result<Duration> {
        match self.retry.transfer_frame(&node.link, direction, frame) {
            Ok(cost) => {
                node.health.record_success();
                Ok(cost)
            }
            Err(e) => {
                node.health.record_failure();
                Err(Error::LinkFailure(format!(
                    "communication with the accelerator failed: {e}"
                )))
            }
        }
    }

    /// Stream a row batch across the link as chunked encoded frames and
    /// return what the receiving side decodes. The destination engine
    /// ingests the *decoded* payload — not the sender's in-memory rows —
    /// so the codec is on the actual data path, and a frame that fails
    /// checksum or fingerprint verification surfaces before any row lands.
    pub fn ship_rows(
        &self,
        direction: Direction,
        schema: &idaa_common::Schema,
        rows: &[Row],
    ) -> Result<Vec<Row>> {
        self.ship_rows_on(self.node0(), direction, schema, rows)
    }

    /// [`Idaa::ship_rows`] against a specific fleet node.
    pub(crate) fn ship_rows_on(
        &self,
        node: &AccelNode,
        direction: Direction,
        schema: &idaa_common::Schema,
        rows: &[Row],
    ) -> Result<Vec<Row>> {
        let mut delivered = Vec::with_capacity(rows.len());
        for frame in wire::encode_frames(schema, rows) {
            self.ship_frame_on(node, direction, &frame)?;
            delivered.extend(wire::decode_rows(&frame, schema)?);
        }
        Ok(delivered)
    }

    /// Charge DDL/control-message shipping to the link.
    pub fn ship_ddl(&self, text: &str) -> Result<()> {
        self.ship_ddl_on(self.node0(), text)
    }

    /// [`Idaa::ship_ddl`] against a specific fleet node.
    pub(crate) fn ship_ddl_on(&self, node: &AccelNode, text: &str) -> Result<()> {
        self.ship_on(node, Direction::ToAccel, text.len() + wire::CONTROL_FRAME)?;
        self.ship_on(node, Direction::ToHost, wire::CONTROL_FRAME)?;
        Ok(())
    }

    /// ACCEL_ADD_TABLES body for one table: ship the ADD to every fleet
    /// node and create the replicated accelerator copy there.
    pub fn accel_table_add(&self, meta: &idaa_host::TableMeta) -> Result<()> {
        let ddl = format!("ADD TABLE {}", meta.name);
        for node in &self.nodes {
            self.ship_ddl_on(node, &ddl)?;
            node.engine.create_table(&meta.name, meta.schema.clone(), &meta.distribute_by)?;
        }
        Ok(())
    }

    /// ACCEL_REMOVE_TABLES body for one table: drop the copy on every
    /// fleet node.
    pub fn accel_table_remove(&self, meta: &idaa_host::TableMeta) -> Result<()> {
        let ddl = format!("REMOVE TABLE {}", meta.name);
        for node in &self.nodes {
            self.ship_ddl_on(node, &ddl)?;
            node.engine.drop_table(&meta.name)?;
        }
        Ok(())
    }

    /// Groom every table on every fleet node; returns blocks reclaimed.
    pub fn accel_groom_all(&self) -> usize {
        self.nodes.iter().map(|n| n.engine.groom_all()).sum()
    }

    /// Groom one table across the fleet. Errors only when no node holds
    /// the table (on a single node this is the table's own groom error).
    pub fn accel_groom(&self, table: &ObjectName) -> Result<usize> {
        let mut total = 0usize;
        let mut hit = false;
        let mut last_err = None;
        for node in &self.nodes {
            match node.engine.groom(table) {
                Ok(n) => {
                    total += n;
                    hit = true;
                }
                Err(e) => last_err = Some(e),
            }
        }
        match (hit, last_err) {
            (true, _) => Ok(total),
            (false, Some(e)) => Err(e),
            (false, None) => Ok(0),
        }
    }

    /// Snapshot-load an accelerated table (ACCEL_LOAD_TABLES body): pull
    /// all rows from DB2, ship them over the link, and enable replication.
    pub fn load_accelerated_table(&self, table: &ObjectName) -> Result<usize> {
        let meta = self.host.table_meta(table)?;
        if meta.kind != TableKind::Regular {
            return Err(Error::InvalidAcceleratorUse(format!(
                "{table} is accelerator-only and cannot be loaded from DB2"
            )));
        }
        if !self.accel().has_table(&meta.name) {
            return Err(Error::UndefinedObject(format!(
                "table {table} has not been added to the accelerator (ACCEL_ADD_TABLES)"
            )));
        }
        // Bring the replication watermark up to now *before* the snapshot,
        // so changes committed before the load are not double-applied.
        self.replicate_now()?;
        let rows = self.host.scan_all(&meta.name)?;
        // Every fleet node holds a full replica of accelerated host tables;
        // each copy pays its own link cost.
        let mut n = 0;
        for node in &self.nodes {
            let delivered = self.ship_rows_on(node, Direction::ToAccel, &meta.schema, &rows)?;
            node.engine.truncate(&meta.name)?;
            n = node.engine.load_committed(&meta.name, delivered)?;
            self.ship_on(node, Direction::ToHost, wire::ACK_FRAME)?;
        }
        self.host.set_accel_status(&meta.name, idaa_host::AccelStatus::Loaded)?;
        Ok(n)
    }

    /// Drain committed changes to the accelerator now.
    ///
    /// Delivery failures do not error: the replicator leaves the watermark
    /// on the last *acknowledged* batch and catches up on a later round, so
    /// a link outage can never fail a host commit. Only engine errors
    /// (always a bug) propagate.
    pub fn replicate_now(&self) -> Result<usize> {
        if self.nodes.iter().all(|n| n.engine.is_crashed()) {
            // Nothing can apply while every accelerator is down: leave the
            // backlog queued in the host log and let recovery catch up.
            for node in &self.nodes {
                node.health.force_offline();
            }
            return Ok(0);
        }
        let mut total = 0usize;
        let mut watermarks = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            if node.engine.is_crashed() {
                // This stream's backlog stays queued in the host log (the
                // log only truncates at the *minimum* watermark below) and
                // re-applies after recovery.
                node.health.force_offline();
                watermarks.push(node.replicator.lock().last_applied());
                continue;
            }
            if !self.faults.accel_unavailable.load(Ordering::Relaxed) {
                self.flush_pending_commits_on(node);
            }
            let mut rep = node.replicator.lock();
            let applied = rep.apply(&self.host, &node.engine, &node.link)?;
            total += applied;
            if rep.stalled() {
                if node.engine.is_crashed() {
                    // The accelerator crashed mid-apply (a crash site
                    // fired): the unacknowledged batch re-applies after
                    // recovery.
                    node.health.force_offline();
                } else {
                    node.health.record_failure();
                }
            }
            watermarks.push(rep.last_applied());
        }
        self.metrics.inc("replication.applied", total as u64);
        // Every node owns a replication stream, so the host log may only
        // truncate at the minimum watermark across all of them — a lagging
        // (or crashed) node must still find its backlog.
        if let Some(min) = watermarks.into_iter().min() {
            self.host.txns.truncate_log(min);
        }
        Ok(total)
    }

    /// Redeliver COMMIT decisions whose phase-2 message was lost; the
    /// accelerator holds those transactions prepared until the decision
    /// arrives.
    pub(crate) fn flush_pending_commits_on(&self, node: &AccelNode) {
        if node.engine.is_crashed() {
            // A crashed engine would silently drop the decision; keep it
            // queued until recovery re-materializes the prepared txn.
            return;
        }
        let mut pending = node.pending_commits.lock();
        pending.retain(|&txn| {
            // Through ship_on(), like every federation message, so
            // redelivery outcomes feed the health monitor; a failure keeps
            // the decision queued for the next round.
            if self.ship_on(node, Direction::ToAccel, wire::CONTROL_FRAME).is_ok() {
                node.engine.commit(txn);
                false
            } else {
                true
            }
        });
    }

    /// True when statements may be sent to one fleet node: its engine is
    /// not stopped, and its own health state machine has not declared it
    /// offline. While offline, a rate-limited probe (virtual clock) checks
    /// for recovery; a successful probe flushes queued commit decisions and
    /// lets replication catch up before reporting ready. A recovered node
    /// in a fleet additionally catches up its shard copies from a live
    /// replica.
    pub(crate) fn node_ready(&self, node: &AccelNode) -> bool {
        if self.faults.accel_unavailable.load(Ordering::Relaxed) {
            return false;
        }
        if node.engine.is_crashed() {
            // A crashed accelerator is unreachable no matter what the
            // failure streaks said when the crash point fired.
            node.health.force_offline();
        }
        if node.health.state() != HealthState::Offline {
            if self.fleet_active() && self.fleet.needs_catch_up(node.id) {
                // The node missed writes while unreachable: refresh its
                // shard copies from a live replica before serving reads.
                return self.catch_up_node(node).is_ok()
                    && !self.fleet.needs_catch_up(node.id);
            }
            return true;
        }
        if node.health.should_probe(node.link.now())
            && node.health.probe(&node.link, &self.retry)
        {
            if node.engine.is_crashed() && self.restart_node(node).is_err() {
                return false;
            }
            if self.fleet_active() && self.catch_up_node(node).is_err() {
                return false;
            }
            let _ = self.replicate_now();
            return true;
        }
        false
    }

    /// Force a recovery probe immediately, ignoring the probe interval
    /// (operator-initiated restart). On success the health returns to
    /// `Online`, a crashed engine restarts (checkpoint + log replay),
    /// queued commit decisions are redelivered, and replication catches
    /// up. Returns whether the accelerator is available again.
    pub fn recover(&self) -> bool {
        self.recover_node(0)
    }

    /// [`Idaa::accel_ready`], recording an "accel.restart" trace event when
    /// the readiness check drove a crash recovery.
    pub(crate) fn accel_ready_traced(&self, trace: &Trace) -> bool {
        self.node_ready_traced(self.node0(), trace)
    }

    /// [`Idaa::node_ready`], recording an "accel.restart" trace event when
    /// the readiness check drove a crash recovery.
    pub(crate) fn node_ready_traced(&self, node: &AccelNode, trace: &Trace) -> bool {
        let epoch_before = node.engine.epoch();
        let rebuilds_before = node.rebuilds.load(Ordering::Relaxed);
        let ready = self.node_ready(node);
        if trace.is_enabled() && node.engine.epoch() != epoch_before {
            let now = node.link.now();
            let id = trace.begin("accel.restart", now);
            trace.attr(id, "epoch", node.engine.epoch());
            if node.rebuilds.load(Ordering::Relaxed) != rebuilds_before {
                // This recovery discarded the corrupt media and re-shipped
                // the node's state from the host and replicas.
                trace.attr(id, "rebuilt", true);
            }
            if self.fleet_active() {
                trace.attr(id, "node", node.engine.identity());
            }
            if let Some(stats) = *node.last_restart.lock() {
                trace.attr(
                    id,
                    "replayed_bytes",
                    stats.checkpoint_bytes + stats.log_bytes_replayed,
                );
            }
            trace.end(id, now);
        }
        ready
    }

    /// Restart a crashed accelerator: rebuild state as checkpoint + log
    /// replay, charge the replay cost to the *virtual* clock, fence the
    /// statement tracker to the new recovery epoch, resolve re-materialized
    /// in-doubt transactions (presumed abort unless the coordinator holds
    /// a queued COMMIT decision), and redeliver queued decisions.
    pub(crate) fn restart_node(&self, node: &AccelNode) -> Result<()> {
        let before = Self::disk_stat_snapshot(&node.engine);
        // A rebuild that failed part-way (read fault, lost exchange) left
        // the node on fresh-but-empty media: booting it as-is would serve
        // silently empty tables, so the flag forces the rebuild to resume.
        let stats = if node.needs_rebuild.load(Ordering::Relaxed) {
            let r = self.rebuild_node(node);
            self.mirror_disk_stats(&node.engine, before);
            r?
        } else {
            match node.engine.restart() {
                Ok(stats) => {
                    self.mirror_disk_stats(&node.engine, before);
                    stats
                }
                Err(Error::StorageCorrupt(_)) => {
                    // Acknowledged durable state failed validation beyond
                    // local repair: discard the media wholesale and
                    // re-materialize the node from the host catalog and
                    // live replicas instead of serving damaged state.
                    let r = self.rebuild_node(node);
                    self.mirror_disk_stats(&node.engine, before);
                    r?
                }
                Err(e) => {
                    self.mirror_disk_stats(&node.engine, before);
                    return Err(e);
                }
            }
        };
        self.metrics.inc("accel.restarts", 1);
        self.metrics.inc(
            "accel.recovery.replayed_bytes",
            stats.checkpoint_bytes + stats.log_bytes_replayed,
        );
        // Recovery consumes virtual time only: a fixed restart latency
        // plus replaying checkpoint + log bytes at the configured
        // bandwidth. Never a wall-clock sleep. The cost lands on this
        // node's own link clock.
        let replayed = stats.checkpoint_bytes + stats.log_bytes_replayed;
        let replay_time = Duration::from_secs_f64(
            replayed as f64 / self.config.recovery_bytes_per_sec.max(1) as f64,
        );
        node.link.advance(self.config.recovery_fixed + replay_time);
        // Epoch fence: sequence state and acks from the previous
        // incarnation are stale.
        node.delivered.reset(stats.epoch);
        // Presumed abort: a prepared transaction whose COMMIT decision is
        // not queued on the coordinator was never decided — roll it back.
        // Queued decisions stay prepared until flush redelivers them.
        {
            let pending = node.pending_commits.lock();
            for txn in node.engine.in_doubt() {
                if !pending.contains(&txn) {
                    node.engine.abort(txn);
                }
            }
        }
        self.flush_pending_commits_on(node);
        *node.last_restart.lock() = Some(stats);
        Ok(())
    }

    /// Cumulative storage-fault counters of one engine, in the order of
    /// [`Idaa::DISK_METRIC_KEYS`].
    fn disk_stat_snapshot(engine: &AccelEngine) -> [u64; 5] {
        [
            engine.stats.disk_corruptions_detected.load(Ordering::Relaxed),
            engine.stats.disk_records_truncated.load(Ordering::Relaxed),
            engine.stats.disk_checkpoint_fallbacks.load(Ordering::Relaxed),
            engine.stats.disk_scrub_repairs.load(Ordering::Relaxed),
            engine.stats.disk_read_failures.load(Ordering::Relaxed),
        ]
    }

    /// Registry keys mirroring the engine-side storage-fault counters, in
    /// [`Idaa::disk_stat_snapshot`] order. The mirror is delta-based, so
    /// the registry totals reconcile exactly with the sum of the engines'
    /// own atomics (`tests/observability.rs`).
    const DISK_METRIC_KEYS: [&'static str; 5] = [
        "disk.corruptions_detected",
        "disk.records_truncated",
        "disk.checkpoint_fallbacks",
        "disk.scrub_repairs",
        "disk.read_failures",
    ];

    /// Mirror into the [`MetricsRegistry`] whatever the engine's storage
    /// counters gained since `before` was snapshotted.
    fn mirror_disk_stats(&self, engine: &AccelEngine, before: [u64; 5]) {
        let after = Self::disk_stat_snapshot(engine);
        for (i, key) in Self::DISK_METRIC_KEYS.iter().enumerate() {
            if after[i] > before[i] {
                self.metrics.inc(key, after[i] - before[i]);
            }
        }
    }

    /// Rebuild a node whose durable state is corrupt beyond local repair:
    /// discard the media wholesale, boot the engine empty, and
    /// re-materialize every accelerator-resident table — replicated host
    /// tables re-ship a snapshot from DB2 (the replication watermark
    /// fast-forwards past it), sharded AOTs recreate their shard
    /// definitions and refill from a live replica via the standard
    /// catch-up copy, and an unsharded AOT with no other copy is
    /// quarantined (-904 until reloaded) — its rows existed nowhere else,
    /// and a silently empty table is the one outcome recovery must never
    /// produce. Any failure part-way re-crashes the engine so the next
    /// recovery probe resumes the rebuild rather than serving a
    /// half-rebuilt node.
    fn rebuild_node(&self, node: &AccelNode) -> Result<RestartStats> {
        node.needs_rebuild.store(true, Ordering::Relaxed);
        node.engine.durable().reset();
        let stats = node.engine.restart()?;
        let bytes_before = node.link.metrics().bytes_to_accel;
        let rebuild = || -> Result<()> {
            // The DB2 catalog iterates in name order, so recreation (and
            // every wire frame it ships) is deterministic.
            for name in self.host.table_names() {
                let meta = self.host.table_meta(&name)?;
                match meta.kind {
                    TableKind::Regular => {
                        if meta.accel_status == idaa_host::AccelStatus::NotAccelerated {
                            continue;
                        }
                        self.ship_ddl_on(node, &format!("ADD TABLE {}", meta.name))?;
                        node.engine.create_table(
                            &meta.name,
                            meta.schema.clone(),
                            &meta.distribute_by,
                        )?;
                        if meta.accel_status == idaa_host::AccelStatus::Loaded {
                            let rows = self.host.scan_all(&meta.name)?;
                            let delivered =
                                self.ship_rows_on(node, Direction::ToAccel, &meta.schema, &rows)?;
                            node.engine.load_committed(&meta.name, delivered)?;
                            self.ship_on(node, Direction::ToHost, wire::ACK_FRAME)?;
                        }
                    }
                    TableKind::AcceleratorOnly => {
                        if self.fleet.is_sharded(&meta.name) {
                            for s in 0..self.fleet.shards {
                                let owners = self.fleet.owners(s);
                                if !owners.contains(&node.id) {
                                    continue;
                                }
                                let st = crate::fleet::shard_table(&meta.name, s);
                                node.engine.create_table(
                                    &st,
                                    meta.schema.clone(),
                                    &meta.distribute_by,
                                )?;
                                if !owners.iter().any(|&o| o != node.id) {
                                    // This node was the shard's only owner:
                                    // there is no replica to copy from.
                                    node.engine.quarantine_table(&st)?;
                                }
                            }
                            // Shard contents arrive through the standard
                            // metered catch-up copy from a live replica.
                            self.fleet.mark_catch_up(node.id);
                        } else {
                            node.engine.create_table(
                                &meta.name,
                                meta.schema.clone(),
                                &meta.distribute_by,
                            )?;
                            node.engine.quarantine_table(&meta.name)?;
                        }
                    }
                }
            }
            // The snapshots above already contain every committed change:
            // replaying the backlog would double-apply it.
            node.replicator.lock().fast_forward(self.host.txns.current_lsn());
            Ok(())
        };
        if let Err(e) = rebuild() {
            // A half-rebuilt node must never serve: crash it so the next
            // recovery probe finds `needs_rebuild` still set and restarts
            // the rebuild from fresh media.
            node.engine.crash();
            return Err(e);
        }
        self.metrics.inc("disk.node_rebuilds", 1);
        self.metrics
            .inc("disk.repair.bytes", node.link.metrics().bytes_to_accel - bytes_before);
        node.rebuilds.fetch_add(1, Ordering::Relaxed);
        node.needs_rebuild.store(false, Ordering::Relaxed);
        Ok(stats)
    }

    /// The error a statement gets when it requires an unavailable
    /// accelerator: -904 when the accelerator is administratively stopped
    /// or crashed (recovery pending), -30081 when communication with it
    /// failed.
    pub(crate) fn unavailable_error(&self) -> Error {
        if self.accel().is_crashed() {
            Error::ResourceUnavailable(
                "the accelerator crashed and is recovering; statements requiring it \
                 cannot run"
                    .into(),
            )
        } else if self.faults.accel_unavailable.load(Ordering::Relaxed) {
            Error::ResourceUnavailable(
                "the accelerator is stopped; statements requiring it cannot run".into(),
            )
        } else {
            Error::LinkFailure(
                "communication with the accelerator failed and the statement requires it"
                    .into(),
            )
        }
    }

    // -- SQL entry points ---------------------------------------------------

    /// Execute one SQL statement.
    pub fn execute(&self, session: &mut Session, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(session, &stmt)
    }

    /// Execute a semicolon-separated script, stopping at the first error.
    pub fn execute_script(&self, session: &mut Session, sql: &str) -> Result<Vec<ExecOutcome>> {
        parse_statements(sql)?
            .iter()
            .map(|s| self.execute_stmt(session, s))
            .collect()
    }

    /// Execute a query and return its rows (errors if the statement does
    /// not produce a result set).
    pub fn query(&self, session: &mut Session, sql: &str) -> Result<Rows> {
        match self.execute(session, sql)?.payload {
            Payload::Rows(r) => Ok(r),
            other => Err(Error::TypeMismatch(format!(
                "statement did not produce a result set ({other:?})"
            ))),
        }
    }

    /// Execute one SQL statement with `?` parameter markers bound to
    /// `params` (prepared-statement style).
    pub fn execute_with_params(
        &self,
        session: &mut Session,
        sql: &str,
        params: &[Value],
    ) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        let bound = idaa_sql::params::bind_statement(&stmt, params)?;
        self.execute_stmt(session, &bound)
    }

    /// Execute an already-parsed statement.
    pub fn execute_stmt(&self, session: &mut Session, stmt: &Statement) -> Result<ExecOutcome> {
        self.execute_stmt_queued(session, stmt, None)
    }

    /// [`Idaa::execute_stmt`] with optional workload-manager context: when
    /// the server admits a queued statement it passes the admission facts
    /// here so the root span carries a "queue" event.
    pub(crate) fn execute_stmt_queued(
        &self,
        session: &mut Session,
        stmt: &Statement,
        queue: Option<&QueueInfo>,
    ) -> Result<ExecOutcome> {
        session.statements += 1;
        // Only the outermost statement owns the root "statement" span;
        // statements executed re-entrantly (procedures, EXPLAIN ANALYZE)
        // add their spans under whatever is already open.
        let trace = session.trace.clone();
        let root = if trace.is_enabled() && !trace.in_statement() {
            let id = trace.begin("statement", self.link().now());
            trace.attr(id, "sql", stmt);
            // Parsing consumes no virtual time — a zero-duration event.
            trace.event("parse", &[], self.link().now());
            if let Some(q) = queue {
                // Admission is also instantaneous *at* execution: the wait
                // already elapsed on the virtual clock while predecessors
                // ran, so the event only records it.
                let queued_us = q.queued.as_micros() as u64;
                trace.event(
                    "queue",
                    &[
                        ("seat", &q.seat),
                        ("priority", &q.priority),
                        ("queued_us", &queued_us),
                        ("round", &q.round),
                    ],
                    self.link().now(),
                );
            }
            Some(id)
        } else {
            None
        };
        let result = self.dispatch(session, stmt);
        match &result {
            Ok(_) => {
                // Autocommit unless inside an explicit transaction.
                if !session.explicit_txn
                    && !matches!(stmt, Statement::Begin | Statement::Commit | Statement::Rollback)
                {
                    if let Err(e) = self.commit_session(session) {
                        self.metrics.inc("statements.total", 1);
                        self.metrics.inc(&format!("errors.sqlcode.{}", e.sqlcode()), 1);
                        self.finish_statement_trace(session, stmt, root, Some(&e));
                        return Err(e);
                    }
                }
            }
            Err(_) => {
                // Statement-level atomicity in autocommit mode: roll the
                // implicit transaction back.
                if !session.explicit_txn && session.txn.is_some() {
                    self.rollback_session(session)?;
                }
            }
        }
        self.metrics.inc("statements.total", 1);
        match &result {
            Ok(out) => {
                let route = match out.route {
                    Route::Host => "statements.route.host",
                    Route::Accelerator => "statements.route.accel",
                };
                self.metrics.inc(route, 1);
                if let Some(id) = root {
                    trace.attr(id, "route", format!("{:?}", out.route));
                }
                self.finish_statement_trace(session, stmt, root, None);
            }
            Err(e) => {
                self.metrics.inc(&format!("errors.sqlcode.{}", e.sqlcode()), 1);
                self.finish_statement_trace(session, stmt, root, Some(e));
            }
        }
        result
    }

    /// Close a root "statement" span and deliver it to the trace sink.
    fn finish_statement_trace(
        &self,
        session: &Session,
        stmt: &Statement,
        root: Option<SpanId>,
        err: Option<&Error>,
    ) {
        let Some(id) = root else { return };
        if let Some(e) = err {
            session.trace.attr(id, "sqlcode", e.sqlcode());
        }
        if let Some(node) = session.trace.finish(id, self.link().now()) {
            self.tracer.record(StatementTrace {
                session: session.id,
                sql: stmt.to_string(),
                root: node,
            });
        }
    }

    /// Record a zero-duration "transfer" trace event (one link message)
    /// against a specific fleet node's link; in a fleet the event also
    /// carries the node identity so per-shard transfer breakdowns fall out
    /// of the span tree.
    pub(crate) fn transfer_event_on(
        &self,
        node: &AccelNode,
        trace: &Trace,
        direction: Direction,
        kind: &str,
        bytes: usize,
        err: Option<String>,
    ) {
        if !trace.is_enabled() {
            return;
        }
        let now = node.link.now();
        let id = trace.begin("transfer", now);
        let dir = match direction {
            Direction::ToAccel => "to_accel",
            Direction::ToHost => "to_host",
        };
        trace.attr(id, "dir", dir);
        trace.attr(id, "kind", kind);
        trace.attr(id, "bytes", bytes);
        if self.fleet_active() {
            trace.attr(id, "node", node.engine.identity());
        }
        if let Some(e) = err {
            trace.attr(id, "err", e);
        }
        trace.end(id, now);
    }

    /// [`Idaa::ship`] with a "transfer" trace event for the outcome.
    fn ship_traced(
        &self,
        trace: &Trace,
        direction: Direction,
        kind: &str,
        bytes: usize,
    ) -> Result<Duration> {
        self.ship_traced_on(self.node0(), trace, direction, kind, bytes)
    }

    /// [`Idaa::ship_traced`] against a specific fleet node.
    pub(crate) fn ship_traced_on(
        &self,
        node: &AccelNode,
        trace: &Trace,
        direction: Direction,
        kind: &str,
        bytes: usize,
    ) -> Result<Duration> {
        match self.ship_on(node, direction, bytes) {
            Ok(d) => {
                self.transfer_event_on(node, trace, direction, kind, bytes, None);
                Ok(d)
            }
            Err(e) => {
                self.transfer_event_on(node, trace, direction, kind, bytes, Some(e.to_string()));
                Err(e)
            }
        }
    }

    /// [`Idaa::ship_rows`] with one "transfer" trace event per encoded
    /// wire frame (kind `frame`, sized at the encoded frame length).
    fn ship_rows_traced(
        &self,
        trace: &Trace,
        direction: Direction,
        schema: &idaa_common::Schema,
        rows: &[Row],
    ) -> Result<Vec<Row>> {
        self.ship_rows_traced_on(self.node0(), trace, direction, schema, rows)
    }

    /// [`Idaa::ship_rows_traced`] against a specific fleet node.
    pub(crate) fn ship_rows_traced_on(
        &self,
        node: &AccelNode,
        trace: &Trace,
        direction: Direction,
        schema: &idaa_common::Schema,
        rows: &[Row],
    ) -> Result<Vec<Row>> {
        let mut delivered = Vec::with_capacity(rows.len());
        for frame in wire::encode_frames(schema, rows) {
            match self.ship_frame_on(node, direction, &frame) {
                Ok(_) => {
                    self.transfer_event_on(node, trace, direction, "frame", frame.len(), None)
                }
                Err(e) => {
                    self.transfer_event_on(
                        node,
                        trace,
                        direction,
                        "frame",
                        frame.len(),
                        Some(e.to_string()),
                    );
                    return Err(e);
                }
            }
            delivered.extend(wire::decode_rows(&frame, schema)?);
        }
        Ok(delivered)
    }

    fn dispatch(&self, session: &mut Session, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Begin => {
                if session.explicit_txn {
                    return Err(Error::TransactionState("transaction already open".into()));
                }
                session.explicit_txn = true;
                self.ensure_txn(session);
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Commit => {
                // A failed COMMIT ends the transaction too (everything was
                // rolled back) — the session must not stay "in transaction".
                let result = self.commit_session(session);
                session.explicit_txn = false;
                result?;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Rollback => {
                self.rollback_session(session)?;
                session.explicit_txn = false;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::SetQueryAcceleration(mode) => {
                session.acceleration = *mode;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::SetCurrentSchema(s) => {
                if s != &self.config.default_schema {
                    return Err(Error::Unsupported(
                        "per-session CURRENT SCHEMA is not supported; configure the \
                         system default instead"
                            .into(),
                    ));
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::CreateTable { name, columns, in_accelerator, distribute_by } => {
                let schema = idaa_common::Schema::new(
                    columns
                        .iter()
                        .map(|c| idaa_common::ColumnDef {
                            name: c.name.clone(),
                            data_type: c.data_type,
                            not_null: c.not_null,
                        })
                        .collect(),
                )?;
                let kind = if *in_accelerator {
                    TableKind::AcceleratorOnly
                } else {
                    TableKind::Regular
                };
                self.host.create_table(
                    &session.user,
                    name,
                    schema.clone(),
                    kind,
                    distribute_by.clone(),
                )?;
                if *in_accelerator {
                    // Nickname proxy exists in DB2; actual table lives on
                    // the accelerator.
                    let resolved = name.resolve(&self.config.default_schema);
                    if self.fleet_active() {
                        // Sharded placement: every owning node gets its
                        // shard's physical table.
                        if let Err(e) = self.fleet_create_sharded(
                            &resolved,
                            &schema,
                            distribute_by,
                            &stmt.to_string(),
                        ) {
                            let _ = self.host.drop_table(SYSADM, name);
                            return Err(e);
                        }
                        return Ok(ExecOutcome::accel(Payload::None));
                    }
                    if let Err(e) = self.ship_ddl(&stmt.to_string()) {
                        // DDL never reached the accelerator: undo the
                        // catalog entry so both sides stay consistent.
                        let _ = self.host.drop_table(SYSADM, name);
                        return Err(e);
                    }
                    if let Err(e) = self.accel().create_table(&resolved, schema, distribute_by) {
                        // Keep catalog and accelerator consistent.
                        let _ = self.host.drop_table(SYSADM, name);
                        return Err(e);
                    }
                    return Ok(ExecOutcome::accel(Payload::None));
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::DropTable { name } => {
                let meta = self.host.table_meta(name)?;
                let on_accel = meta.kind == TableKind::AcceleratorOnly
                    || meta.accel_status != idaa_host::AccelStatus::NotAccelerated;
                self.host.drop_table(&session.user, name)?;
                if on_accel {
                    // Best effort: the DB2 catalog entry is gone either
                    // way; an unreachable accelerator cleans up its copy
                    // when the DDL is redelivered on recovery.
                    if self.fleet_active() {
                        self.fleet_drop_table(&meta.name, &stmt.to_string());
                        return Ok(ExecOutcome::accel(Payload::None));
                    }
                    let _ = self.ship_ddl(&stmt.to_string());
                    let _ = self.accel().drop_table(&meta.name);
                    return Ok(ExecOutcome::accel(Payload::None));
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::CreateIndex { name, table, columns } => {
                self.host.create_index(&session.user, name, table, columns.clone())?;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Grant { privileges, object, grantees } => {
                let object = object.resolve(&self.config.default_schema);
                let mut privs = self.host.privileges.write();
                for g in grantees {
                    privs.grant(&session.user, g, &object, privileges)?;
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Revoke { privileges, object, grantees } => {
                let object = object.resolve(&self.config.default_schema);
                let mut privs = self.host.privileges.write();
                for g in grantees {
                    privs.revoke(&session.user, g, &object, privileges)?;
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::ShowWorkload => {
                Ok(ExecOutcome::host(Payload::Rows(self.workload_rows())))
            }
            Statement::Call { procedure, args } => self.dispatch_call(session, procedure, args),
            Statement::Explain { analyze: false, stmt } => self.dispatch_explain(session, stmt),
            Statement::Explain { analyze: true, stmt } => {
                self.dispatch_explain_analyze(session, stmt)
            }
            Statement::Query(q) => self.dispatch_query(session, q),
            Statement::Insert { table, columns, source } => {
                self.dispatch_insert(session, table, columns, source)
            }
            Statement::Update { table, assignments, filter } => {
                match router::route_dml(&self.host, table)? {
                    Route::Host => {
                        let txn = self.ensure_txn(session);
                        let n = self.host.update_where(
                            &session.user,
                            txn,
                            table,
                            assignments,
                            filter.as_ref(),
                        )?;
                        Ok(ExecOutcome::host(Payload::Count(n)))
                    }
                    Route::Accelerator => {
                        let table_r = table.resolve(&self.config.default_schema);
                        self.host.privileges.read().check(
                            &session.user,
                            &table_r,
                            Privilege::Update,
                        )?;
                        if self.fleet_active() && self.fleet.is_sharded(&table_r) {
                            let n = self.fleet_dml_each_shard(
                                session,
                                &table_r,
                                stmt.to_string().len() + wire::CONTROL_FRAME,
                                |node, txn, st| {
                                    node.engine.update_where(txn, st, assignments, filter.as_ref())
                                },
                            )?;
                            return Ok(ExecOutcome::accel(Payload::Count(n)));
                        }
                        let txn = self.enlist_accel(session)?;
                        let n = self.accel_exchange(
                            session,
                            stmt.to_string().len() + wire::CONTROL_FRAME,
                            || self.accel().update_where(txn, &table_r, assignments, filter.as_ref()),
                            |_| ReplyPayload::Control(wire::ACK_FRAME),
                        )?;
                        Ok(ExecOutcome::accel(Payload::Count(n)))
                    }
                }
            }
            Statement::Delete { table, filter } => {
                match router::route_dml(&self.host, table)? {
                    Route::Host => {
                        let txn = self.ensure_txn(session);
                        let n =
                            self.host.delete_where(&session.user, txn, table, filter.as_ref())?;
                        Ok(ExecOutcome::host(Payload::Count(n)))
                    }
                    Route::Accelerator => {
                        let table_r = table.resolve(&self.config.default_schema);
                        self.host.privileges.read().check(
                            &session.user,
                            &table_r,
                            Privilege::Delete,
                        )?;
                        if self.fleet_active() && self.fleet.is_sharded(&table_r) {
                            let n = self.fleet_dml_each_shard(
                                session,
                                &table_r,
                                stmt.to_string().len() + wire::CONTROL_FRAME,
                                |node, txn, st| {
                                    node.engine.delete_where(txn, st, filter.as_ref())
                                },
                            )?;
                            return Ok(ExecOutcome::accel(Payload::Count(n)));
                        }
                        let txn = self.enlist_accel(session)?;
                        let n = self.accel_exchange(
                            session,
                            stmt.to_string().len() + wire::CONTROL_FRAME,
                            || self.accel().delete_where(txn, &table_r, filter.as_ref()),
                            |_| ReplyPayload::Control(wire::ACK_FRAME),
                        )?;
                        Ok(ExecOutcome::accel(Payload::Count(n)))
                    }
                }
            }
        }
    }

    fn dispatch_call(
        &self,
        session: &mut Session,
        procedure: &ObjectName,
        args: &[Expr],
    ) -> Result<ExecOutcome> {
        let name = match procedure.schema {
            Some(_) => procedure.clone(),
            // Procedures default to SYSPROC, then the default schema.
            None => {
                let sysproc = ObjectName::qualified("SYSPROC", &procedure.name);
                if self.procedures.read().contains_key(&sysproc) {
                    sysproc
                } else {
                    procedure.resolve(&self.config.default_schema)
                }
            }
        };
        let proc = self
            .procedures
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| Error::UndefinedObject(format!("procedure {name} is not defined")))?;
        // Governance: EXECUTE on the procedure object, checked on DB2.
        self.host.privileges.read().check(&session.user, &name, Privilege::Execute)?;
        let arg_values: Vec<Value> = args
            .iter()
            .map(|e| {
                let resolver = FlatResolver::new(vec![]);
                eval(&bind(e, &resolver)?, &[])
            })
            .collect::<Result<_>>()?;
        let rows = proc.execute(self, session, &arg_values)?;
        Ok(ExecOutcome::host(Payload::Rows(rows)))
    }

    /// `EXPLAIN`: plan the statement, report the routing decision and the
    /// operator tree — without executing anything.
    fn dispatch_explain(&self, session: &mut Session, inner: &Statement) -> Result<ExecOutcome> {
        let (plan, route_desc) = match inner {
            Statement::Query(q) => {
                let plan = plan_query(q, &*self.host)?;
                let tables: Vec<ObjectName> = plan
                    .tables()
                    .iter()
                    .map(|t| t.resolve(&self.config.default_schema))
                    .collect();
                let mut mix = router::classify(&self.host, &tables)?;
                mix.indexed_point = router::is_indexed_point(&self.host, &plan);
                let (route, reason) =
                    router::route_query_with_reason(&mix, session.acceleration)?;
                let mut desc = format!(
                    "ROUTE: {route:?} (CURRENT QUERY ACCELERATION = {})\nREASON: {reason}",
                    session.acceleration
                );
                // For offloaded queries, also report which accelerator
                // pipeline would run — vectorized kernels, fused
                // aggregation, or the interpreted fallback.
                if route == router::Route::Accelerator {
                    if let Ok(pipeline) = self.accel().pipeline_of(q) {
                        desc.push_str(&format!("\nPIPELINE: {pipeline}"));
                    }
                }
                (plan, desc)
            }
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => {
                let route = router::route_dml(&self.host, table)?;
                let desc = format!("ROUTE: {route:?} (DML target {table})");
                match inner {
                    Statement::Insert { source: InsertSource::Query(q), .. } => {
                        (plan_query(q, &*self.host)?, desc)
                    }
                    _ => {
                        // No query plan to show for VALUES/UPDATE/DELETE —
                        // report the route only.
                        let lines = vec![vec![Value::Varchar(desc)]];
                        return Ok(ExecOutcome::host(Payload::Rows(Rows::new(
                            explain_schema(),
                            lines,
                        ))));
                    }
                }
            }
            other => {
                return Err(Error::Unsupported(format!(
                    "EXPLAIN is not supported for this statement: {other}"
                )))
            }
        };
        let mut lines: Vec<Row> = route_desc
            .lines()
            .map(|l| vec![Value::Varchar(l.to_string())])
            .collect();
        for l in plan.explain().lines() {
            lines.push(vec![Value::Varchar(l.to_string())]);
        }
        Ok(ExecOutcome::host(Payload::Rows(Rows::new(explain_schema(), lines))))
    }

    /// `EXPLAIN ANALYZE`: *execute* the statement (under a span tree even
    /// when session tracing is off), then report the plan followed by the
    /// executed spans — per-operator row counts and virtual-time costs.
    fn dispatch_explain_analyze(
        &self,
        session: &mut Session,
        inner: &Statement,
    ) -> Result<ExecOutcome> {
        // The report needs spans even when the session isn't tracing:
        // borrow an enabled trace for the duration of the inner statement.
        let borrowed = if session.trace.is_enabled() {
            None
        } else {
            Some(std::mem::replace(&mut session.trace, Trace::enabled()))
        };
        let trace = session.trace.clone();
        let span = trace.begin("analyze", self.link().now());
        let result = self.dispatch(session, inner);
        let analyzed = trace.finish(span, self.link().now());
        if let Some(original) = borrowed {
            session.trace = original;
        }
        let outcome = result?;
        let mut lines: Vec<Row> = vec![vec![Value::Varchar(format!(
            "ROUTE: {:?} (CURRENT QUERY ACCELERATION = {})",
            outcome.route, session.acceleration
        ))]];
        // Show the plan for the query shape, as plain EXPLAIN would.
        let query = match inner {
            Statement::Query(q) => Some(q.as_ref()),
            Statement::Insert { source: InsertSource::Query(q), .. } => Some(q.as_ref()),
            _ => None,
        };
        if let Some(q) = query {
            for l in plan_query(q, &*self.host)?.explain().lines() {
                lines.push(vec![Value::Varchar(l.to_string())]);
            }
        }
        lines.push(vec![Value::Varchar("-- ANALYZE --".into())]);
        if let Some(node) = analyzed {
            for child in &node.children {
                for l in child.render().lines() {
                    lines.push(vec![Value::Varchar(l.to_string())]);
                }
            }
        }
        Ok(ExecOutcome {
            route: outcome.route,
            payload: Payload::Rows(Rows::new(explain_schema(), lines)),
        })
    }

    fn dispatch_query(&self, session: &mut Session, q: &Query) -> Result<ExecOutcome> {
        let trace = session.trace.clone();
        let plan = plan_query(q, &*self.host)?;
        let tables: Vec<ObjectName> = plan
            .tables()
            .iter()
            .map(|t| t.resolve(&self.config.default_schema))
            .collect();
        let mut mix = router::classify(&self.host, &tables)?;
        mix.indexed_point = router::is_indexed_point(&self.host, &plan);
        let (mut route, mut reason) =
            router::route_query_with_reason(&mix, session.acceleration)?;
        // Accelerator unavailable (stopped, or declared offline after
        // consecutive communication failures): fall back to DB2 when the
        // data still lives there; fail when only the accelerator could
        // answer.
        let must_accelerate = router::must_accelerate(&mix, session.acceleration);
        // Fleet readiness is judged per shard inside the scatter — only the
        // single-accelerator path gates on node 0 here.
        if route == Route::Accelerator
            && !self.fleet_active()
            && !self.accel_ready_traced(&trace)
        {
            if must_accelerate {
                return Err(self.unavailable_error());
            }
            route = Route::Host;
            reason = "accelerator unavailable; falling back to DB2";
        }
        self.route_event(&trace, route, reason, session);
        if route == Route::Accelerator {
            // Governance on DB2 before delegation — a failover must never
            // mask a privilege error.
            {
                let privs = self.host.privileges.read();
                for t in &tables {
                    if t.name == "SYSDUMMY1" {
                        continue;
                    }
                    privs.check(&session.user, t, Privilege::Select)?;
                    self.privilege_event(&trace, t, "SELECT");
                }
            }
            let attempt = if self.fleet_active() {
                self.fleet_query(session, q, &tables)
            } else {
                self.accel_query(session, q)
            };
            match attempt {
                Ok(rows) => return Ok(ExecOutcome::accel(Payload::Rows(rows))),
                // Communication failed mid-statement: like DB2, re-execute
                // the read-only query locally when the data allows it.
                Err(Error::LinkFailure(_)) if !must_accelerate => {
                    self.route_event(
                        &trace,
                        Route::Host,
                        "communication failed mid-statement; re-executing locally",
                        session,
                    );
                }
                // A fleet judges readiness per shard: losing every replica
                // of a shard surfaces here, and the host still holds the
                // data unless the query must accelerate.
                Err(Error::ResourceUnavailable(_)) if self.fleet_active() && !must_accelerate => {
                    self.route_event(
                        &trace,
                        Route::Host,
                        "accelerator unavailable; falling back to DB2",
                        session,
                    );
                }
                Err(e) => return Err(e),
            }
        }
        let txn = self.ensure_txn(session);
        let rows = if trace.is_enabled() {
            let now = self.link().now();
            let span = trace.begin("host.exec", now);
            let profiled = self.host.query_profiled(&session.user, txn, q);
            if let Ok((_, plan, profile)) = &profiled {
                self.emit_plan_spans(&trace, plan, profile);
            }
            trace.end(span, self.link().now());
            profiled?.0
        } else {
            self.host.query(&session.user, txn, q)?
        };
        Ok(ExecOutcome::host(Payload::Rows(rows)))
    }

    /// Record the routing decision (and its reason) as a trace event.
    fn route_event(&self, trace: &Trace, route: Route, reason: &str, session: &Session) {
        if !trace.is_enabled() {
            return;
        }
        let now = self.link().now();
        let id = trace.begin("route", now);
        trace.attr(id, "route", format!("{route:?}"));
        trace.attr(id, "reason", reason);
        trace.attr(id, "mode", session.acceleration);
        trace.end(id, now);
    }

    /// Record a passed host-side privilege check as a trace event.
    fn privilege_event(&self, trace: &Trace, object: &ObjectName, privilege: &str) {
        if !trace.is_enabled() {
            return;
        }
        let now = self.link().now();
        let id = trace.begin("privilege", now);
        trace.attr(id, "object", object);
        trace.attr(id, "priv", privilege);
        trace.end(id, now);
    }

    /// Mirror an executed plan (with its row-count profile) into the trace
    /// as nested zero-duration "op" spans. Operators consume no virtual
    /// time — only link transfers do — so only the tree shape and `rows`
    /// attributes carry information. A node without `rows` was fused into
    /// its parent.
    fn emit_plan_spans(&self, trace: &Trace, plan: &Plan, profile: &PlanProfile) {
        self.emit_plan_spans_at(trace, plan, profile, true);
    }

    fn emit_plan_spans_at(&self, trace: &Trace, plan: &Plan, profile: &PlanProfile, root: bool) {
        let now = self.link().now();
        let id = trace.begin("op", now);
        trace.attr(id, "op", plan.label());
        if root {
            // Statement-level: did the compiled-plan cache serve this tree?
            if let Some(hit) = profile.cache_hit() {
                trace.attr(id, "cache", if hit { "hit" } else { "miss" });
            }
        }
        match profile.rows_out(plan) {
            Some(rows) => trace.attr(id, "rows", rows),
            None => trace.attr(id, "fused", "true"),
        }
        if let Some(batches) = profile.vectorized_batches(plan) {
            trace.attr(id, "kernel", "vectorized");
            trace.attr(id, "batches", batches);
        }
        if let Some(skipped) = profile.bloom_skipped(plan) {
            trace.attr(id, "bloom_skipped", skipped);
        }
        for child in plan.children() {
            self.emit_plan_spans_at(trace, child, profile, false);
        }
        trace.end(id, now);
    }

    /// Run a routed query on the accelerator: ship the statement, execute,
    /// and pay for the result set's trip back to DB2 as an encoded wire
    /// frame. The result handed to the caller is decoded from that frame.
    pub(crate) fn accel_query(&self, session: &mut Session, q: &Query) -> Result<Rows> {
        let txn = self.accel_query_txn(session);
        let trace = session.trace.clone();
        let (rows, frame) = self.accel_exchange_inner(
            session,
            q.to_string().len() + wire::CONTROL_FRAME,
            || {
                if trace.is_enabled() {
                    let (rows, plan, profile) = self.accel().query_profiled(txn, q)?;
                    self.emit_plan_spans(&trace, &plan, &profile);
                    Ok(rows)
                } else {
                    self.accel().query(txn, q)
                }
            },
            |r: &Rows| ReplyPayload::Frame(wire::encode_frame(&r.schema, &r.rows)),
        )?;
        let frame = frame.expect("row replies travel as frames");
        let decoded = wire::decode_rows(&frame, &rows.schema)?;
        Ok(Rows::new(rows.schema, decoded))
    }

    fn dispatch_insert(
        &self,
        session: &mut Session,
        table: &ObjectName,
        columns: &[String],
        source: &InsertSource,
    ) -> Result<ExecOutcome> {
        let target = table.resolve(&self.config.default_schema);
        let meta = self.host.table_meta(&target)?;
        // Build full-width rows from VALUES, or run the source query.
        let rows: Vec<Row> = match source {
            InsertSource::Values(value_rows) => {
                let resolver = FlatResolver::new(vec![]);
                let mut out = Vec::with_capacity(value_rows.len());
                for exprs in value_rows {
                    let vals: Vec<Value> = exprs
                        .iter()
                        .map(|e| eval(&bind(e, &resolver)?, &[]))
                        .collect::<Result<_>>()?;
                    out.push(self.widen_row(&meta.schema, columns, vals)?);
                }
                out
            }
            InsertSource::Query(src_q) => {
                // Pushdown path — the paper's contribution: an AOT target
                // whose source tables all exist on the accelerator executes
                // entirely there; only the statement text crosses the link.
                // In a fleet the source shards live on different nodes, so
                // the source query runs through the scatter path below and
                // the insert re-shards its result.
                if meta.kind == TableKind::AcceleratorOnly && !self.fleet_active() {
                    let plan = plan_query(src_q, &*self.host)?;
                    let src_tables: Vec<ObjectName> = plan
                        .tables()
                        .iter()
                        .map(|t| t.resolve(&self.config.default_schema))
                        .collect();
                    let mix = router::classify(&self.host, &src_tables)?;
                    if mix.host_only == 0 {
                        let privs = self.host.privileges.read();
                        privs.check(&session.user, &target, Privilege::Insert)?;
                        for t in &src_tables {
                            if t.name == "SYSDUMMY1" {
                                continue;
                            }
                            privs.check(&session.user, t, Privilege::Select)?;
                        }
                        drop(privs);
                        let txn = self.enlist_accel(session)?;
                        let sql = format!("INSERT INTO {target} {src_q}");
                        let n = self.accel_exchange(
                            session,
                            sql.len() + wire::CONTROL_FRAME,
                            || {
                                let result = self.accel().query(txn, src_q)?;
                                let rows: Vec<Row> = result
                                    .rows
                                    .into_iter()
                                    .map(|r| self.widen_row(&meta.schema, columns, r))
                                    .collect::<Result<_>>()?;
                                self.accel().insert_rows(txn, &target, rows)
                            },
                            |_| ReplyPayload::Control(wire::ACK_FRAME),
                        )?;
                        return Ok(ExecOutcome::accel(Payload::Count(n)));
                    }
                }
                // Otherwise the source runs wherever routing says; result
                // rows materialize on the host side and pay link cost when
                // they came from the accelerator.
                let outcome = self.dispatch_query(session, src_q)?;
                let result = match outcome.payload {
                    Payload::Rows(r) => r,
                    _ => unreachable!("queries produce rows"),
                };
                result
                    .rows
                    .into_iter()
                    .map(|r| self.widen_row(&meta.schema, columns, r))
                    .collect::<Result<_>>()?
            }
        };
        match meta.kind {
            TableKind::Regular => {
                let txn = self.ensure_txn(session);
                let n = self.host.insert_rows(&session.user, txn, &target, rows)?;
                Ok(ExecOutcome::host(Payload::Count(n)))
            }
            TableKind::AcceleratorOnly => {
                self.host.privileges.read().check(&session.user, &target, Privilege::Insert)?;
                if self.fleet_active() && self.fleet.is_sharded(&target) {
                    let n = self.fleet_insert_rows(
                        session,
                        &target,
                        &meta.schema,
                        &meta.distribute_by,
                        rows,
                    )?;
                    return Ok(ExecOutcome::accel(Payload::Count(n)));
                }
                let txn = self.enlist_accel(session)?;
                let trace = session.trace.clone();
                // Rows originate on the host side (VALUES literals or a
                // host-executed source query): they cross the link as
                // encoded frames and the accelerator inserts what it
                // decodes.
                let delivered =
                    self.ship_rows_traced(&trace, Direction::ToAccel, &meta.schema, &rows)?;
                let n = self.accel().insert_rows(txn, &target, delivered)?;
                self.ship_traced(&trace, Direction::ToHost, "control", wire::ACK_FRAME)?;
                Ok(ExecOutcome::accel(Payload::Count(n)))
            }
        }
    }

    /// Expand an explicit column list to a full-width row (missing columns
    /// become NULL, which `check_row` then validates).
    fn widen_row(
        &self,
        schema: &idaa_common::Schema,
        columns: &[String],
        values: Vec<Value>,
    ) -> Result<Row> {
        if columns.is_empty() {
            return Ok(values);
        }
        if columns.len() != values.len() {
            return Err(Error::Constraint(format!(
                "INSERT specifies {} columns but {} values",
                columns.len(),
                values.len()
            )));
        }
        let mut row = vec![Value::Null; schema.len()];
        for (col, v) in columns.iter().zip(values) {
            row[schema.index_of(col)?] = v;
        }
        Ok(row)
    }

    // -- transactions ---------------------------------------------------------

    fn ensure_txn(&self, session: &mut Session) -> TxnId {
        match session.txn {
            Some(t) => t,
            None => {
                let t = self.host.begin();
                session.txn = Some(t);
                t
            }
        }
    }

    /// Transaction id used for a read-only accelerator query: the session's
    /// transaction when one is open and enlisted (own-writes visibility),
    /// else 0 (fresh snapshot).
    fn accel_query_txn(&self, session: &mut Session) -> TxnId {
        match session.txn {
            Some(t) if self.host.txns.accelerator_enlisted(t) => t,
            _ => 0,
        }
    }

    /// Transaction id for a read on one fleet node: the session's
    /// transaction when that node is enlisted in it, else 0.
    pub(crate) fn node_query_txn(&self, session: &Session, node: &AccelNode) -> TxnId {
        match session.txn {
            Some(t) if self.fleet.is_enlisted(t, node.id) => t,
            _ => 0,
        }
    }

    /// Enlist one fleet node in the session's transaction (starting one if
    /// needed); callers have already verified the node is ready.
    pub(crate) fn enlist_node(&self, session: &mut Session, node: &AccelNode) -> Result<TxnId> {
        let trace = session.trace.clone();
        let txn = self.ensure_txn(session);
        if !self.fleet.is_enlisted(txn, node.id) {
            // BEGIN message
            self.ship_traced_on(node, &trace, Direction::ToAccel, "control", wire::CONTROL_FRAME)?;
            node.engine.begin(txn);
            self.fleet.enlist(txn, node.id);
            self.host.txns.enlist_accelerator(txn);
        }
        Ok(txn)
    }

    /// Enlist the accelerator in the session's transaction (starting one if
    /// needed) — required for AOT DML so that the paper's own-uncommitted-
    /// changes visibility holds.
    fn enlist_accel(&self, session: &mut Session) -> Result<TxnId> {
        let trace = session.trace.clone();
        if !self.accel_ready_traced(&trace) {
            return Err(self.unavailable_error());
        }
        let txn = self.ensure_txn(session);
        if !self.host.txns.accelerator_enlisted(txn) {
            // BEGIN message
            self.ship_traced(&trace, Direction::ToAccel, "control", wire::CONTROL_FRAME)?;
            self.accel().begin(txn);
            self.host.txns.enlist_accelerator(txn);
        }
        Ok(txn)
    }

    /// One statement exchange with the accelerator: deliver the request
    /// (at least once), execute it exactly once, and deliver the reply.
    ///
    /// The 32-byte request envelope carries the session id and a
    /// per-session sequence number. A lost *request* attempt means the
    /// statement never arrived and is simply resent. A lost *reply* leaves
    /// the coordinator unsure whether the statement ran, so it redelivers
    /// the request under the same sequence number — the receiver
    /// recognizes the duplicate in its [`SeqTracker`] and resends the
    /// reply without executing again, making shipping idempotent. Retries
    /// ride the bounded backoff of `self.retry` on the virtual clock;
    /// exhausting it fails the statement with SQLCODE -30081, and the
    /// outcome feeds the health monitor like every other federation path.
    fn accel_exchange<T>(
        &self,
        session: &mut Session,
        request_bytes: usize,
        exec: impl FnOnce() -> Result<T>,
        reply: impl Fn(&T) -> ReplyPayload,
    ) -> Result<T> {
        Ok(self.accel_exchange_inner(session, request_bytes, exec, reply)?.0)
    }

    /// [`Idaa::accel_exchange`], also returning the encoded reply frame
    /// when the reply was a row frame — the host side decodes its result
    /// set from that frame, not from the accelerator's in-memory rows.
    fn accel_exchange_inner<T>(
        &self,
        session: &mut Session,
        request_bytes: usize,
        exec: impl FnOnce() -> Result<T>,
        reply: impl Fn(&T) -> ReplyPayload,
    ) -> Result<(T, Option<Vec<u8>>)> {
        let node = self.nodes[0].clone();
        self.exchange_on(&node, session, request_bytes, exec, reply)
    }

    /// [`Idaa::accel_exchange_inner`] against a specific fleet node: the
    /// exchange rides that node's link, health monitor, sequence tracker,
    /// and recovery epoch.
    pub(crate) fn exchange_on<T>(
        &self,
        node: &AccelNode,
        session: &mut Session,
        request_bytes: usize,
        exec: impl FnOnce() -> Result<T>,
        reply: impl Fn(&T) -> ReplyPayload,
    ) -> Result<(T, Option<Vec<u8>>)> {
        let trace = session.trace.clone();
        let seq = session.next_seq();
        let mut exec = Some(exec);
        let mut result: Option<T> = None;
        let attempts = self.retry.max_attempts.max(1);
        let mut wait = self.retry.backoff;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.metrics.inc("exchange.retries", 1);
                trace.event("retry", &[("attempt", &attempt)], node.link.now());
                node.link.advance(wait);
                wait = wait.saturating_mul(self.retry.multiplier);
            }
            // Request leg: loss means the statement never reached the
            // accelerator — resend it.
            match node.link.transfer(Direction::ToAccel, request_bytes) {
                Ok(_) => self.transfer_event_on(
                    node,
                    &trace,
                    Direction::ToAccel,
                    "stmt",
                    request_bytes,
                    None,
                ),
                Err(e) => {
                    self.transfer_event_on(
                        node,
                        &trace,
                        Direction::ToAccel,
                        "stmt",
                        request_bytes,
                        Some(e.to_string()),
                    );
                    continue;
                }
            }
            node.health.record_success();
            // Receiver side: execute on first delivery, discard duplicates.
            // Every delivery is stamped with the accelerator's current
            // recovery epoch; anything stamped with a dead incarnation is
            // fenced off and the request is re-sent under the new epoch.
            match node.delivered.deliver_at(session.id, seq, node.engine.epoch()) {
                Delivery::Apply => {
                    let run = exec.take().expect("first delivery executes the statement");
                    result = Some(run()?);
                }
                Delivery::Duplicate => {
                    self.statements_deduped.fetch_add(1, Ordering::Relaxed);
                    self.metrics.inc("exchange.deduped", 1);
                }
                Delivery::Fenced => {
                    self.statements_fenced.fetch_add(1, Ordering::Relaxed);
                    self.metrics.inc("exchange.fenced", 1);
                    continue;
                }
            }
            let outcome = result.as_ref().expect("executed on or before this delivery");
            // Reply leg: control acknowledgements go as plain messages; row
            // results are encoded into a wire frame whose checksum the host
            // side verifies on receipt.
            let (sent, kind, reply_bytes) = match reply(outcome) {
                ReplyPayload::Control(bytes) => (
                    node.link.transfer(Direction::ToHost, bytes).map(|_| None),
                    "control",
                    bytes,
                ),
                ReplyPayload::Frame(frame) => {
                    let len = frame.len();
                    (
                        node.link.transfer_frame(Direction::ToHost, &frame).map(|_| Some(frame)),
                        "frame",
                        len,
                    )
                }
            };
            match sent {
                Ok(frame) => {
                    self.transfer_event_on(node, &trace, Direction::ToHost, kind, reply_bytes, None);
                    node.health.record_success();
                    return Ok((result.take().expect("reply delivered"), frame));
                }
                Err(e) => self.transfer_event_on(
                    node,
                    &trace,
                    Direction::ToHost,
                    kind,
                    reply_bytes,
                    Some(e.to_string()),
                ),
            }
            // Reply lost: redeliver the request (same sequence number) on
            // the next attempt.
        }
        node.health.record_failure();
        Err(Error::LinkFailure(
            "communication with the accelerator failed; the statement exchange could \
             not be completed"
                .into(),
        ))
    }

    /// Commit the session's transaction. When the accelerator participated,
    /// run two-phase commit: PREPARE on the accelerator, COMMIT on DB2 (the
    /// coordinator), COMMIT on the accelerator.
    pub fn commit_session(&self, session: &mut Session) -> Result<()> {
        let Some(txn) = session.txn.take() else { return Ok(()) };
        let trace = session.trace.clone();
        let span = if trace.is_enabled() {
            Some(trace.begin("commit", self.link().now()))
        } else {
            None
        };
        let fleet_ids =
            if self.fleet_active() { self.fleet.take_enlisted(txn) } else { Vec::new() };
        let enlisted = self.host.txns.accelerator_enlisted(txn);
        if let Some(id) = span {
            trace.attr(id, "kind", if enlisted { "2pc" } else { "local" });
        }
        let result = if !fleet_ids.is_empty() {
            self.metrics.inc("commits.twopc", 1);
            self.commit_two_phase_fleet(&trace, txn, &fleet_ids)
        } else if enlisted {
            self.metrics.inc("commits.twopc", 1);
            self.commit_two_phase(&trace, txn)
        } else {
            self.metrics.inc("commits.local", 1);
            self.host.commit(txn);
            Ok(())
        };
        if let Err(e) = result {
            if let Some(id) = span {
                trace.end(id, self.link().now());
            }
            return Err(e);
        }
        if self.config.auto_replicate {
            let applied = self.replicate_now();
            match &applied {
                Ok(n) if *n > 0 => {
                    trace.event("replicate", &[("applied", n)], self.link().now());
                }
                _ => {}
            }
            applied?;
        }
        // Periodic checkpoint policy on the virtual clock (each node
        // checkpoints on its own link clock). A crash while building the
        // checkpoint (the MID_CHECKPOINT site) must not fail the user's
        // commit — the decision is already durable; the next statement
        // observes the crash and drives recovery.
        for node in &self.nodes {
            self.sync_node_clock(node);
            if let Ok(true) =
                node.engine.maybe_checkpoint(node.link.now(), self.config.checkpoint_every)
            {
                self.metrics.inc("accel.checkpoints", 1);
                trace.event("checkpoint", &[], node.link.now());
            }
            self.maybe_scrub_node(node, &trace);
            self.absorb_node_clock(node);
        }
        if let Some(id) = span {
            trace.end(id, self.link().now());
        }
        Ok(())
    }

    /// One background storage-scrub step on `node`, driven between
    /// statements by the commit path when [`IdaaConfig::scrub_every`] is
    /// non-zero. Verification I/O is charged to the node's *virtual* clock
    /// at the recovery bandwidth; detections (and the repair checkpoint
    /// the engine takes) are mirrored into the metrics registry and
    /// recorded as a "disk.scrub" trace event. Like a mid-checkpoint
    /// crash, a scrub failure must not fail the user's already-durable
    /// commit — the next statement observes the crash and drives
    /// recovery.
    fn maybe_scrub_node(&self, node: &AccelNode, trace: &Trace) {
        if self.config.scrub_every.is_zero() {
            return;
        }
        let before = Self::disk_stat_snapshot(&node.engine);
        let result = node.engine.maybe_scrub(node.link.now(), self.config.scrub_every);
        self.mirror_disk_stats(&node.engine, before);
        let report = match result {
            Ok(Some(report)) => report,
            _ => return,
        };
        node.link.advance(Duration::from_secs_f64(
            report.scanned_bytes as f64 / self.config.recovery_bytes_per_sec.max(1) as f64,
        ));
        self.metrics.inc("disk.scrub.steps", 1);
        self.metrics.inc("disk.scrub.scanned_bytes", report.scanned_bytes);
        if report.corruptions() > 0 {
            trace.event(
                "disk.scrub",
                &[
                    ("corrupt_records", &(report.corrupt_records.len() as u64)),
                    ("corrupt_checkpoints", &report.corrupt_checkpoints),
                ],
                node.link.now(),
            );
        }
    }

    /// Two-phase commit with an enlisted accelerator, hardened against a
    /// stopped accelerator and link-level message loss at every step.
    fn commit_two_phase(&self, trace: &Trace, txn: TxnId) -> Result<()> {
        // A stopped or crashed accelerator cannot vote: presume abort on
        // both sides. (A crashed engine's copy of the transaction is
        // aborted durably when recovery replays the log.)
        if self.faults.accel_unavailable.load(Ordering::Relaxed) || self.accel().is_crashed() {
            self.accel().abort(txn);
            self.host.rollback(txn)?;
            return Err(Error::ResourceUnavailable(
                "the accelerator is unavailable; transaction rolled back on all \
                 participants"
                    .into(),
            ));
        }
        // Phase 1: PREPARE request. Undeliverable after retries means the
        // participant never voted — presumed abort everywhere.
        if let Err(e) = self.ship_traced(trace, Direction::ToAccel, "control", wire::CONTROL_FRAME)
        {
            self.accel().abort(txn);
            self.host.rollback(txn)?;
            return Err(Error::CommitFailed(format!(
                "PREPARE could not be delivered ({e}); transaction rolled back on all \
                 participants"
            )));
        }
        // The PREPARE vote consults the failure registry: a fired
        // `coord.prepare.vote_no` site (armed one-shot or seeded plan)
        // makes this participant vote NO.
        let prepare_ok = !self.faults.registry.fire(sites::PREPARE_VOTE_NO);
        if !prepare_ok {
            // Vote NO: roll back everywhere.
            self.accel().abort(txn);
            self.host.rollback(txn)?;
            return Err(Error::CommitFailed(
                "accelerator failed to prepare; transaction rolled back on all \
                 participants"
                    .into(),
            ));
        }
        if let Err(e) = self.accel().prepare(txn) {
            // A NO vote (or protocol error) aborts everywhere; the host
            // transaction must not stay open holding locks.
            self.accel().abort(txn);
            self.host.rollback(txn)?;
            return Err(Error::CommitFailed(format!(
                "accelerator PREPARE failed ({e}); transaction rolled back on all \
                 participants"
            )));
        }
        // The YES vote travels back. Losing it leaves the transaction
        // in-doubt: the participant is prepared but the coordinator cannot
        // see the outcome. The resolver re-runs the status inquiry once;
        // if that fails too, both sides roll back (presumed abort).
        if self.ship_traced(trace, Direction::ToHost, "control", wire::CONTROL_FRAME).is_err() {
            let recovered = self
                .ship_traced(trace, Direction::ToAccel, "control", wire::CONTROL_FRAME)
                .is_ok()
                && self
                    .ship_traced(trace, Direction::ToHost, "control", wire::CONTROL_FRAME)
                    .is_ok();
            if !recovered {
                self.accel().abort(txn);
                self.host.rollback(txn)?;
                return Err(Error::CommitFailed(
                    "in-doubt transaction could not be resolved before timeout; rolled \
                     back on all participants"
                        .into(),
                ));
            }
            self.in_doubt_resolved.fetch_add(1, Ordering::Relaxed);
            self.metrics.inc("twopc.in_doubt_resolved", 1);
        }
        // Phase 2: the decision is durable once the coordinator commits.
        self.host.commit(txn);
        if self.accel().is_crashed()
            || self.ship_traced(trace, Direction::ToAccel, "control", wire::CONTROL_FRAME).is_err()
        {
            // The COMMIT decision is queued and redelivered on the next
            // replication round or recovery probe; the accelerator holds
            // the transaction prepared (durably — a crash re-materializes
            // it from the log) until the decision arrives.
            self.node0().pending_commits.lock().push(txn);
            self.metrics.inc("twopc.decisions_queued", 1);
        } else {
            self.accel().commit(txn);
        }
        Ok(())
    }

    /// Roll the session's transaction back on every participant.
    pub fn rollback_session(&self, session: &mut Session) -> Result<()> {
        let Some(txn) = session.txn.take() else { return Ok(()) };
        let fleet_ids =
            if self.fleet_active() { self.fleet.take_enlisted(txn) } else { Vec::new() };
        if !fleet_ids.is_empty() {
            // Best-effort abort message per enlisted node — each
            // participant presumes abort for unresolved transactions on
            // reconnect, so a lost message cannot leave one committed.
            for i in fleet_ids {
                let node = &self.nodes[i];
                let _ = self.ship_on(node, Direction::ToAccel, wire::CONTROL_FRAME);
                node.engine.abort(txn);
            }
        } else if self.host.txns.accelerator_enlisted(txn) {
            // Best-effort abort message — the participant presumes abort
            // for unresolved transactions on reconnect, so a lost message
            // cannot leave it committed.
            let _ = self.ship(Direction::ToAccel, wire::CONTROL_FRAME);
            self.accel().abort(txn);
        }
        self.host.rollback(txn)?;
        Ok(())
    }
}

fn explain_schema() -> idaa_common::Schema {
    idaa_common::Schema::new_unchecked(vec![idaa_common::ColumnDef::new(
        "PLAN",
        idaa_common::DataType::Varchar(255),
    )])
}

fn workload_schema() -> idaa_common::Schema {
    use idaa_common::{ColumnDef, DataType};
    idaa_common::Schema::new_unchecked(vec![
        ColumnDef::new("SESSION", DataType::BigInt),
        ColumnDef::new("PRIORITY", DataType::Varchar(8)),
        ColumnDef::new("QUEUED", DataType::BigInt),
        ColumnDef::new("RUNNING", DataType::BigInt),
        ColumnDef::new("DONE", DataType::BigInt),
        ColumnDef::new("FAILED", DataType::BigInt),
        ColumnDef::new("QUEUE_US", DataType::BigInt),
        ColumnDef::new("BYTES", DataType::BigInt),
    ])
}

/// What an accelerator statement exchange sends back to DB2.
pub(crate) enum ReplyPayload {
    /// Fixed-size control acknowledgement (counts, DDL acks).
    Control(usize),
    /// Encoded row frame — the host decodes its result set from this.
    Frame(Vec<u8>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(idaa: &Idaa) -> Session {
        idaa.session(SYSADM)
    }

    fn setup_sales(idaa: &Idaa, s: &mut Session, rows: usize) {
        idaa.execute(s, "CREATE TABLE SALES (ID INT NOT NULL, REGION VARCHAR(8), AMOUNT DOUBLE)")
            .unwrap();
        let mut values = Vec::new();
        for i in 0..rows {
            values.push(format!(
                "({}, '{}', {}.0E0)",
                i,
                if i % 2 == 0 { "EU" } else { "US" },
                i
            ));
        }
        idaa.execute(s, &format!("INSERT INTO SALES VALUES {}", values.join(", ")))
            .unwrap();
    }

    #[test]
    fn ddl_dml_query_on_host() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 10);
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(out.route, Route::Host);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(10));
        // Nothing crossed the link.
        assert_eq!(idaa.link().metrics().total_bytes(), 0);
    }

    #[test]
    fn acceleration_lifecycle_and_offload() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 100);
        idaa.execute(&mut s, "CALL SYSPROC.ACCEL_ADD_TABLES('ACCEL1', 'SALES')").unwrap();
        idaa.execute(&mut s, "CALL SYSPROC.ACCEL_LOAD_TABLES('ACCEL1', 'SALES')").unwrap();
        // Still NONE: stays on host.
        let out = idaa.execute(&mut s, "SELECT SUM(amount) FROM sales").unwrap();
        assert_eq!(out.route, Route::Host);
        // ELIGIBLE: offloads.
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let out = idaa.execute(&mut s, "SELECT SUM(amount) FROM sales").unwrap();
        assert_eq!(out.route, Route::Accelerator);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::Double(4950.0));
    }

    #[test]
    fn replication_keeps_replica_fresh() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 20);
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.execute(&mut s, "INSERT INTO SALES VALUES (999, 'EU', 5.0E0)").unwrap();
        idaa.execute(&mut s, "UPDATE SALES SET AMOUNT = 7.0E0 WHERE ID = 999").unwrap();
        let out = idaa
            .execute(&mut s, "SELECT amount FROM sales WHERE id = 999")
            .unwrap();
        assert_eq!(out.route, Route::Accelerator);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::Double(7.0));
    }

    #[test]
    fn aot_lifecycle_transforms_without_host_data() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 50);
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.execute(
            &mut s,
            "CREATE TABLE STAGE1 (REGION VARCHAR(8), TOTAL DOUBLE) IN ACCELERATOR",
        )
        .unwrap();
        let out = idaa
            .execute(
                &mut s,
                "INSERT INTO STAGE1 SELECT region, SUM(amount) FROM sales GROUP BY region",
            )
            .unwrap();
        assert_eq!(out.route, Route::Accelerator);
        assert_eq!(out.count(), 2);
        let r = idaa.query(&mut s, "SELECT total FROM stage1 ORDER BY region").unwrap();
        assert_eq!(r.len(), 2);
        // The host has no storage for the AOT.
        assert_eq!(idaa.host().scan_count(&ObjectName::bare("STAGE1")), 0);
    }

    #[test]
    fn aot_mixed_with_host_only_table_fails() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 5);
        idaa.execute(&mut s, "CREATE TABLE A1 (X INT) IN ACCELERATOR").unwrap();
        let err = idaa
            .execute(&mut s, "SELECT * FROM a1 INNER JOIN sales ON a1.x = sales.id")
            .unwrap_err();
        assert_eq!(err.sqlcode(), -4742);
    }

    #[test]
    fn explicit_txn_with_aot_sees_own_changes_and_commits_atomically() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE W (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO W VALUES (1), (2)").unwrap();
        // Own uncommitted changes visible.
        let r = idaa.query(&mut s, "SELECT COUNT(*) FROM w").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(2));
        // Another session does not see them.
        let mut s2 = sys(&idaa);
        let r2 = idaa.query(&mut s2, "SELECT COUNT(*) FROM w").unwrap();
        assert_eq!(r2.scalar().unwrap(), &Value::BigInt(0));
        idaa.execute(&mut s, "COMMIT").unwrap();
        let r3 = idaa.query(&mut s2, "SELECT COUNT(*) FROM w").unwrap();
        assert_eq!(r3.scalar().unwrap(), &Value::BigInt(2));
    }

    #[test]
    fn rollback_spans_host_and_accelerator() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE HOSTT (X INT)").unwrap();
        idaa.execute(&mut s, "CREATE TABLE AOTT (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO HOSTT VALUES (1)").unwrap();
        idaa.execute(&mut s, "INSERT INTO AOTT VALUES (1)").unwrap();
        idaa.execute(&mut s, "ROLLBACK").unwrap();
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM hostt").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM aott").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
    }

    #[test]
    fn failed_prepare_rolls_back_everywhere() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE HOSTT (X INT)").unwrap();
        idaa.execute(&mut s, "CREATE TABLE AOTT (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO HOSTT VALUES (1)").unwrap();
        idaa.execute(&mut s, "INSERT INTO AOTT VALUES (1)").unwrap();
        idaa.faults.registry.arm(idaa_netsim::sites::PREPARE_VOTE_NO, 1);
        let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
        assert!(matches!(err, Error::CommitFailed(_)));

        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM hostt").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM aott").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
    }

    #[test]
    fn governance_checked_before_delegation() {
        let idaa = Idaa::default();
        let mut admin = sys(&idaa);
        idaa.execute(&mut admin, "CREATE TABLE SECRETS (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut admin, "INSERT INTO SECRETS VALUES (42)").unwrap();
        let mut bob = idaa.session("BOB");
        let err = idaa.query(&mut bob, "SELECT * FROM secrets").unwrap_err();
        assert_eq!(err.sqlcode(), -551);
        let err = idaa.execute(&mut bob, "DELETE FROM secrets").unwrap_err();
        assert_eq!(err.sqlcode(), -551);
        idaa.execute(&mut admin, "GRANT SELECT ON SECRETS TO BOB").unwrap();
        let r = idaa.query(&mut bob, "SELECT * FROM secrets").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn call_requires_execute_privilege() {
        let idaa = Idaa::default();
        let mut bob = idaa.session("BOB");
        let err = idaa
            .execute(&mut bob, "CALL SYSPROC.ACCEL_GROOM_TABLES()")
            .unwrap_err();
        assert_eq!(err.sqlcode(), -551);
        let mut admin = sys(&idaa);
        idaa.execute(&mut admin, "GRANT EXECUTE ON SYSPROC.ACCEL_GROOM_TABLES TO BOB")
            .unwrap();
        idaa.execute(&mut bob, "CALL SYSPROC.ACCEL_GROOM_TABLES()").unwrap();
    }

    #[test]
    fn unknown_procedure_errors() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        let err = idaa.execute(&mut s, "CALL NO_SUCH_PROC(1)").unwrap_err();
        assert_eq!(err.sqlcode(), -204);
    }

    #[test]
    fn insert_select_from_host_to_aot_moves_data_once() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 30);
        // SALES is NOT accelerated: the source query runs on the host and
        // rows must cross the link into the AOT (the pre-AOT baseline path).
        idaa.execute(&mut s, "CREATE TABLE COPYT (ID INT, AMOUNT DOUBLE) IN ACCELERATOR")
            .unwrap();
        let before = idaa.link().metrics();
        let out = idaa
            .execute(&mut s, "INSERT INTO COPYT SELECT id, amount FROM sales")
            .unwrap();
        assert_eq!(out.count(), 30);
        let moved = idaa.link().metrics().since(&before);
        assert!(moved.bytes_to_accel > 30 * 8, "row payload must cross the link");
    }

    #[test]
    fn autocommit_statement_failure_rolls_back() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE T1 (X INT NOT NULL)").unwrap();
        // Multi-row insert where the second row violates NOT NULL.
        let err = idaa.execute(&mut s, "INSERT INTO T1 VALUES (1), (NULL)");
        assert!(err.is_err());
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM t1").unwrap().scalar().unwrap(),
            &Value::BigInt(0),
            "autocommit statement failure must not leave partial rows"
        );
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE T2 (A INT, B VARCHAR(4), C INT)").unwrap();
        idaa.execute(&mut s, "INSERT INTO T2 (C, A) VALUES (3, 1)").unwrap();
        let r = idaa.query(&mut s, "SELECT a, b, c FROM t2").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Null, Value::Int(3)]);
    }

    #[test]
    fn drop_aot_removes_both_sides() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE D1 (X INT) IN ACCELERATOR").unwrap();
        assert!(idaa.accel().has_table(&ObjectName::bare("D1")));
        idaa.execute(&mut s, "DROP TABLE D1").unwrap();
        assert!(!idaa.accel().has_table(&ObjectName::bare("D1")));
        assert!(idaa.host().table_meta(&ObjectName::bare("D1")).is_err());
    }

    #[test]
    fn enable_mode_keeps_small_tables_on_host() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 50);
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ENABLE").unwrap();
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(out.route, Route::Host, "50 rows is below the offload threshold");
    }

    #[test]
    fn all_mode_fails_for_non_accelerated() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 5);
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ALL").unwrap();
        let err = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap_err();
        assert_eq!(err.sqlcode(), -4742);
    }

    #[test]
    fn query_fails_over_to_host_when_link_fails_mid_statement() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 100);
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        // Exhaust the retry budget for the shipped statement.
        idaa.link().fail_next_transfers(4);
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(out.route, Route::Host, "statement re-executes locally");
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(100));
        assert_eq!(idaa.health().state(), HealthState::Degraded);
        // The link is healthy again: offload resumes and health recovers.
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(out.route, Route::Accelerator);
        assert_eq!(idaa.health().state(), HealthState::Online);
    }

    #[test]
    fn repeated_failures_take_accelerator_offline_and_recovery_restores_it() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE T (X INT) IN ACCELERATOR").unwrap();
        idaa.set_fault_plan(FaultPlan::dropping(11, 1.0));
        for _ in 0..3 {
            let err = idaa.execute(&mut s, "INSERT INTO T VALUES (1)").unwrap_err();
            assert_eq!(err.sqlcode(), -30081);
        }
        assert_eq!(idaa.health().state(), HealthState::Offline);
        // Offline short-circuits: the AOT statement fails without the
        // enlist even being attempted (a probe may fire, but the plan is
        // still dropping everything).
        let err = idaa.execute(&mut s, "SELECT COUNT(*) FROM t").unwrap_err();
        assert_eq!(err.sqlcode(), -30081);
        idaa.link().clear_faults();
        assert!(idaa.recover());
        assert_eq!(idaa.health().state(), HealthState::Online);
        idaa.execute(&mut s, "INSERT INTO T VALUES (1)").unwrap();
        let r = idaa.query(&mut s, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(1));
    }

    #[test]
    fn lost_request_attempts_are_resent_without_duplication() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE SEQT (X INT) IN ACCELERATOR").unwrap();
        // First attempt of each shipped message is lost in flight — the
        // statement never reached the accelerator, so the resend is a
        // first delivery, not a duplicate.
        for i in 0..5 {
            idaa.link().fail_next_transfers(1);
            idaa.execute(&mut s, &format!("INSERT INTO SEQT VALUES ({i})")).unwrap();
        }
        let r = idaa.query(&mut s, "SELECT COUNT(*) FROM seqt").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(5));
        assert_eq!(idaa.statements_deduped(), 0);
        assert_eq!(idaa.health().state(), HealthState::Online);
    }

    #[test]
    fn crash_recovery_replays_to_the_same_answer() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE R (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "INSERT INTO R VALUES (1), (2), (3)").unwrap();
        let before = idaa.query(&mut s, "SELECT COUNT(*), SUM(x) FROM r").unwrap();
        idaa.accel().crash();
        // The next statement finds the accelerator offline, probes,
        // restarts it (checkpoint + log replay, virtual-clock cost only),
        // and then runs against the recovered state.
        let after = idaa.query(&mut s, "SELECT COUNT(*), SUM(x) FROM r").unwrap();
        assert_eq!(before.rows, after.rows);
        let stats = idaa.last_restart().expect("a restart happened");
        assert_eq!(stats.epoch, 2);
        assert!(stats.log_records_replayed > 0);
        assert_eq!(idaa.accel().epoch(), 2);
        assert_eq!(idaa.health().state(), HealthState::Online);
    }

    #[test]
    fn statements_fail_with_904_until_recovery_can_probe() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE R (X INT) IN ACCELERATOR").unwrap();
        idaa.accel().crash();
        // Probes cannot round-trip during the outage window, so recovery
        // cannot start: statements requiring the accelerator get -904
        // (resource unavailable), not -30081.
        idaa.set_fault_plan(FaultPlan::outage(Duration::ZERO, Duration::from_secs(1)));
        let err = idaa.execute(&mut s, "INSERT INTO R VALUES (1)").unwrap_err();
        assert_eq!(err.sqlcode(), -904);
        // Past the window the next statement drives recovery end to end.
        idaa.link().advance(Duration::from_secs(2));
        idaa.execute(&mut s, "INSERT INTO R VALUES (1)").unwrap();
        assert_eq!(idaa.accel().epoch(), 2, "exactly one restart");
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM r").unwrap().scalar().unwrap(),
            &Value::BigInt(1)
        );
    }

    #[test]
    fn queued_commit_decision_survives_crash_and_resolves() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE Q (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO Q VALUES (7)").unwrap();
        // COMMIT: the prepare request and YES vote round-trip, then every
        // phase-2 delivery attempt dies — the decision is queued while the
        // accelerator holds the transaction prepared (durably).
        idaa.link().fail_transfers_after(2, 8);
        idaa.execute(&mut s, "COMMIT").unwrap();
        assert_eq!(idaa.pending_accel_commits(), 1);
        // Crash. Restart re-materializes the prepared transaction from the
        // log; the queued decision resolves it instead of presumed abort.
        idaa.accel().crash();
        assert!(idaa.recover());
        assert_eq!(idaa.pending_accel_commits(), 0);
        assert_eq!(idaa.last_restart().unwrap().rematerialized_in_doubt, 1);
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM q").unwrap().scalar().unwrap(),
            &Value::BigInt(1)
        );
    }

    #[test]
    fn prepared_transaction_without_queued_decision_presumes_abort() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE P (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO P VALUES (1)").unwrap();
        // The crash fires at the post-prepare site: the vote was logged
        // durably but never reached the coordinator, which rolls back.
        idaa.faults.registry.arm(sites::POST_PREPARE, 1);
        let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
        assert_eq!(err.sqlcode(), -926);
        // Recovery re-materializes the prepared transaction; with no
        // queued COMMIT decision, presumed abort rolls it back — matching
        // the coordinator's outcome.
        assert!(idaa.recover());
        assert_eq!(idaa.last_restart().unwrap().rematerialized_in_doubt, 1);
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM p").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
        assert_eq!(idaa.health().state(), HealthState::Online);
    }

    #[test]
    fn lost_reply_redelivers_statement_and_receiver_discards_duplicate() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE T (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "INSERT INTO T VALUES (10)").unwrap();
        // The UPDATE exchange is BEGIN, request, reply — deliver the
        // request but lose the reply. The coordinator cannot tell whether
        // the statement ran, so it redelivers under the same sequence
        // number; the receiver recognizes the duplicate and resends the
        // reply without executing again (X + 1 must apply exactly once).
        idaa.link().fail_transfers_after(2, 1);
        let out = idaa.execute(&mut s, "UPDATE T SET X = X + 1").unwrap();
        assert_eq!(out.count(), 1);
        assert_eq!(idaa.statements_deduped(), 1);
        let r = idaa.query(&mut s, "SELECT X FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(11));
        assert_eq!(idaa.health().state(), HealthState::Online);
    }
}
