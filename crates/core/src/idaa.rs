//! The federated system facade — "DB2 + IDAA" as one object.
//!
//! [`Idaa`] owns the host engine, the accelerator engine, the metered link
//! between them, the replication applier, and the stored-procedure
//! registry. [`Idaa::execute`] is the single SQL entry point an
//! application sees: it parses, authorizes (on the host — governance),
//! routes (host vs. accelerator), meters every byte that crosses the link,
//! and coordinates two-phase commit when a transaction touched both sides.

use crate::procedures::{system_procedures, Procedure};
use crate::replication::Replicator;
use crate::router::{self, Route};
use crate::session::Session;
use idaa_accel::{AccelConfig, AccelEngine};
use idaa_common::{Error, ObjectName, Result, Row, Rows, Value};
use idaa_host::{HostEngine, TableKind, TxnId, SYSADM};
use idaa_netsim::{Direction, LinkConfig, NetLink};
use idaa_sql::ast::{Expr, InsertSource, Query, Statement};
use idaa_sql::eval::{bind, eval, FlatResolver};
use idaa_sql::plan::plan_query;
use idaa_sql::{parse_statement, parse_statements, Privilege};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// System-wide configuration.
#[derive(Debug, Clone)]
pub struct IdaaConfig {
    /// Default schema for unqualified names (shared by both engines).
    pub default_schema: String,
    /// Accelerator tunables.
    pub accel: AccelConfig,
    /// Link parameters.
    pub link: LinkConfig,
    /// Replication batch size (change records per shipped batch).
    pub replication_batch: usize,
    /// Drain the CDC log to the accelerator after every commit.
    pub auto_replicate: bool,
}

impl Default for IdaaConfig {
    fn default() -> Self {
        IdaaConfig {
            default_schema: "APP".into(),
            accel: AccelConfig::default(),
            link: LinkConfig::default(),
            replication_batch: 1024,
            auto_replicate: true,
        }
    }
}

/// Test hooks for failure injection.
#[derive(Debug, Default)]
pub struct Faults {
    /// Make the next accelerator PREPARE vote NO (2PC atomicity tests).
    pub fail_next_prepare: AtomicBool,
    /// Simulate an accelerator outage: offload-eligible queries fall back
    /// to DB2 (DB2's behavior when the accelerator is stopped), while
    /// statements that *require* the accelerator (AOTs, ALL mode) fail.
    pub accel_unavailable: AtomicBool,
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A result set.
    Rows(Rows),
    /// An affected-row count.
    Count(usize),
    /// Nothing (DDL, transaction control, SET).
    None,
}

/// Result of one statement: where it ran and what it returned.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    pub route: Route,
    pub payload: Payload,
}

impl ExecOutcome {
    fn host(payload: Payload) -> ExecOutcome {
        ExecOutcome { route: Route::Host, payload }
    }

    fn accel(payload: Payload) -> ExecOutcome {
        ExecOutcome { route: Route::Accelerator, payload }
    }

    /// The result set, if any.
    pub fn rows(&self) -> Option<&Rows> {
        match &self.payload {
            Payload::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The affected-row count (0 for non-DML).
    pub fn count(&self) -> usize {
        match &self.payload {
            Payload::Count(n) => *n,
            _ => 0,
        }
    }
}

/// The federated DB2 + accelerator system.
pub struct Idaa {
    host: Arc<HostEngine>,
    accel: Arc<AccelEngine>,
    link: Arc<NetLink>,
    replicator: Mutex<Replicator>,
    procedures: RwLock<HashMap<ObjectName, Arc<dyn Procedure>>>,
    config: IdaaConfig,
    pub faults: Faults,
}

impl Default for Idaa {
    fn default() -> Self {
        Idaa::new(IdaaConfig::default())
    }
}

impl Idaa {
    /// Build the system and register the IDAA system procedures.
    pub fn new(config: IdaaConfig) -> Idaa {
        let idaa = Idaa {
            host: Arc::new(HostEngine::new(&config.default_schema)),
            accel: Arc::new(AccelEngine::new(&config.default_schema, config.accel.clone())),
            link: Arc::new(NetLink::new(config.link.clone())),
            replicator: Mutex::new(Replicator::new(config.replication_batch)),
            procedures: RwLock::new(HashMap::new()),
            config,
            faults: Faults::default(),
        };
        for p in system_procedures() {
            idaa.register_procedure(Arc::from(p), SYSADM)
                .expect("registering system procedures cannot fail");
        }
        idaa
    }

    /// Open a session for `user`.
    pub fn session(&self, user: &str) -> Session {
        Session::new(user)
    }

    /// The host engine (DB2 side).
    pub fn host(&self) -> &HostEngine {
        &self.host
    }

    /// The accelerator engine.
    pub fn accel(&self) -> &AccelEngine {
        &self.accel
    }

    /// The metered host↔accelerator link.
    pub fn link(&self) -> &NetLink {
        &self.link
    }

    /// Default schema for unqualified names.
    pub fn default_schema(&self) -> &str {
        &self.config.default_schema
    }

    /// Register a stored procedure owned by `owner` (analytics framework
    /// deployment path).
    pub fn register_procedure(&self, proc: Arc<dyn Procedure>, owner: &str) -> Result<()> {
        let name = proc.name();
        let mut procs = self.procedures.write();
        if procs.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("procedure {name} already registered")));
        }
        self.host.privileges.write().set_owner(name.clone(), owner);
        procs.insert(name, proc);
        Ok(())
    }

    /// Charge DDL/control-message shipping to the link.
    pub fn ship_ddl(&self, text: &str) -> Result<()> {
        self.link.transfer(Direction::ToAccel, text.len() + 32);
        self.link.transfer(Direction::ToHost, 32);
        Ok(())
    }

    /// Snapshot-load an accelerated table (ACCEL_LOAD_TABLES body): pull
    /// all rows from DB2, ship them over the link, and enable replication.
    pub fn load_accelerated_table(&self, table: &ObjectName) -> Result<usize> {
        let meta = self.host.table_meta(table)?;
        if meta.kind != TableKind::Regular {
            return Err(Error::InvalidAcceleratorUse(format!(
                "{table} is accelerator-only and cannot be loaded from DB2"
            )));
        }
        if !self.accel.has_table(&meta.name) {
            return Err(Error::UndefinedObject(format!(
                "table {table} has not been added to the accelerator (ACCEL_ADD_TABLES)"
            )));
        }
        // Bring the replication watermark up to now *before* the snapshot,
        // so changes committed before the load are not double-applied.
        self.replicate_now()?;
        let rows = self.host.scan_all(&meta.name)?;
        let bytes: usize = rows.iter().map(row_wire).sum::<usize>() + 64;
        self.link.transfer(Direction::ToAccel, bytes);
        self.accel.truncate(&meta.name)?;
        let n = self.accel.load_committed(&meta.name, rows)?;
        self.link.transfer(Direction::ToHost, 64);
        self.host.set_accel_status(&meta.name, idaa_host::AccelStatus::Loaded)?;
        Ok(n)
    }

    /// Drain committed changes to the accelerator now.
    pub fn replicate_now(&self) -> Result<usize> {
        self.replicator.lock().apply(&self.host, &self.accel, &self.link)
    }

    // -- SQL entry points ---------------------------------------------------

    /// Execute one SQL statement.
    pub fn execute(&self, session: &mut Session, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(session, &stmt)
    }

    /// Execute a semicolon-separated script, stopping at the first error.
    pub fn execute_script(&self, session: &mut Session, sql: &str) -> Result<Vec<ExecOutcome>> {
        parse_statements(sql)?
            .iter()
            .map(|s| self.execute_stmt(session, s))
            .collect()
    }

    /// Execute a query and return its rows (errors if the statement does
    /// not produce a result set).
    pub fn query(&self, session: &mut Session, sql: &str) -> Result<Rows> {
        match self.execute(session, sql)?.payload {
            Payload::Rows(r) => Ok(r),
            other => Err(Error::TypeMismatch(format!(
                "statement did not produce a result set ({other:?})"
            ))),
        }
    }

    /// Execute one SQL statement with `?` parameter markers bound to
    /// `params` (prepared-statement style).
    pub fn execute_with_params(
        &self,
        session: &mut Session,
        sql: &str,
        params: &[Value],
    ) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        let bound = idaa_sql::params::bind_statement(&stmt, params)?;
        self.execute_stmt(session, &bound)
    }

    /// Execute an already-parsed statement.
    pub fn execute_stmt(&self, session: &mut Session, stmt: &Statement) -> Result<ExecOutcome> {
        session.statements += 1;
        let result = self.dispatch(session, stmt);
        match &result {
            Ok(_) => {
                // Autocommit unless inside an explicit transaction.
                if !session.explicit_txn
                    && !matches!(stmt, Statement::Begin | Statement::Commit | Statement::Rollback)
                {
                    self.commit_session(session)?;
                }
            }
            Err(_) => {
                // Statement-level atomicity in autocommit mode: roll the
                // implicit transaction back.
                if !session.explicit_txn && session.txn.is_some() {
                    self.rollback_session(session)?;
                }
            }
        }
        result
    }

    fn dispatch(&self, session: &mut Session, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Begin => {
                if session.explicit_txn {
                    return Err(Error::TransactionState("transaction already open".into()));
                }
                session.explicit_txn = true;
                self.ensure_txn(session);
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Commit => {
                // A failed COMMIT ends the transaction too (everything was
                // rolled back) — the session must not stay "in transaction".
                let result = self.commit_session(session);
                session.explicit_txn = false;
                result?;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Rollback => {
                self.rollback_session(session)?;
                session.explicit_txn = false;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::SetQueryAcceleration(mode) => {
                session.acceleration = *mode;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::SetCurrentSchema(s) => {
                if s != &self.config.default_schema {
                    return Err(Error::Unsupported(
                        "per-session CURRENT SCHEMA is not supported; configure the \
                         system default instead"
                            .into(),
                    ));
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::CreateTable { name, columns, in_accelerator, distribute_by } => {
                let schema = idaa_common::Schema::new(
                    columns
                        .iter()
                        .map(|c| idaa_common::ColumnDef {
                            name: c.name.clone(),
                            data_type: c.data_type,
                            not_null: c.not_null,
                        })
                        .collect(),
                )?;
                let kind = if *in_accelerator {
                    TableKind::AcceleratorOnly
                } else {
                    TableKind::Regular
                };
                self.host.create_table(
                    &session.user,
                    name,
                    schema.clone(),
                    kind,
                    distribute_by.clone(),
                )?;
                if *in_accelerator {
                    // Nickname proxy exists in DB2; actual table lives on
                    // the accelerator.
                    let resolved = name.resolve(&self.config.default_schema);
                    self.ship_ddl(&stmt.to_string())?;
                    if let Err(e) = self.accel.create_table(&resolved, schema, distribute_by) {
                        // Keep catalog and accelerator consistent.
                        let _ = self.host.drop_table(SYSADM, name);
                        return Err(e);
                    }
                    return Ok(ExecOutcome::accel(Payload::None));
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::DropTable { name } => {
                let meta = self.host.table_meta(name)?;
                let on_accel = meta.kind == TableKind::AcceleratorOnly
                    || meta.accel_status != idaa_host::AccelStatus::NotAccelerated;
                self.host.drop_table(&session.user, name)?;
                if on_accel {
                    self.ship_ddl(&stmt.to_string())?;
                    let _ = self.accel.drop_table(&meta.name);
                    return Ok(ExecOutcome::accel(Payload::None));
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::CreateIndex { name, table, columns } => {
                self.host.create_index(&session.user, name, table, columns.clone())?;
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Grant { privileges, object, grantees } => {
                let object = object.resolve(&self.config.default_schema);
                let mut privs = self.host.privileges.write();
                for g in grantees {
                    privs.grant(&session.user, g, &object, privileges)?;
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Revoke { privileges, object, grantees } => {
                let object = object.resolve(&self.config.default_schema);
                let mut privs = self.host.privileges.write();
                for g in grantees {
                    privs.revoke(&session.user, g, &object, privileges)?;
                }
                Ok(ExecOutcome::host(Payload::None))
            }
            Statement::Call { procedure, args } => self.dispatch_call(session, procedure, args),
            Statement::Explain(inner) => self.dispatch_explain(session, inner),
            Statement::Query(q) => self.dispatch_query(session, q),
            Statement::Insert { table, columns, source } => {
                self.dispatch_insert(session, table, columns, source)
            }
            Statement::Update { table, assignments, filter } => {
                match router::route_dml(&self.host, table)? {
                    Route::Host => {
                        let txn = self.ensure_txn(session);
                        let n = self.host.update_where(
                            &session.user,
                            txn,
                            table,
                            assignments,
                            filter.as_ref(),
                        )?;
                        Ok(ExecOutcome::host(Payload::Count(n)))
                    }
                    Route::Accelerator => {
                        let table_r = table.resolve(&self.config.default_schema);
                        self.host.privileges.read().check(
                            &session.user,
                            &table_r,
                            Privilege::Update,
                        )?;
                        let txn = self.enlist_accel(session)?;
                        self.ship_statement(&stmt.to_string());
                        let n = self.accel.update_where(
                            txn,
                            &table_r,
                            assignments,
                            filter.as_ref(),
                        )?;
                        self.link.transfer(Direction::ToHost, 64);
                        Ok(ExecOutcome::accel(Payload::Count(n)))
                    }
                }
            }
            Statement::Delete { table, filter } => {
                match router::route_dml(&self.host, table)? {
                    Route::Host => {
                        let txn = self.ensure_txn(session);
                        let n =
                            self.host.delete_where(&session.user, txn, table, filter.as_ref())?;
                        Ok(ExecOutcome::host(Payload::Count(n)))
                    }
                    Route::Accelerator => {
                        let table_r = table.resolve(&self.config.default_schema);
                        self.host.privileges.read().check(
                            &session.user,
                            &table_r,
                            Privilege::Delete,
                        )?;
                        let txn = self.enlist_accel(session)?;
                        self.ship_statement(&stmt.to_string());
                        let n = self.accel.delete_where(txn, &table_r, filter.as_ref())?;
                        self.link.transfer(Direction::ToHost, 64);
                        Ok(ExecOutcome::accel(Payload::Count(n)))
                    }
                }
            }
        }
    }

    fn dispatch_call(
        &self,
        session: &mut Session,
        procedure: &ObjectName,
        args: &[Expr],
    ) -> Result<ExecOutcome> {
        let name = match procedure.schema {
            Some(_) => procedure.clone(),
            // Procedures default to SYSPROC, then the default schema.
            None => {
                let sysproc = ObjectName::qualified("SYSPROC", &procedure.name);
                if self.procedures.read().contains_key(&sysproc) {
                    sysproc
                } else {
                    procedure.resolve(&self.config.default_schema)
                }
            }
        };
        let proc = self
            .procedures
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| Error::UndefinedObject(format!("procedure {name} is not defined")))?;
        // Governance: EXECUTE on the procedure object, checked on DB2.
        self.host.privileges.read().check(&session.user, &name, Privilege::Execute)?;
        let arg_values: Vec<Value> = args
            .iter()
            .map(|e| {
                let resolver = FlatResolver::new(vec![]);
                eval(&bind(e, &resolver)?, &[])
            })
            .collect::<Result<_>>()?;
        let rows = proc.execute(self, session, &arg_values)?;
        Ok(ExecOutcome::host(Payload::Rows(rows)))
    }

    /// `EXPLAIN`: plan the statement, report the routing decision and the
    /// operator tree — without executing anything.
    fn dispatch_explain(&self, session: &mut Session, inner: &Statement) -> Result<ExecOutcome> {
        let (plan, route_desc) = match inner {
            Statement::Query(q) => {
                let plan = plan_query(q, &*self.host)?;
                let tables: Vec<ObjectName> = plan
                    .tables()
                    .iter()
                    .map(|t| t.resolve(&self.config.default_schema))
                    .collect();
                let mut mix = router::classify(&self.host, &tables)?;
                mix.indexed_point = router::is_indexed_point(&self.host, &plan);
                let route = router::route_query(&mix, session.acceleration)?;
                (plan, format!(
                    "ROUTE: {route:?} (CURRENT QUERY ACCELERATION = {})",
                    session.acceleration
                ))
            }
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => {
                let route = router::route_dml(&self.host, table)?;
                let desc = format!("ROUTE: {route:?} (DML target {table})");
                match inner {
                    Statement::Insert { source: InsertSource::Query(q), .. } => {
                        (plan_query(q, &*self.host)?, desc)
                    }
                    _ => {
                        // No query plan to show for VALUES/UPDATE/DELETE —
                        // report the route only.
                        let lines = vec![vec![Value::Varchar(desc)]];
                        return Ok(ExecOutcome::host(Payload::Rows(Rows::new(
                            explain_schema(),
                            lines,
                        ))));
                    }
                }
            }
            other => {
                return Err(Error::Unsupported(format!(
                    "EXPLAIN is not supported for this statement: {other}"
                )))
            }
        };
        let mut lines = vec![vec![Value::Varchar(route_desc)]];
        for l in plan.explain().lines() {
            lines.push(vec![Value::Varchar(l.to_string())]);
        }
        Ok(ExecOutcome::host(Payload::Rows(Rows::new(explain_schema(), lines))))
    }

    fn dispatch_query(&self, session: &mut Session, q: &Query) -> Result<ExecOutcome> {
        let plan = plan_query(q, &*self.host)?;
        let tables: Vec<ObjectName> = plan
            .tables()
            .iter()
            .map(|t| t.resolve(&self.config.default_schema))
            .collect();
        let mut mix = router::classify(&self.host, &tables)?;
        mix.indexed_point = router::is_indexed_point(&self.host, &plan);
        let mut route = router::route_query(&mix, session.acceleration)?;
        // Accelerator outage: fall back to DB2 when the data still lives
        // there; fail when only the accelerator could answer.
        if route == Route::Accelerator && self.faults.accel_unavailable.load(Ordering::Relaxed) {
            if mix.aot > 0 || session.acceleration == idaa_sql::AccelerationMode::All {
                return Err(Error::NotOffloadable(
                    "the accelerator is not available and the statement cannot run in DB2"
                        .into(),
                ));
            }
            route = Route::Host;
        }
        match route {
            Route::Host => {
                let txn = self.ensure_txn(session);
                let rows = self.host.query(&session.user, txn, q)?;
                Ok(ExecOutcome::host(Payload::Rows(rows)))
            }
            Route::Accelerator => {
                // Governance on DB2 before delegation.
                {
                    let privs = self.host.privileges.read();
                    for t in &tables {
                        if t.name == "SYSDUMMY1" {
                            continue;
                        }
                        privs.check(&session.user, t, Privilege::Select)?;
                    }
                }
                let txn = self.accel_query_txn(session);
                let sql = q.to_string();
                self.ship_statement(&sql);
                let rows = self.accel.query(txn, q)?;
                // Result set travels back to DB2 and the application.
                self.link.transfer(Direction::ToHost, rows.wire_size());
                Ok(ExecOutcome::accel(Payload::Rows(rows)))
            }
        }
    }

    fn dispatch_insert(
        &self,
        session: &mut Session,
        table: &ObjectName,
        columns: &[String],
        source: &InsertSource,
    ) -> Result<ExecOutcome> {
        let target = table.resolve(&self.config.default_schema);
        let meta = self.host.table_meta(&target)?;
        // Build full-width rows from VALUES, or run the source query.
        let rows: Vec<Row> = match source {
            InsertSource::Values(value_rows) => {
                let resolver = FlatResolver::new(vec![]);
                let mut out = Vec::with_capacity(value_rows.len());
                for exprs in value_rows {
                    let vals: Vec<Value> = exprs
                        .iter()
                        .map(|e| eval(&bind(e, &resolver)?, &[]))
                        .collect::<Result<_>>()?;
                    out.push(self.widen_row(&meta.schema, columns, vals)?);
                }
                out
            }
            InsertSource::Query(src_q) => {
                // Pushdown path — the paper's contribution: an AOT target
                // whose source tables all exist on the accelerator executes
                // entirely there; only the statement text crosses the link.
                if meta.kind == TableKind::AcceleratorOnly {
                    let plan = plan_query(src_q, &*self.host)?;
                    let src_tables: Vec<ObjectName> = plan
                        .tables()
                        .iter()
                        .map(|t| t.resolve(&self.config.default_schema))
                        .collect();
                    let mix = router::classify(&self.host, &src_tables)?;
                    if mix.host_only == 0 {
                        let privs = self.host.privileges.read();
                        privs.check(&session.user, &target, Privilege::Insert)?;
                        for t in &src_tables {
                            if t.name == "SYSDUMMY1" {
                                continue;
                            }
                            privs.check(&session.user, t, Privilege::Select)?;
                        }
                        drop(privs);
                        let txn = self.enlist_accel(session)?;
                        self.ship_statement(&format!(
                            "INSERT INTO {target} {src_q}"
                        ));
                        let result = self.accel.query(txn, src_q)?;
                        let rows: Vec<Row> = result
                            .rows
                            .into_iter()
                            .map(|r| self.widen_row(&meta.schema, columns, r))
                            .collect::<Result<_>>()?;
                        let n = self.accel.insert_rows(txn, &target, rows)?;
                        self.link.transfer(Direction::ToHost, 64);
                        return Ok(ExecOutcome::accel(Payload::Count(n)));
                    }
                }
                // Otherwise the source runs wherever routing says; result
                // rows materialize on the host side and pay link cost when
                // they came from the accelerator.
                let outcome = self.dispatch_query(session, src_q)?;
                let result = match outcome.payload {
                    Payload::Rows(r) => r,
                    _ => unreachable!("queries produce rows"),
                };
                result
                    .rows
                    .into_iter()
                    .map(|r| self.widen_row(&meta.schema, columns, r))
                    .collect::<Result<_>>()?
            }
        };
        match meta.kind {
            TableKind::Regular => {
                let txn = self.ensure_txn(session);
                let n = self.host.insert_rows(&session.user, txn, &target, rows)?;
                Ok(ExecOutcome::host(Payload::Count(n)))
            }
            TableKind::AcceleratorOnly => {
                self.host.privileges.read().check(&session.user, &target, Privilege::Insert)?;
                let txn = self.enlist_accel(session)?;
                // Rows originate on the host side (VALUES literals or a
                // host-executed source query): they must cross the link.
                let bytes: usize = rows.iter().map(row_wire).sum::<usize>() + 64;
                self.link.transfer(Direction::ToAccel, bytes);
                let n = self.accel.insert_rows(txn, &target, rows)?;
                self.link.transfer(Direction::ToHost, 64);
                Ok(ExecOutcome::accel(Payload::Count(n)))
            }
        }
    }

    /// Expand an explicit column list to a full-width row (missing columns
    /// become NULL, which `check_row` then validates).
    fn widen_row(
        &self,
        schema: &idaa_common::Schema,
        columns: &[String],
        values: Vec<Value>,
    ) -> Result<Row> {
        if columns.is_empty() {
            return Ok(values);
        }
        if columns.len() != values.len() {
            return Err(Error::Constraint(format!(
                "INSERT specifies {} columns but {} values",
                columns.len(),
                values.len()
            )));
        }
        let mut row = vec![Value::Null; schema.len()];
        for (col, v) in columns.iter().zip(values) {
            row[schema.index_of(col)?] = v;
        }
        Ok(row)
    }

    // -- transactions ---------------------------------------------------------

    fn ensure_txn(&self, session: &mut Session) -> TxnId {
        match session.txn {
            Some(t) => t,
            None => {
                let t = self.host.begin();
                session.txn = Some(t);
                t
            }
        }
    }

    /// Transaction id used for a read-only accelerator query: the session's
    /// transaction when one is open and enlisted (own-writes visibility),
    /// else 0 (fresh snapshot).
    fn accel_query_txn(&self, session: &mut Session) -> TxnId {
        match session.txn {
            Some(t) if self.host.txns.accelerator_enlisted(t) => t,
            _ => 0,
        }
    }

    /// Enlist the accelerator in the session's transaction (starting one if
    /// needed) — required for AOT DML so that the paper's own-uncommitted-
    /// changes visibility holds.
    fn enlist_accel(&self, session: &mut Session) -> Result<TxnId> {
        if self.faults.accel_unavailable.load(Ordering::Relaxed) {
            return Err(Error::NotOffloadable(
                "the accelerator is not available; accelerator-only data cannot be accessed"
                    .into(),
            ));
        }
        let txn = self.ensure_txn(session);
        if !self.host.txns.accelerator_enlisted(txn) {
            self.link.transfer(Direction::ToAccel, 32); // BEGIN message
            self.accel.begin(txn);
            self.host.txns.enlist_accelerator(txn);
        }
        Ok(txn)
    }

    fn ship_statement(&self, sql: &str) {
        self.link.transfer(Direction::ToAccel, sql.len() + 32);
    }

    /// Commit the session's transaction. When the accelerator participated,
    /// run two-phase commit: PREPARE on the accelerator, COMMIT on DB2 (the
    /// coordinator), COMMIT on the accelerator.
    pub fn commit_session(&self, session: &mut Session) -> Result<()> {
        let Some(txn) = session.txn.take() else { return Ok(()) };
        if self.host.txns.accelerator_enlisted(txn) {
            // Phase 1: PREPARE.
            self.link.transfer(Direction::ToAccel, 32);
            let prepare_ok = !self.faults.fail_next_prepare.swap(false, Ordering::Relaxed);
            if !prepare_ok {
                // Vote NO: roll back everywhere.
                self.accel.abort(txn);
                self.host.rollback(txn)?;
                return Err(Error::CommitFailed(
                    "accelerator failed to prepare; transaction rolled back on all \
                     participants"
                        .into(),
                ));
            }
            if let Err(e) = self.accel.prepare(txn) {
                // A NO vote (or protocol error) aborts everywhere; the host
                // transaction must not stay open holding locks.
                self.accel.abort(txn);
                self.host.rollback(txn)?;
                return Err(Error::CommitFailed(format!(
                    "accelerator PREPARE failed ({e}); transaction rolled back on all \
                     participants"
                )));
            }
            self.link.transfer(Direction::ToHost, 32);
            // Phase 2: commit coordinator (DB2) then participant.
            self.host.commit(txn);
            self.link.transfer(Direction::ToAccel, 32);
            self.accel.commit(txn);
        } else {
            self.host.commit(txn);
        }
        if self.config.auto_replicate {
            self.replicate_now()?;
        }
        Ok(())
    }

    /// Roll the session's transaction back on every participant.
    pub fn rollback_session(&self, session: &mut Session) -> Result<()> {
        let Some(txn) = session.txn.take() else { return Ok(()) };
        if self.host.txns.accelerator_enlisted(txn) {
            self.link.transfer(Direction::ToAccel, 32);
            self.accel.abort(txn);
        }
        self.host.rollback(txn)?;
        Ok(())
    }
}

fn explain_schema() -> idaa_common::Schema {
    idaa_common::Schema::new_unchecked(vec![idaa_common::ColumnDef::new(
        "PLAN",
        idaa_common::DataType::Varchar(255),
    )])
}

fn row_wire(r: &Row) -> usize {
    r.iter().map(Value::wire_size).sum::<usize>() + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(idaa: &Idaa) -> Session {
        idaa.session(SYSADM)
    }

    fn setup_sales(idaa: &Idaa, s: &mut Session, rows: usize) {
        idaa.execute(s, "CREATE TABLE SALES (ID INT NOT NULL, REGION VARCHAR(8), AMOUNT DOUBLE)")
            .unwrap();
        let mut values = Vec::new();
        for i in 0..rows {
            values.push(format!(
                "({}, '{}', {}.0E0)",
                i,
                if i % 2 == 0 { "EU" } else { "US" },
                i
            ));
        }
        idaa.execute(s, &format!("INSERT INTO SALES VALUES {}", values.join(", ")))
            .unwrap();
    }

    #[test]
    fn ddl_dml_query_on_host() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 10);
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(out.route, Route::Host);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(10));
        // Nothing crossed the link.
        assert_eq!(idaa.link().metrics().total_bytes(), 0);
    }

    #[test]
    fn acceleration_lifecycle_and_offload() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 100);
        idaa.execute(&mut s, "CALL SYSPROC.ACCEL_ADD_TABLES('ACCEL1', 'SALES')").unwrap();
        idaa.execute(&mut s, "CALL SYSPROC.ACCEL_LOAD_TABLES('ACCEL1', 'SALES')").unwrap();
        // Still NONE: stays on host.
        let out = idaa.execute(&mut s, "SELECT SUM(amount) FROM sales").unwrap();
        assert_eq!(out.route, Route::Host);
        // ELIGIBLE: offloads.
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let out = idaa.execute(&mut s, "SELECT SUM(amount) FROM sales").unwrap();
        assert_eq!(out.route, Route::Accelerator);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::Double(4950.0));
    }

    #[test]
    fn replication_keeps_replica_fresh() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 20);
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.execute(&mut s, "INSERT INTO SALES VALUES (999, 'EU', 5.0E0)").unwrap();
        idaa.execute(&mut s, "UPDATE SALES SET AMOUNT = 7.0E0 WHERE ID = 999").unwrap();
        let out = idaa
            .execute(&mut s, "SELECT amount FROM sales WHERE id = 999")
            .unwrap();
        assert_eq!(out.route, Route::Accelerator);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::Double(7.0));
    }

    #[test]
    fn aot_lifecycle_transforms_without_host_data() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 50);
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.execute(
            &mut s,
            "CREATE TABLE STAGE1 (REGION VARCHAR(8), TOTAL DOUBLE) IN ACCELERATOR",
        )
        .unwrap();
        let out = idaa
            .execute(
                &mut s,
                "INSERT INTO STAGE1 SELECT region, SUM(amount) FROM sales GROUP BY region",
            )
            .unwrap();
        assert_eq!(out.route, Route::Accelerator);
        assert_eq!(out.count(), 2);
        let r = idaa.query(&mut s, "SELECT total FROM stage1 ORDER BY region").unwrap();
        assert_eq!(r.len(), 2);
        // The host has no storage for the AOT.
        assert_eq!(idaa.host().scan_count(&ObjectName::bare("STAGE1")), 0);
    }

    #[test]
    fn aot_mixed_with_host_only_table_fails() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 5);
        idaa.execute(&mut s, "CREATE TABLE A1 (X INT) IN ACCELERATOR").unwrap();
        let err = idaa
            .execute(&mut s, "SELECT * FROM a1 INNER JOIN sales ON a1.x = sales.id")
            .unwrap_err();
        assert_eq!(err.sqlcode(), -4742);
    }

    #[test]
    fn explicit_txn_with_aot_sees_own_changes_and_commits_atomically() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE W (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO W VALUES (1), (2)").unwrap();
        // Own uncommitted changes visible.
        let r = idaa.query(&mut s, "SELECT COUNT(*) FROM w").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(2));
        // Another session does not see them.
        let mut s2 = sys(&idaa);
        let r2 = idaa.query(&mut s2, "SELECT COUNT(*) FROM w").unwrap();
        assert_eq!(r2.scalar().unwrap(), &Value::BigInt(0));
        idaa.execute(&mut s, "COMMIT").unwrap();
        let r3 = idaa.query(&mut s2, "SELECT COUNT(*) FROM w").unwrap();
        assert_eq!(r3.scalar().unwrap(), &Value::BigInt(2));
    }

    #[test]
    fn rollback_spans_host_and_accelerator() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE HOSTT (X INT)").unwrap();
        idaa.execute(&mut s, "CREATE TABLE AOTT (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO HOSTT VALUES (1)").unwrap();
        idaa.execute(&mut s, "INSERT INTO AOTT VALUES (1)").unwrap();
        idaa.execute(&mut s, "ROLLBACK").unwrap();
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM hostt").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM aott").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
    }

    #[test]
    fn failed_prepare_rolls_back_everywhere() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE HOSTT (X INT)").unwrap();
        idaa.execute(&mut s, "CREATE TABLE AOTT (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO HOSTT VALUES (1)").unwrap();
        idaa.execute(&mut s, "INSERT INTO AOTT VALUES (1)").unwrap();
        idaa.faults.fail_next_prepare.store(true, Ordering::Relaxed);
        let err = idaa.execute(&mut s, "COMMIT").unwrap_err();
        assert!(matches!(err, Error::CommitFailed(_)));

        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM hostt").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM aott").unwrap().scalar().unwrap(),
            &Value::BigInt(0)
        );
    }

    #[test]
    fn governance_checked_before_delegation() {
        let idaa = Idaa::default();
        let mut admin = sys(&idaa);
        idaa.execute(&mut admin, "CREATE TABLE SECRETS (X INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut admin, "INSERT INTO SECRETS VALUES (42)").unwrap();
        let mut bob = idaa.session("BOB");
        let err = idaa.query(&mut bob, "SELECT * FROM secrets").unwrap_err();
        assert_eq!(err.sqlcode(), -551);
        let err = idaa.execute(&mut bob, "DELETE FROM secrets").unwrap_err();
        assert_eq!(err.sqlcode(), -551);
        idaa.execute(&mut admin, "GRANT SELECT ON SECRETS TO BOB").unwrap();
        let r = idaa.query(&mut bob, "SELECT * FROM secrets").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn call_requires_execute_privilege() {
        let idaa = Idaa::default();
        let mut bob = idaa.session("BOB");
        let err = idaa
            .execute(&mut bob, "CALL SYSPROC.ACCEL_GROOM_TABLES()")
            .unwrap_err();
        assert_eq!(err.sqlcode(), -551);
        let mut admin = sys(&idaa);
        idaa.execute(&mut admin, "GRANT EXECUTE ON SYSPROC.ACCEL_GROOM_TABLES TO BOB")
            .unwrap();
        idaa.execute(&mut bob, "CALL SYSPROC.ACCEL_GROOM_TABLES()").unwrap();
    }

    #[test]
    fn unknown_procedure_errors() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        let err = idaa.execute(&mut s, "CALL NO_SUCH_PROC(1)").unwrap_err();
        assert_eq!(err.sqlcode(), -204);
    }

    #[test]
    fn insert_select_from_host_to_aot_moves_data_once() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 30);
        // SALES is NOT accelerated: the source query runs on the host and
        // rows must cross the link into the AOT (the pre-AOT baseline path).
        idaa.execute(&mut s, "CREATE TABLE COPYT (ID INT, AMOUNT DOUBLE) IN ACCELERATOR")
            .unwrap();
        let before = idaa.link().metrics();
        let out = idaa
            .execute(&mut s, "INSERT INTO COPYT SELECT id, amount FROM sales")
            .unwrap();
        assert_eq!(out.count(), 30);
        let moved = idaa.link().metrics().since(&before);
        assert!(moved.bytes_to_accel > 30 * 8, "row payload must cross the link");
    }

    #[test]
    fn autocommit_statement_failure_rolls_back() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE T1 (X INT NOT NULL)").unwrap();
        // Multi-row insert where the second row violates NOT NULL.
        let err = idaa.execute(&mut s, "INSERT INTO T1 VALUES (1), (NULL)");
        assert!(err.is_err());
        assert_eq!(
            idaa.query(&mut s, "SELECT COUNT(*) FROM t1").unwrap().scalar().unwrap(),
            &Value::BigInt(0),
            "autocommit statement failure must not leave partial rows"
        );
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE T2 (A INT, B VARCHAR(4), C INT)").unwrap();
        idaa.execute(&mut s, "INSERT INTO T2 (C, A) VALUES (3, 1)").unwrap();
        let r = idaa.query(&mut s, "SELECT a, b, c FROM t2").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Null, Value::Int(3)]);
    }

    #[test]
    fn drop_aot_removes_both_sides() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        idaa.execute(&mut s, "CREATE TABLE D1 (X INT) IN ACCELERATOR").unwrap();
        assert!(idaa.accel().has_table(&ObjectName::bare("D1")));
        idaa.execute(&mut s, "DROP TABLE D1").unwrap();
        assert!(!idaa.accel().has_table(&ObjectName::bare("D1")));
        assert!(idaa.host().table_meta(&ObjectName::bare("D1")).is_err());
    }

    #[test]
    fn enable_mode_keeps_small_tables_on_host() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 50);
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('SALES')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ENABLE").unwrap();
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(out.route, Route::Host, "50 rows is below the offload threshold");
    }

    #[test]
    fn all_mode_fails_for_non_accelerated() {
        let idaa = Idaa::default();
        let mut s = sys(&idaa);
        setup_sales(&idaa, &mut s, 5);
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ALL").unwrap();
        let err = idaa.execute(&mut s, "SELECT COUNT(*) FROM sales").unwrap_err();
        assert_eq!(err.sqlcode(), -4742);
    }
}
