//! Accelerator health tracking and idempotent-delivery bookkeeping.
//!
//! Real IDAA coordinators watch the accelerator's heartbeat: after a few
//! consecutive communication failures DB2 marks the accelerator *stopped*
//! and routes eligible work back to the host; periodic probes detect when
//! it comes back and re-enable offload. [`HealthMonitor`] reproduces that
//! state machine against the simulated link, with all timing on the
//! virtual clock so tests stay deterministic and fast.
//!
//! [`SeqTracker`] is the accelerator-side half of idempotent statement
//! shipping: every shipped statement carries a per-session sequence
//! number, and a redelivered (retried) statement with an already-seen
//! number is discarded instead of applied twice.

use idaa_netsim::{Direction, NetLink, RetryPolicy};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Coordinator's view of the accelerator, from best to worst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// All recent transfers succeeded; offload is enabled.
    #[default]
    Online,
    /// Some transfers failed; offload still allowed, but suspect.
    Degraded,
    /// Consecutive failures exhausted the threshold; the coordinator
    /// treats the accelerator as unreachable and falls back to the host
    /// until a probe succeeds.
    Offline,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Online => write!(f, "online"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Offline => write!(f, "offline"),
        }
    }
}

/// Thresholds for the health state machine.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures before `Online` decays to `Degraded`.
    pub degraded_after: u32,
    /// Consecutive failures before the accelerator is declared `Offline`.
    pub offline_after: u32,
    /// Consecutive successes needed to return to `Online`.
    pub recover_after: u32,
    /// Minimum virtual time between recovery probes while `Offline`.
    pub probe_interval: Duration,
    /// Payload of one probe ping (per direction).
    pub probe_bytes: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            degraded_after: 1,
            offline_after: 3,
            recover_after: 2,
            probe_interval: Duration::from_millis(5),
            probe_bytes: 16,
        }
    }
}

#[derive(Debug, Default)]
struct HealthInner {
    state: HealthState,
    fail_streak: u32,
    ok_streak: u32,
    last_probe: Option<Duration>,
}

/// The accelerator health state machine (`Online → Degraded → Offline`
/// on consecutive failures, back to `Online` on consecutive successes).
#[derive(Debug, Default)]
pub struct HealthMonitor {
    config: HealthConfig,
    inner: Mutex<HealthInner>,
}

impl HealthMonitor {
    pub fn new(config: HealthConfig) -> HealthMonitor {
        HealthMonitor { config, inner: Mutex::new(HealthInner::default()) }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.inner.lock().state
    }

    /// True unless the accelerator has been declared `Offline`.
    pub fn is_available(&self) -> bool {
        self.state() != HealthState::Offline
    }

    /// Record a successful round-trip; returns the resulting state.
    pub fn record_success(&self) -> HealthState {
        let mut i = self.inner.lock();
        i.fail_streak = 0;
        if i.state != HealthState::Online {
            i.ok_streak += 1;
            if i.ok_streak >= self.config.recover_after {
                i.state = HealthState::Online;
                i.ok_streak = 0;
            }
        }
        i.state
    }

    /// Record a communication failure (one per exhausted retry round, not
    /// per attempt); returns the resulting state.
    pub fn record_failure(&self) -> HealthState {
        let mut i = self.inner.lock();
        i.ok_streak = 0;
        i.fail_streak = i.fail_streak.saturating_add(1);
        if i.fail_streak >= self.config.offline_after {
            i.state = HealthState::Offline;
        } else if i.fail_streak >= self.config.degraded_after {
            i.state = i.state.max(HealthState::Degraded);
        }
        i.state
    }

    /// Declare the accelerator `Offline` immediately, bypassing the
    /// failure-streak decay — the coordinator calls this when it *knows*
    /// the accelerator crashed (a crash point fired), rather than
    /// inferring unreachability from lost messages. Streaks reset so the
    /// usual probe → consecutive-successes path drives recovery.
    pub fn force_offline(&self) {
        let mut i = self.inner.lock();
        i.state = HealthState::Offline;
        i.fail_streak = 0;
        i.ok_streak = 0;
    }

    /// Whether an `Offline` accelerator is due for a recovery probe at
    /// virtual time `now` (probes are rate-limited to `probe_interval`).
    pub fn should_probe(&self, now: Duration) -> bool {
        let i = self.inner.lock();
        i.state == HealthState::Offline
            && i.last_probe.is_none_or(|t| now >= t + self.config.probe_interval)
    }

    /// Send one probe ping each way over `link`. Probe results feed the
    /// same streak counters as regular traffic; with the default config a
    /// single full round-trip is enough to return `Online`. Returns true
    /// if the accelerator is `Online` afterwards.
    pub fn probe(&self, link: &NetLink, retry: &RetryPolicy) -> bool {
        self.inner.lock().last_probe = Some(link.now());
        for direction in [Direction::ToAccel, Direction::ToHost] {
            if retry.transfer(link, direction, self.config.probe_bytes).is_err() {
                self.record_failure();
                return false;
            }
            self.record_success();
        }
        self.state() == HealthState::Online
    }

    /// Probe an `Offline` accelerator only when the rate limiter allows it
    /// ([`HealthMonitor::should_probe`] at the link's virtual now) —
    /// the shared readiness step for the single-accelerator path and each
    /// node of a fleet. Returns true if the probe ran and came back
    /// `Online`.
    pub fn probe_if_due(&self, link: &NetLink, retry: &RetryPolicy) -> bool {
        self.should_probe(link.now()) && self.probe(link, retry)
    }
}

/// Outcome of delivering a sequenced message to the [`SeqTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// First delivery in the current epoch: apply the statement.
    Apply,
    /// Already seen in the current epoch: discard (idempotent retry).
    Duplicate,
    /// Stamped with a pre-restart recovery epoch: the sender's view of
    /// the accelerator predates the crash — discard without applying.
    Fenced,
}

/// Highest delivered sequence number per statement stream (session id),
/// fenced by the accelerator's recovery epoch.
///
/// Shipping a statement is idempotent: a retry that redelivers an
/// already-seen `(stream, seq)` pair is recognized and discarded by the
/// receiver, so a retried statement can never execute twice. The tracker
/// is *volatile* accelerator state: a crash–restart bumps the recovery
/// epoch, [`SeqTracker::reset`] clears the per-stream map, and anything
/// still stamped with an older epoch is [`Delivery::Fenced`] off rather
/// than matched against post-restart sequence state.
#[derive(Debug, Default)]
pub struct SeqTracker {
    inner: Mutex<SeqInner>,
}

#[derive(Debug, Default)]
struct SeqInner {
    epoch: u64,
    high: HashMap<u64, u64>,
}

impl SeqTracker {
    /// Record delivery of `(stream, seq)`; returns true if this is the
    /// first delivery (the statement should be applied) and false for a
    /// duplicate redelivery (discard). Uses the tracker's current epoch.
    pub fn deliver(&self, stream: u64, seq: u64) -> bool {
        let epoch = self.inner.lock().epoch;
        self.deliver_at(stream, seq, epoch) == Delivery::Apply
    }

    /// Record delivery of `(stream, seq)` stamped with the sender's view
    /// of the recovery `epoch`. A newer epoch than the tracker's means
    /// the tracker missed a restart: it resets itself before judging the
    /// delivery. An older epoch is fenced off unconditionally.
    pub fn deliver_at(&self, stream: u64, seq: u64, epoch: u64) -> Delivery {
        let mut inner = self.inner.lock();
        if epoch < inner.epoch {
            return Delivery::Fenced;
        }
        if epoch > inner.epoch {
            inner.epoch = epoch;
            inner.high.clear();
        }
        let entry = inner.high.entry(stream).or_insert(0);
        if seq > *entry {
            *entry = seq;
            Delivery::Apply
        } else {
            Delivery::Duplicate
        }
    }

    /// A restart happened: adopt the new recovery epoch and drop all
    /// pre-crash sequence state (it described the previous incarnation).
    /// Older epochs are ignored — a stale reset cannot un-fence history.
    pub fn reset(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        if epoch > inner.epoch {
            inner.epoch = epoch;
            inner.high.clear();
        }
    }

    /// The tracker's current recovery epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Highest sequence number seen on `stream` (0 if none).
    pub fn high_water(&self, stream: u64) -> u64 {
        self.inner.lock().high.get(&stream).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_netsim::{FaultPlan, LinkConfig};

    #[test]
    fn decays_through_degraded_to_offline_and_recovers() {
        let h = HealthMonitor::default();
        assert_eq!(h.state(), HealthState::Online);
        assert_eq!(h.record_failure(), HealthState::Degraded);
        assert_eq!(h.record_failure(), HealthState::Degraded);
        assert_eq!(h.record_failure(), HealthState::Offline);
        assert!(!h.is_available());
        assert_eq!(h.record_success(), HealthState::Offline, "one success is not enough");
        assert_eq!(h.record_success(), HealthState::Online);
        assert!(h.is_available());
    }

    #[test]
    fn success_resets_failure_streak() {
        let h = HealthMonitor::default();
        h.record_failure();
        h.record_failure();
        h.record_success();
        h.record_success();
        assert_eq!(h.state(), HealthState::Online);
        assert_eq!(h.record_failure(), HealthState::Degraded, "streak restarted");
        assert_ne!(h.record_failure(), HealthState::Offline);
    }

    #[test]
    fn probe_rate_limited_on_virtual_clock() {
        let h = HealthMonitor::default();
        let link = NetLink::new(LinkConfig::default());
        for _ in 0..3 {
            h.record_failure();
        }
        assert!(h.should_probe(link.now()));
        // A failed probe during an outage leaves us Offline and throttled.
        link.set_fault_plan(FaultPlan::outage(Duration::ZERO, Duration::from_secs(1)));
        assert!(!h.probe(&link, &RetryPolicy::none()));
        assert!(!h.should_probe(link.now()), "probe just happened");
        link.advance(Duration::from_secs(2));
        assert!(h.should_probe(link.now()));
        // Past the window the probe round-trips and restores Online.
        assert!(h.probe(&link, &RetryPolicy::none()));
        assert_eq!(h.state(), HealthState::Online);
    }

    #[test]
    fn seq_tracker_discards_redelivery() {
        let t = SeqTracker::default();
        assert!(t.deliver(7, 1));
        assert!(t.deliver(7, 2));
        assert!(!t.deliver(7, 2), "retried statement must not apply twice");
        assert!(!t.deliver(7, 1));
        assert!(t.deliver(8, 1), "streams are independent");
        assert_eq!(t.high_water(7), 2);
        assert_eq!(t.high_water(9), 0);
    }

    #[test]
    fn seq_tracker_epoch_fences_pre_crash_state() {
        let t = SeqTracker::default();
        assert_eq!(t.deliver_at(7, 1, 1), Delivery::Apply);
        assert_eq!(t.deliver_at(7, 1, 1), Delivery::Duplicate);
        // The accelerator restarts: epoch 2 fences everything older.
        t.reset(2);
        assert_eq!(t.epoch(), 2);
        assert_eq!(t.high_water(7), 0, "pre-crash sequence state is gone");
        assert_eq!(
            t.deliver_at(7, 9, 1),
            Delivery::Fenced,
            "a message stamped with the dead incarnation must not apply"
        );
        // The same (stream, seq) re-sent under the new epoch is fresh.
        assert_eq!(t.deliver_at(7, 1, 2), Delivery::Apply);
        // A stale reset cannot roll the epoch back.
        t.reset(1);
        assert_eq!(t.epoch(), 2);
        assert_eq!(t.high_water(7), 1);
    }

    #[test]
    fn seq_tracker_adopts_newer_epoch_on_delivery() {
        let t = SeqTracker::default();
        assert_eq!(t.deliver_at(3, 5, 1), Delivery::Apply);
        // A delivery already stamped with a newer epoch implies a restart
        // the tracker has not seen yet: old state clears first.
        assert_eq!(t.deliver_at(3, 5, 2), Delivery::Apply);
        assert_eq!(t.epoch(), 2);
        assert_eq!(t.deliver_at(3, 5, 2), Delivery::Duplicate);
    }

    #[test]
    fn force_offline_skips_streak_decay() {
        let h = HealthMonitor::default();
        assert_eq!(h.state(), HealthState::Online);
        h.force_offline();
        assert_eq!(h.state(), HealthState::Offline);
        assert!(!h.is_available());
        // Recovery follows the normal consecutive-success path.
        assert_eq!(h.record_success(), HealthState::Offline);
        assert_eq!(h.record_success(), HealthState::Online);
    }
}
